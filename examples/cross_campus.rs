//! Cross-campus reproducibility (paper §5): "using such open-sourced
//! learning algorithms and training them with data from some other campus
//! networks (each with its own data store) suggests a viable path for
//! tackling the much-debated reproducibility problem".
//!
//! Three simulated campuses — web-heavy Hillside, research-heavy Bayview,
//! streaming-heavy Northtech — each run the *same* open-sourced
//! development loop on their *private* data stores. Every resulting
//! deployable model is then evaluated on every campus's held-out data.
//!
//! ```sh
//! cargo run --release --example cross_campus
//! ```

use campuslab::control::DevLoopConfig;
use campuslab::testbed::{cross_campus, CampusSite};

fn main() {
    println!("== Cross-campus reproducibility protocol ==\n");
    let sites = CampusSite::default_trio();
    for site in &sites {
        println!(
            "  campus '{}' ({}), app mix: {}",
            site.name,
            site.scenario.campus.campus_prefix(),
            site.scenario
                .workload
                .mix
                .iter()
                .map(|(c, w)| format!("{} {:.0}%", c.name(), w * 100.0))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("\nrunning the shared development loop privately at each campus...");
    let result = cross_campus(&sites, &DevLoopConfig::default());

    println!("\nattack-class F1, model trained at row / evaluated at column:\n");
    print!("{:<12}", "");
    for name in &result.names {
        print!("{name:>12}");
    }
    println!();
    for (i, name) in result.names.iter().enumerate() {
        print!("{name:<12}");
        for j in 0..result.names.len() {
            print!("{:>12.3}", result.f1[i][j]);
        }
        println!("   ({} border records)", result.records[i]);
    }
    println!(
        "\nmean in-campus F1:    {:.3}\nmean cross-campus F1: {:.3}",
        result.mean_in_campus(),
        result.mean_cross_campus()
    );
    println!("\nthe shape to notice: models transfer (the amplification signature is");
    println!("structural), but each campus's own model fits its own traffic best —");
    println!("which is exactly the paper's argument for per-campus data stores plus");
    println!("shared, open-sourced algorithms.");
}
