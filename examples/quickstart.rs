//! Quickstart: the whole CampusLab story in one run.
//!
//! 1. Build a campus network and run a day of labeled traffic over it,
//!    with a DNS-amplification attack at one host (the paper's §2 example).
//! 2. Capture everything at the border tap into the data store (Part 1:
//!    campus as data source).
//! 3. Run the development loop: black-box forest → distilled tree →
//!    compiled switch program (Figure 2, slow loop).
//! 4. Road-test the compiled program on the live campus (Part 2: campus
//!    as testbed) and print the operator-facing report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use campuslab::datastore::{summarize, PacketQuery};
use campuslab::testbed::{deployment_decision, GateCriteria, Scenario};
use campuslab::Platform;

fn main() {
    println!("== CampusLab quickstart ==\n");
    let platform = Platform::new(Scenario::small());

    // --- Part 1: the campus as data source -------------------------------
    println!("[1/4] running the campus and capturing at the border tap...");
    let data = platform.collect();
    println!(
        "      scheduled {} packets; network delivered {} ({:.1}% delivery)",
        data.scheduled,
        data.net.delivered,
        data.net.delivery_ratio() * 100.0
    );
    println!(
        "      border monitor captured {} packets ({} flows, {} DNS transactions), ring loss {:.3}%",
        data.monitor.captured,
        data.flows.len(),
        data.dns.len(),
        data.ring.loss_rate() * 100.0
    );

    println!("[2/4] landing records in the data store...");
    let store = platform.store(&data);
    let summary = summarize(&store);
    println!(
        "      store: {} packet records, mean border rate {:.2} Mbps, {} labeled attack packets",
        summary.packets,
        summary.mean_bps() / 1e6,
        summary.malicious_packets
    );
    if let Some(victim) = data.victim {
        let hits = store.query_packets(
            &PacketQuery::for_host(std::net::IpAddr::V4(victim)).malicious(),
        );
        println!(
            "      indexed query: {} attack packets aimed at victim {victim}",
            hits.len()
        );
    }

    // --- Figure 2: the development loop ----------------------------------
    println!("[3/4] development loop: train black box, distill, compile...");
    let dev = platform.develop(&data);
    println!(
        "      teacher (random forest): F1={:.3}  |  student (depth-{} tree): F1={:.3}",
        dev.teacher_eval.f1_attack, dev.distillation.student_depth, dev.student_eval.f1_attack
    );
    println!(
        "      fidelity {:.1}%  |  student {} nodes -> {} TCAM entries ({} leaves gated out at {:.0}% confidence)",
        dev.fidelity * 100.0,
        dev.distillation.student_nodes,
        dev.program.n_entries(),
        dev.compile.leaves_gated_out,
        90.0
    );
    println!("      loop wall time: {:?}", dev.wall);

    // --- Part 2: the campus as testbed ------------------------------------
    println!("[4/4] road test: compiled rules live in the border switch...");
    let outcome = platform.road_test_switch(&dev);
    println!(
        "      attack suppression {:.1}%  |  collateral benign drops: {}  |  drop precision {:.1}%",
        outcome.suppression() * 100.0,
        outcome.benign_packets_dropped,
        outcome.filter.drop_precision() * 100.0
    );
    let decision = deployment_decision(&outcome, GateCriteria::default());
    if decision.approved {
        println!("      deployment gate: APPROVED for production");
    } else {
        println!("      deployment gate: REJECTED");
        for reason in &decision.reasons {
            println!("        - {reason}");
        }
    }
    println!("\ndone.");
}
