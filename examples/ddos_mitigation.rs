//! The paper's §2 running example, end to end, across all three inference
//! placements: "the network event in question could be a DDoS attack in
//! the form of a DNS amplification attack on the enterprise and the
//! corresponding action could be 'drop attack traffic on ingress if
//! confidence in detection is at least 90%'."
//!
//! The same deployable model defends the same campus from the same attack,
//! with the detector placed (a) in the switch itself (compiled rules),
//! (b) at an on-campus controller, and (c) in an off-campus cloud service
//! — showing the latency/suppression trade the paper's §2 discusses.
//!
//! ```sh
//! cargo run --release --example ddos_mitigation
//! ```

use campuslab::control::Placement;
use campuslab::testbed::Scenario;
use campuslab::Platform;

fn main() {
    println!("== DNS amplification detection and mitigation ==\n");
    let mut scenario = Scenario::small();
    // A harder attack: more reflectors, higher rate.
    scenario.attack = campuslab::testbed::AttackScenario::DnsAmplification {
        victim_index: 3,
        qps: 1_200.0,
        start_frac: 0.25,
        duration_frac: 0.6,
    };
    let platform = Platform::new(scenario);

    println!("collecting training data from the campus border...");
    let data = platform.collect();
    let (malicious, benign) = data
        .packets
        .iter()
        .fold((0u64, 0u64), |(m, b), p| if p.is_malicious() { (m + 1, b) } else { (m, b + 1) });
    println!("  captured {malicious} attack + {benign} benign border packets\n");

    println!("developing the deployable model (forest -> tree -> P4-style rules)...");
    let dev = platform.develop(&data);
    println!(
        "  student F1 {:.3}, fidelity {:.1}%, {} TCAM entries\n",
        dev.student_eval.f1_attack,
        dev.fidelity * 100.0,
        dev.program.n_entries()
    );

    println!("{:<12} {:>16} {:>14} {:>16} {:>14}", "placement", "time-to-mitigate", "suppression", "attack passed", "benign dropped");
    for placement in [Placement::Switch, Placement::Controller, Placement::Cloud] {
        let outcome = match placement {
            Placement::Switch => platform.road_test_switch(&dev),
            p => {
                let wm = platform.train_window_model(&data);
                platform.road_test_at(&dev, wm, p)
            }
        };
        let ttm = outcome
            .time_to_mitigation
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".to_string());
        println!(
            "{:<12} {:>16} {:>13.1}% {:>16} {:>14}",
            format!("{placement:?}"),
            ttm,
            outcome.suppression() * 100.0,
            outcome.attack_packets_passed,
            outcome.benign_packets_dropped
        );
    }
    println!("\nthe shape to notice: the switch reacts instantly; the controller pays one");
    println!("detection window; the cloud adds WAN latency — and every extra second of");
    println!("blindness is thousands of amplification packets reaching the victim.");
}
