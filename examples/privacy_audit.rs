//! Privacy-preserving data collection (Figure 1's gate, §3 and §5):
//! prefix-preserving anonymization of the data store, the governance
//! policy matrix, and the cost of privacy in model utility.
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::privacy::{
    common_prefix_len_v4, DataClass, PolicyEngine, PrefixPreservingAnon, Purpose, Role,
    ScrubPolicy, Scrubber,
};
use campuslab::testbed::{collect, Scenario};
use std::net::Ipv4Addr;

fn main() {
    println!("== Privacy audit ==\n");

    // --- 1. Prefix preservation, demonstrated -----------------------------
    let anon = PrefixPreservingAnon::new(0x0123_4567_89ab_cdef_1122_3344_5566_7788);
    println!("prefix-preserving anonymization (same /24 stays a shared /24):");
    let a = Ipv4Addr::new(10, 1, 7, 20);
    let b = Ipv4Addr::new(10, 1, 7, 99);
    let c = Ipv4Addr::new(10, 1, 200, 5);
    for (x, y) in [(a, b), (a, c)] {
        println!(
            "  {} vs {}: shared /{} -> anonymized {} vs {}: shared /{}",
            x,
            y,
            common_prefix_len_v4(x, y),
            anon.anonymize_v4(x),
            anon.anonymize_v4(y),
            common_prefix_len_v4(anon.anonymize_v4(x), anon.anonymize_v4(y)),
        );
    }

    // --- 2. The governance matrix -----------------------------------------
    println!("\ngovernance policy (who may touch what, and it is audited):");
    let mut engine = PolicyEngine::new();
    let attempts = [
        (Role::ItOperator, Purpose::SecurityOperations, DataClass::RawPackets),
        (Role::Researcher, Purpose::Research, DataClass::AnonymizedRecords),
        (Role::Researcher, Purpose::Research, DataClass::RawPackets),
        (Role::Auditor, Purpose::Audit, DataClass::IdentifiedRecords),
        (Role::External, Purpose::Research, DataClass::AggregateStats),
    ];
    for (i, &(role, purpose, class)) in attempts.iter().enumerate() {
        let verdict = engine.check(i as u64, role, purpose, class);
        println!("  {role:?} / {purpose:?} / {class:?} -> {verdict:?}");
    }
    println!("  audit log holds {} entries, {} denials",
        engine.audit_log().len(),
        engine.denials().count());

    // --- 3. The utility cost of privacy (experiment E4) -------------------
    println!("\nmodel utility on raw vs anonymized records:");
    let data = collect(&Scenario::small());
    let raw_dev = run_development_loop(&data.packets, &DevLoopConfig::default());

    let scrubber = Scrubber::new(0xFEED_FACE_CAFE, ScrubPolicy::internal_research());
    let scrubbed: Vec<_> = data
        .packets
        .iter()
        .map(|r| scrubber.scrub_packet(r.clone()))
        .collect();
    let anon_dev = run_development_loop(&scrubbed, &DevLoopConfig::default());

    println!(
        "  raw:        student F1 {:.3}, fidelity {:.1}%",
        raw_dev.student_eval.f1_attack,
        raw_dev.fidelity * 100.0
    );
    println!(
        "  anonymized: student F1 {:.3}, fidelity {:.1}%",
        anon_dev.student_eval.f1_attack,
        anon_dev.fidelity * 100.0
    );
    println!("\nthe shape to notice: prefix-preserving anonymization keeps the feature");
    println!("structure the detector relies on (ports, sizes, protocol mix), so the");
    println!("utility cost of privacy is small — the paper's bet that privacy and");
    println!("useful research data can coexist inside a university.");
}
