//! Opening the black box for operators (paper §5, step (iv)): a deployed
//! model "that could be routinely queried for the list of pieces of
//! evidence that the model used to arrive at its decisions".
//!
//! Trains the pipeline, then audits its decisions: for detected attack
//! packets, print the exact evidence chain and check it cites the
//! features a security analyst associates with DNS amplification.
//!
//! ```sh
//! cargo run --release --example operator_trust
//! ```

use campuslab::features::packet_features;
use campuslab::testbed::{trust_report, Scenario};
use campuslab::xai::{counterfactual, explain};
use campuslab::Platform;

fn main() {
    println!("== Operator trust report ==\n");
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let dev = platform.develop(&data);

    println!(
        "deployable model: depth-{} tree, {} leaves, fidelity {:.1}% to the black box\n",
        dev.distillation.student_depth,
        dev.distillation.student_leaves,
        dev.fidelity * 100.0
    );

    // Show three concrete decisions: an attack packet, a benign DNS answer,
    // and a benign web packet.
    let attack = data.packets.iter().find(|p| p.is_malicious()).expect("attack traffic");
    // Benign DNS stays inside the campus (host <-> campus resolver), so
    // the border tap never sees it; NTP is the benign UDP that does cross.
    let benign_udp = data
        .packets
        .iter()
        .find(|p| !p.is_malicious() && p.protocol == 17)
        .expect("benign udp");
    let benign_web = data
        .packets
        .iter()
        .find(|p| !p.is_malicious() && p.dst_port == 443)
        .or_else(|| data.packets.iter().find(|p| !p.is_malicious() && p.src_port == 443))
        .expect("benign web");

    for (title, rec) in [
        ("amplification response (ground truth: attack)", attack),
        ("NTP exchange (ground truth: benign)", benign_udp),
        ("web traffic (ground truth: benign)", benign_web),
    ] {
        let row = packet_features(rec);
        let ex = explain(&dev.student, &dev.feature_names, &row);
        let verdict = if ex.predicted_class == 1 { "attack" } else { "benign" };
        println!("--- {title}");
        print!("{}", ex.to_text(verdict));
        println!();
    }

    // The complementary what-if query: what minimal change flips a verdict?
    println!("--- counterfactual queries");
    let attack_row = packet_features(attack);
    if let Some(cf) = counterfactual(&dev.student, &dev.feature_names, &attack_row, 0) {
        print!("{}", cf.to_text("benign"));
    }
    let benign_row = packet_features(benign_udp);
    if let Some(cf) = counterfactual(&dev.student, &dev.feature_names, &benign_row, 1) {
        print!("{}", cf.to_text("attack"));
    }
    println!();

    // Aggregate audit: does the evidence match the known cause?
    let report = trust_report(&dev.student, &dev.feature_names, &data.packets, 1, 3);
    println!("aggregate audit over {} flagged/missed decisions:", report.decisions_audited);
    println!(
        "  true positives {}  false positives {}  false negatives {}",
        report.true_positives, report.false_positives, report.false_negatives
    );
    println!(
        "  evidence cites analyst-expected features in {:.1}% of true positives",
        report.evidence_match_rate * 100.0
    );
    println!("\nthe shape to notice: the model's stated evidence (UDP, source port 53,");
    println!("large datagrams) is what an analyst would have checked by hand — the");
    println!("paper's recipe for turning operator distrust into adoption.");
}
