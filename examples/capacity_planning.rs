//! Data-plane capacity planning (paper §2): modern data planes are
//! "currently not capable of supporting this capability at scale; i.e.,
//! executing hundreds or thousands of such tasks concurrently".
//!
//! This example makes the claim concrete: distill deployable trees of
//! increasing depth, compile each, and ask the Tofino-like resource model
//! how many concurrent automation tasks of that shape one switch hosts.
//! Also prints the monitoring side: the lossless-capture envelope of a
//! ring configuration against offered packet rates.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use campuslab::capture::{CaptureArray, FlowKey, RingConfig};
use campuslab::control::{run_development_loop, DevLoopConfig};
use campuslab::dataplane::SwitchModel;
use campuslab::ml::TreeConfig;
use campuslab::netsim::SimTime;
use campuslab::testbed::{collect, Scenario};
use campuslab::xai::DistillConfig;

fn main() {
    println!("== Capacity planning ==\n");
    let data = collect(&Scenario::small());
    let switch = SwitchModel::default();
    println!(
        "switch model: {} stages x {} TCAM entries x {} tables/stage\n",
        switch.stages, switch.tcam_entries_per_stage, switch.max_tables_per_stage
    );

    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>18}",
        "depth", "leaves", "F1", "entries", "stageslots", "concurrent tasks"
    );
    for depth in [1usize, 2, 3, 4, 5, 6, 8, 10] {
        let cfg = DevLoopConfig {
            distill: DistillConfig { tree: TreeConfig::shallow(depth), ..Default::default() },
            compile: campuslab::dataplane::CompileConfig {
                confidence_gate: 0.9,
                ..Default::default()
            },
            ..Default::default()
        };
        let dev = run_development_loop(&data.packets, &cfg);
        let fp = switch.footprint(&dev.program);
        println!(
            "{:>6} {:>8} {:>8.3} {:>12} {:>12} {:>18}",
            depth,
            dev.distillation.student_leaves,
            dev.student_eval.f1_attack,
            dev.program.n_entries(),
            fp.stage_slots,
            switch.max_concurrent(&dev.program)
        );
    }

    println!("\nthe shape to notice: concurrency is bounded by table slots for shallow");
    println!("trees and by TCAM for deep ones — tens of tasks, not thousands, exactly");
    println!("the scale wall the paper describes.\n");

    // --- Monitoring capacity: the lossless envelope ------------------------
    println!("lossless-capture envelope (8 rings x 4096 @ 1.5 Mpps drain):");
    println!("{:>14} {:>12}", "offered pps", "monitor loss");
    for offered_mpps in [1.0f64, 5.0, 8.0, 12.0, 16.0, 24.0, 48.0] {
        let mut arr = CaptureArray::new(8, RingConfig::default());
        let offered_pps = offered_mpps * 1e6;
        let gap_ns = (1e9 / offered_pps) as u64;
        let n = 400_000u64;
        for i in 0..n {
            let key = FlowKey {
                src: std::net::IpAddr::from([203, 0, 113, (i % 200) as u8]),
                dst: std::net::IpAddr::from([10, 1, 1, (i % 100) as u8]),
                protocol: 17,
                src_port: (1024 + (i % 50_000)) as u16,
                dst_port: 53,
            };
            arr.offer(SimTime(i * gap_ns), &key);
        }
        println!(
            "{:>11.1} M {:>11.3}%",
            offered_mpps,
            arr.stats().loss_rate() * 100.0
        );
    }
    println!("\ncampus border traffic (10-20 Gbps ~ 1-3 Mpps) sits far inside the");
    println!("envelope; the same appliance begins to drop an order of magnitude higher");
    println!("— the paper's point that campuses are the *right size* to monitor fully.");
}
