//! A tour of the data store's operational features: indexed search,
//! mining, persistence across restarts, heavy-hitter telemetry,
//! governance, differentially-private aggregate release, and
//! counterfactual queries against the deployed model.
//!
//! ```sh
//! cargo run --release --example data_store_tour
//! ```

use campuslab::capture::HeavyHitters;
use campuslab::datastore::{self, summarize, top_talkers, PacketQuery};
use campuslab::features::packet_features;
use campuslab::privacy::{
    BudgetLedger, DataClass, LaplaceMechanism, PolicyEngine, Purpose, Role,
};
use campuslab::testbed::Scenario;
use campuslab::xai::counterfactual;
use campuslab::Platform;

fn main() {
    println!("== Data store tour ==\n");
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    let store = platform.store(&data);

    // --- 1. Search and mining ---------------------------------------------
    let summary = summarize(&store);
    println!(
        "[search] {} packet records, {} flows, {} DNS transactions in store",
        summary.packets,
        store.flow_count(),
        store.dns_count()
    );
    let victim = std::net::IpAddr::V4(data.victim.expect("victim"));
    let hits = store.query_packets(&PacketQuery::for_host(victim).malicious());
    println!("[search] indexed malicious-to-victim query: {} hits", hits.len());
    println!("[mining] top talkers:");
    for (addr, bytes) in top_talkers(&store, 3) {
        println!("         {addr:<16} {bytes} bytes");
    }

    // --- 2. Streaming heavy hitters (constant memory) ----------------------
    let mut hh = HeavyHitters::new(5, 1024, 4);
    for rec in store.iter_packets() {
        hh.add(rec.dst, u64::from(rec.wire_len));
    }
    println!("\n[sketch] heavy hitters from a 1024x4 count-min sketch:");
    for (addr, est) in hh.top().into_iter().take(3) {
        println!("         {addr:<16} ~{est} bytes");
    }
    println!("         (the flood victim surfaces without per-host state)");

    // --- 3. Persistence ------------------------------------------------------
    let mut buf = Vec::new();
    datastore::save(&store, &mut buf).expect("serialize store");
    let reloaded = datastore::load(&buf[..]).expect("reload store");
    println!(
        "\n[persist] store serialized to {} bytes and reloaded: {} records, indexes rebuilt",
        buf.len(),
        reloaded.packet_count()
    );
    assert_eq!(
        reloaded.query_packets(&PacketQuery::for_host(victim)).len(),
        store.query_packets(&PacketQuery::for_host(victim)).len()
    );

    // --- 4. Governance + DP release ----------------------------------------
    let mut engine = PolicyEngine::new();
    let verdict = engine.check(1, Role::External, Purpose::Research, DataClass::AggregateStats);
    println!("\n[policy] external researcher asks for aggregates: {verdict:?}");
    println!("[policy] even aggregates leave only through the DP mechanism:");
    let mechanism = LaplaceMechanism::new(0x70AC_C0DE, 0.5);
    let mut ledger = BudgetLedger::new(1.0);
    for (i, (name, value)) in [
        ("total_packets", summary.packets),
        ("malicious_packets", summary.malicious_packets),
        ("distinct_seconds", 10),
    ]
    .iter()
    .enumerate()
    {
        match ledger.record(mechanism.release_count(name, *value, i as u64)) {
            Ok(release) => println!(
                "         {:<18} true {:>6} -> released {:>9.1} (eps {:.1})",
                release.name, value, release.value, release.epsilon_spent
            ),
            Err(e) => println!("         {name:<18} REFUSED: {e}"),
        }
    }
    println!("         remaining budget: eps {:.2}", ledger.remaining());

    // --- 5. Counterfactual queries against the deployed model ---------------
    let dev = platform.develop(&data);
    let attack = data.packets.iter().find(|p| p.is_malicious()).expect("attack");
    let row = packet_features(attack);
    println!("\n[what-if] the operator asks: what would make this flood packet pass?");
    if let Some(cf) = counterfactual(&dev.student, &dev.feature_names, &row, 0) {
        print!("{}", cf.to_text("benign"));
    }
    println!("\ndone.");
}
