//! An offline, shrinking-free property-testing harness exposing the
//! `proptest` API subset CampusLab's tests use.
//!
//! Differences from upstream proptest, by design:
//! - **No shrinking.** A failing case panics with the plain assertion
//!   message; cases are deterministic per test (seeded from the test's
//!   module path), so failures reproduce exactly.
//! - **Strategies are samplers.** [`Strategy::sample`] draws a value
//!   directly; there is no value tree.
//! - String strategies support the tiny regex subset the tests use:
//!   literals, character classes (`[a-z0-9]`), and `{m,n}` repetition.
//! - **Failure persistence is index-based.** A failing case appends its
//!   deterministic case index to the crate's `proptest-regressions/`
//!   file (see [`regression`]); replays cover every recorded index even
//!   if the configured case count shrinks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod array;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod regression;
pub mod sample;
pub mod test_runner;

use test_runner::TestRng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; forking is not implemented.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0, fork: false }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a follow-up strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given options; at least one is required.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, bool, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Copy,
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Copy,
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(*self.start()..=*self.end())
    }
}

/// String strategies from a regex-ish pattern: literal characters,
/// `[set]` character classes with ranges, and `{m}` / `{m,n}` repetition
/// of the preceding atom.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal.
        let atom: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repeat min"),
                    n.trim().parse().expect("bad repeat max"),
                ),
                None => {
                    let m: usize = spec.trim().parse().expect("bad repeat count");
                    (m, m)
                }
            }
        } else {
            (1usize, 1usize)
        };
        let count = rng.rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(atom[rng.rng.gen_range(0..atom.len())]);
        }
    }
    out
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property body (no shrinking: identical to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0u32..10, ref_y in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::deterministic(test_id);
            // Failure persistence (see the `regression` module): replay
            // covers every recorded index, and a fresh failure appends its
            // case index before the panic continues.
            let regr_path = $crate::regression::file_path(env!("CARGO_MANIFEST_DIR"), file!());
            let recorded = $crate::regression::recorded(&regr_path, test_id);
            let budget = $crate::regression::case_budget(config.cases, &recorded);
            for _case in 0..budget {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = outcome {
                    $crate::regression::record(&regr_path, test_id, _case);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// One deterministic RNG per property test.
pub mod rng_support {
    pub use super::test_runner::TestRng;
}

#[doc(hidden)]
pub mod __internal {
    pub use super::test_runner::TestRng;
}

impl TestRng {
    /// Seed a test RNG from a stable string (the test's module path).
    pub fn deterministic(name: &str) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        TestRng { rng: StdRng::seed_from_u64(h.finish()) }
    }
}
