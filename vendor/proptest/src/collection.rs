//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;
use crate::Strategy;

/// Anything usable as the size argument of [`vec`] / [`hash_set`]:
/// an exact `usize` or a `usize` range.
pub trait SizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        rng.rng.gen_range(self.start..self.end)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(*self.start()..=*self.end())
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`; duplicates are redrawn (bounded attempts),
/// so the set may come up short of the requested size if the element
/// domain is tiny.
pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Eq + Hash,
    R: SizeRange,
{
    HashSetStrategy { element, size }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Eq + Hash,
    R: SizeRange,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut set = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while set.len() < n && attempts < n * 20 + 100 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
