//! Sampling from fixed value sets.

use rand::Rng;

use crate::test_runner::TestRng;
use crate::Strategy;

/// Strategy choosing uniformly from a fixed list of values.
pub fn select<T: Clone + 'static>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "sample::select needs at least one value");
    Select { values }
}

/// See [`select`].
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.values.len());
        self.values[i].clone()
    }
}
