//! The RNG handed to strategies while a property runs.

use rand::rngs::StdRng;

/// Deterministic per-test random source.
///
/// Built by the [`proptest!`](crate::proptest) harness via
/// [`TestRng::deterministic`]; strategies draw from the inner [`StdRng`].
pub struct TestRng {
    pub(crate) rng: StdRng,
}
