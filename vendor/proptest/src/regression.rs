//! Failure-persistence support, mirroring upstream proptest's
//! `proptest-regressions/` files in index form.
//!
//! Cases in this shim are drawn from one sequential per-test RNG, so a
//! failing case is identified by its **case index**: replaying it means
//! running the loop far enough to reach that index again, which the
//! harness guarantees by extending the case budget to cover every
//! recorded index. A failure appends one `cc <index> <test>` line to
//! `<crate>/proptest-regressions/<source-file-stem>.txt`; passing runs
//! never write, so a dirty or untracked regression file in CI means a
//! property failed somewhere and its reproducer must be committed.

use std::io::Write;
use std::path::{Path, PathBuf};

/// The regression file for a given source file, under the crate root.
pub fn file_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    Path::new(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
}

/// Case indices previously recorded for `test` (absent file → none).
pub fn recorded(path: &Path, test: &str) -> Vec<u32> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut cases: Vec<u32> = content
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("cc ")?;
            let (idx, name) = rest.split_once(' ')?;
            (name.trim() == test).then(|| idx.parse().ok()).flatten()
        })
        .collect();
    cases.sort_unstable();
    cases.dedup();
    cases
}

/// The number of cases a run must cover so every recorded index is
/// replayed: at least `configured`, extended past the largest recording.
pub fn case_budget(configured: u32, recorded: &[u32]) -> u32 {
    match recorded.last() {
        Some(&max) => configured.max(max + 1),
        None => configured,
    }
}

/// Persist a failing case index (idempotent per `(test, case)` pair).
/// Creates the file with an explanatory header on first failure.
pub fn record(path: &Path, test: &str, case: u32) {
    if recorded(path, test).contains(&case) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let needs_header = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return; // failure persistence must never mask the test panic
    };
    if needs_header {
        let _ = writeln!(
            f,
            "# Failure cases recorded by the vendored proptest shim.\n\
             # Each line is `cc <case-index> <test>`: the deterministic case index at\n\
             # which <test> failed. Runs replay all indices up to the largest recorded\n\
             # one, so committed entries keep reproducing until the bug is fixed.\n\
             # Delete a line only when its failure is understood and resolved."
        );
    }
    let _ = writeln!(f, "cc {case} {test}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_dedups() {
        let dir = std::env::temp_dir().join(format!("proptest-regr-{}", std::process::id()));
        let path = dir.join("sample.txt");
        let _ = std::fs::remove_file(&path);
        assert!(recorded(&path, "t::a").is_empty());
        record(&path, "t::a", 7);
        record(&path, "t::a", 3);
        record(&path, "t::a", 7); // duplicate, ignored
        record(&path, "t::b", 1);
        assert_eq!(recorded(&path, "t::a"), vec![3, 7]);
        assert_eq!(recorded(&path, "t::b"), vec![1]);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with('#'), "missing header");
        assert_eq!(content.matches("cc ").count(), 3 + 1); // 3 entries + header mention
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_extends_past_recordings() {
        assert_eq!(case_budget(64, &[]), 64);
        assert_eq!(case_budget(64, &[3, 10]), 64);
        assert_eq!(case_budget(64, &[90]), 91);
    }

    #[test]
    fn paths_land_under_the_crate_root() {
        let p = file_path("/ws/crates/demo", "crates/demo/tests/proptest_x.rs");
        assert_eq!(p, Path::new("/ws/crates/demo/proptest-regressions/proptest_x.txt"));
    }
}
