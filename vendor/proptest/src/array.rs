//! Fixed-size array strategies.

use crate::test_runner::TestRng;
use crate::Strategy;

/// Strategy for `[T; 13]` from an element strategy.
pub fn uniform13<S: Strategy>(element: S) -> UniformArray<S, 13> {
    UniformArray { element }
}

/// An `[T; N]` strategy; see [`uniform13`].
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        core::array::from_fn(|_| self.element.sample(rng))
    }
}
