//! `Option<T>` strategies.

use rand::Rng;

use crate::test_runner::TestRng;
use crate::Strategy;

/// Strategy for `Option<T>`: `Some` three times out of four, like
/// upstream proptest's default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
