//! Offline facade matching the `serde_json` entry points CampusLab uses
//! (`to_string`, `to_writer`, `from_str`, `from_reader`, `Error`), backed
//! by the vendored `serde` JSON core.

use serde::{Deserialize, Serialize};

pub use serde::json::Value;

/// Serialization/deserialization error.
pub type Error = serde::json::Error;

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(&format!("io error: {e}")))
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = serde::json::parse(s)?;
    T::deserialize_json(&value)
}

/// Deserialize a value from a reader producing JSON text.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(&format!("io error: {e}")))?;
    from_str(&text)
}
