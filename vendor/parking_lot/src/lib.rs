//! Offline shim for `parking_lot`: a [`Mutex`] (and [`RwLock`]) with the
//! poison-free `lock()` API, implemented over `std::sync`. Performance
//! characteristics differ from real parking_lot; semantics do not, except
//! that a panic while holding the lock simply releases it.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
