//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde subset, implemented directly on `proc_macro` token trees (the
//! build environment has no syn/quote).
//!
//! Supported shapes — exactly what CampusLab's types use:
//! - structs with named fields
//! - tuple structs (arity 1 is serde's transparent "newtype" form)
//! - enums with unit, named-field, and tuple variants
//!
//! Unsupported (panics with a clear message): generic types and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct TypeDef {
    name: String,
    shape: Shape,
}

/// Emit a JSON `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def).parse().expect("generated Serialize impl must parse")
}

/// Emit a JSON `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def).parse().expect("generated Deserialize impl must parse")
}

// ---- parsing --------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(tokens.next());
                let shape = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::NamedStruct(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::TupleStruct(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("vendored serde derive does not support generic type `{name}`")
                    }
                    other => panic!("unexpected token after struct name: {other:?}"),
                };
                return TypeDef { name, shape };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(tokens.next());
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return TypeDef { name, shape: Shape::Enum(parse_variants(g.stream())) };
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("vendored serde derive does not support generic type `{name}`")
                    }
                    other => panic!("unexpected token after enum name: {other:?}"),
                }
            }
            Some(_) => {}
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

fn expect_ident(t: Option<TokenTree>) -> String {
    match t {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Field names of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            None => return fields,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field name, found {other:?}"),
                }
                // Consume the type: everything up to a comma at angle depth 0.
                let mut angle_depth = 0i32;
                loop {
                    match tokens.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            angle_depth += 1;
                            tokens.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                            angle_depth -= 1;
                            tokens.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                            tokens.next();
                            break;
                        }
                        Some(_) => {
                            tokens.next();
                        }
                    }
                }
            }
            other => panic!("expected field name, found {other:?}"),
        }
    }
}

/// Arity of a `( ... )` field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            None => return variants,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream()));
                tokens.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                tokens.next();
                f
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        loop {
            match tokens.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, fields });
    }
}

// ---- codegen --------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                code.push_str(&format!(
                    "out.push_str(\"{sep}\\\"{f}\\\":\");\n\
                     serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');");
            code
        }
        Shape::TupleStruct(1) => {
            "serde::Serialize::serialize_json(&self.0, out);".to_string()
        }
        Shape::TupleStruct(arity) => {
            let mut code = String::from("out.push('[');\n");
            for i in 0..*arity {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            code.push_str("out.push(']');");
            code
        }
        Shape::UnitStruct => "out.push_str(\"null\");".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let bindings = fields.join(", ");
                        let mut inner =
                            format!("out.push_str(\"{{\\\"{vname}\\\":{{\");\n");
                        for (i, f) in fields.iter().enumerate() {
                            let sep = if i == 0 { "" } else { "," };
                            inner.push_str(&format!(
                                "out.push_str(\"{sep}\\\"{f}\\\":\");\n\
                                 serde::Serialize::serialize_json({f}, out);\n"
                            ));
                        }
                        inner.push_str("out.push_str(\"}}\");\n");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n{inner}}}\n"
                        ));
                    }
                    VariantFields::Tuple(arity) => {
                        let bindings: Vec<String> =
                            (0..*arity).map(|i| format!("x{i}")).collect();
                        let pat = bindings.join(", ");
                        let mut inner = String::new();
                        if *arity == 1 {
                            inner.push_str(&format!(
                                "out.push_str(\"{{\\\"{vname}\\\":\");\n\
                                 serde::Serialize::serialize_json(x0, out);\n\
                                 out.push('}}');\n"
                            ));
                        } else {
                            inner.push_str(&format!(
                                "out.push_str(\"{{\\\"{vname}\\\":[\");\n"
                            ));
                            for (i, b) in bindings.iter().enumerate() {
                                if i > 0 {
                                    inner.push_str("out.push(',');\n");
                                }
                                inner.push_str(&format!(
                                    "serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            inner.push_str("out.push_str(\"]}}\");\n");
                        }
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => {{\n{inner}}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: serde::Deserialize::deserialize_json(\
                         serde::json::field(pairs, \"{f}\")?)?,\n"
                ));
            }
            format!(
                "let pairs = v.as_object()?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::deserialize_json(v)?))")
        }
        Shape::TupleStruct(arity) => {
            let mut items = String::new();
            for i in 0..*arity {
                items.push_str(&format!(
                    "serde::Deserialize::deserialize_json(&arr[{i}])?,\n"
                ));
            }
            format!(
                "let arr = v.as_array()?;\n\
                 if arr.len() != {arity} {{\n\
                     return Err(serde::json::Error::new(\"tuple struct arity mismatch\"));\n\
                 }}\n\
                 Ok({name}({items}))"
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: serde::Deserialize::deserialize_json(\
                                     serde::json::field(fields, \"{f}\")?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let fields = inner.as_object()?;\n\
                                 Ok({name}::{vname} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                    VariantFields::Tuple(arity) => {
                        if *arity == 1 {
                            data_arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{vname}(\
                                     serde::Deserialize::deserialize_json(inner)?)),\n"
                            ));
                        } else {
                            let mut items = String::new();
                            for i in 0..*arity {
                                items.push_str(&format!(
                                    "serde::Deserialize::deserialize_json(&arr[{i}])?,\n"
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let arr = inner.as_array()?;\n\
                                     if arr.len() != {arity} {{\n\
                                         return Err(serde::json::Error::new(\"variant arity mismatch\"));\n\
                                     }}\n\
                                     Ok({name}::{vname}({items}))\n\
                                 }}\n"
                            ));
                        }
                    }
                }
            }
            format!(
                "match v {{\n\
                     serde::json::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         _ => Err(serde::json::Error::new(\"unknown variant\")),\n\
                     }},\n\
                     serde::json::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let inner = &pairs[0].1;\n\
                         let _ = inner;\n\
                         match pairs[0].0.as_str() {{\n\
                             {data_arms}\
                             _ => Err(serde::json::Error::new(\"unknown variant\")),\n\
                         }}\n\
                     }}\n\
                     _ => Err(serde::json::Error::new(\"expected enum\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize_json(v: &serde::json::Value) \
                 -> std::result::Result<Self, serde::json::Error> {{\n\
                 let _ = &v;\n{body}\n}}\n\
         }}"
    )
}
