//! An offline micro-benchmark harness exposing the `criterion` API subset
//! CampusLab's benches use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up, then the iteration count is
//! doubled until one sample exceeds a minimum window, then several samples
//! run and the median per-iteration time is reported. Results print as
//! `bench: <name> ... <ns> ns/iter` and can additionally be written as a
//! JSON array via [`Criterion::json_path`] or the `BENCH_JSON` environment
//! variable — that is what produces `BENCH_netsim.json`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim always times the
/// routine per batch element and never times setup, so the variants only
/// tune how many inputs are pre-built per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as given to [`Criterion::bench_function`].
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per sample at the final measurement size.
    pub iters_per_sample: u64,
}

/// Benchmark driver; collects results from `bench_function` calls.
pub struct Criterion {
    results: Vec<BenchResult>,
    json_path: Option<PathBuf>,
    min_sample: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_FAST=1 trims the measurement window so `cargo test`
        // (which runs benches once in test mode) stays quick.
        let fast = std::env::var("CRITERION_FAST").is_ok();
        Criterion {
            results: Vec::new(),
            json_path: std::env::var_os("BENCH_JSON").map(PathBuf::from),
            min_sample: if fast { Duration::from_millis(5) } else { Duration::from_millis(60) },
            // Sample counts stay odd so the reported median is a real
            // middle element: with an even count, index len/2 is the upper
            // of the two middles, which silently biases toward the slower
            // sample — on a busy box that inflated gate measurements.
            samples: if fast { 3 } else { 7 },
        }
    }
}

impl Criterion {
    /// Also write results as a JSON array to `path` at summary time
    /// (the `BENCH_JSON` environment variable overrides this).
    pub fn json_path(&mut self, path: impl Into<PathBuf>) -> &mut Self {
        if self.json_path.is_none() {
            self.json_path = Some(path.into());
        }
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            min_sample: self.min_sample,
            samples: self.samples,
            result_ns: None,
            iters: 0,
        };
        f(&mut bencher);
        let ns = bencher.result_ns.unwrap_or(0.0);
        eprintln!("bench: {name:<48} {ns:>14.1} ns/iter");
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: ns,
            iters_per_sample: bencher.iters,
        });
        self
    }

    /// Finished results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the result table and write the JSON report if configured.
    /// Called by the `main` that [`criterion_main!`] generates.
    pub fn final_summary(&self) {
        if let Some(path) = &self.json_path {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!(
                    "  {{\"name\": {:?}, \"ns_per_iter\": {}, \"iters_per_sample\": {}}}",
                    r.name, r.ns_per_iter, r.iters_per_sample
                ));
            }
            out.push_str("\n]\n");
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("bench: failed to write {}: {e}", path.display());
            } else {
                eprintln!("bench: wrote {}", path.display());
            }
        }
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    min_sample: Duration,
    samples: usize,
    result_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over many iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + find an iteration count that fills the sample window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            if start.elapsed() >= self.min_sample || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
        self.iters = iters;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        // Grow the per-sample batch count until the timed portion fills
        // the sample window.
        let mut batches: u64 = 1;
        loop {
            let inputs: Vec<I> =
                (0..batch as u64 * batches).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            if start.elapsed() >= self.min_sample || batches >= 1 << 20 {
                break;
            }
            batches *= 2;
        }
        let total_iters = batch as u64 * batches;
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let inputs: Vec<I> = (0..total_iters).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                start.elapsed().as_nanos() as f64 / total_iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
        self.iters = total_iters;
    }
}

/// Bundle bench target functions into a group runner, mirroring
/// upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generate `main` running each group, mirroring upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
