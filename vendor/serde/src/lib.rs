//! An offline, JSON-only subset of `serde`.
//!
//! The registry is unreachable in this build environment, so CampusLab
//! vendors the slice of serde it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, realized directly as JSON
//! writing/reading (in the spirit of `miniserde`). There is no
//! `Serializer`/`Deserializer` abstraction — [`Serialize`] appends JSON
//! text and [`Deserialize`] reads from a parsed [`json::Value`] tree. The
//! output format matches what upstream `serde_json` would produce for the
//! same derives (newtype structs are transparent, unit enum variants are
//! strings, data variants are single-key objects), so stored artifacts
//! stay compatible if the real crates ever return.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Types that can be read back from a parsed JSON tree.
pub trait Deserialize: Sized {
    /// Build a value from a parsed JSON node.
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_for_ints {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                v.as_num()?
                    .parse::<$t>()
                    .map_err(|_| json::Error::new(concat!("invalid ", stringify!($t))))
            }
        }
    )*};
}

impl_for_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Deserialize for u128 {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_num()?.parse::<u128>().map_err(|_| json::Error::new("invalid u128"))
    }
}

/// Integer formatting without going through `format!` machinery twice.
fn itoa_buf(v: i128) -> String {
    v.to_string()
}

macro_rules! impl_for_floats {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's float Display is the shortest representation
                    // that round-trips exactly, which is what persistence
                    // (model thresholds!) relies on.
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                if matches!(v, json::Value::Null) {
                    return Ok(<$t>::NAN);
                }
                v.as_num()?
                    .parse::<$t>()
                    .map_err(|_| json::Error::new(concat!("invalid ", stringify!($t))))
            }
        }
    )*};
}

impl_for_floats!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            _ => Err(json::Error::new("expected bool")),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped_str(out, self);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            _ => Err(json::Error::new("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_array()?.iter().map(T::deserialize_json).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let items = v.as_array()?;
        if items.len() != N {
            return Err(json::Error::new("array length mismatch"));
        }
        let mut parsed = Vec::with_capacity(N);
        for item in items {
            parsed.push(T::deserialize_json(item)?);
        }
        parsed
            .try_into()
            .map_err(|_| json::Error::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(x) => x.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        T::deserialize_json(v).map(Box::new)
    }
}

macro_rules! impl_for_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                let items = v.as_array()?;
                let mut it = items.iter();
                let parsed = ($(
                    $name::deserialize_json(
                        it.next().ok_or_else(|| json::Error::new("tuple too short"))?,
                    )?,
                )+);
                if it.next().is_some() {
                    return Err(json::Error::new("tuple too long"));
                }
                Ok(parsed)
            }
        }
    )*};
}

impl_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for std::net::IpAddr {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped_str(out, &self.to_string());
    }
}

impl Deserialize for std::net::IpAddr {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => s.parse().map_err(|_| json::Error::new("invalid ip address")),
            _ => Err(json::Error::new("expected ip address string")),
        }
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped_str(out, &self.to_string());
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => s.parse().map_err(|_| json::Error::new("invalid ipv4 address")),
            _ => Err(json::Error::new("expected ipv4 address string")),
        }
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped_str(out, &self.to_string());
    }
}

impl Deserialize for std::net::Ipv6Addr {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => s.parse().map_err(|_| json::Error::new("invalid ipv6 address")),
            _ => Err(json::Error::new("expected ipv6 address string")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        // Keys are serialized then re-wrapped as strings; only string-ish
        // keys make valid JSON, which is all CampusLab uses.
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut key = String::new();
            k.serialize_json(&mut key);
            if key.starts_with('"') {
                out.push_str(&key);
            } else {
                json::write_escaped_str(out, &key);
            }
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}
