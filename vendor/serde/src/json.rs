//! The JSON value tree, parser, and writer shared by the vendored
//! `serde`/`serde_json` pair.
//!
//! Numbers keep their source text (`Value::Num(String)`) so integers up to
//! `u128` and shortest-round-trip floats survive a parse → rebuild cycle
//! without precision loss.

use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A number, kept as its exact source text.
    Num(String),
    Str(String),
    Array(Vec<Value>),
    /// Key/value pairs in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number's source text, or a type error.
    pub fn as_num(&self) -> Result<&str, Error> {
        match self {
            Value::Num(s) => Ok(s),
            _ => Err(Error::new("expected number")),
        }
    }

    /// The array items, or a type error.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(Error::new("expected array")),
        }
    }

    /// The object pairs, or a type error.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(pairs) => Ok(pairs),
            _ => Err(Error::new("expected object")),
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Fetch a required field from object pairs.
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(&format!("missing field `{name}`")))
}

/// A parse or shape error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(msg: &str) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new("trailing characters after document"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(&format!("expected `{}` at byte {}", b as char, pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new("expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::new("expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(&format!("expected `{word}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Bulk-copy the maximal run of ordinary bytes. The loop
                // breaks only at ASCII delimiters (quote, backslash,
                // control), which cannot appear inside a multi-byte UTF-8
                // scalar, so the run is validated once as a unit —
                // re-validating the whole remaining input per character
                // would be quadratic on multi-megabyte documents.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                if *pos == start {
                    // A raw control byte: tolerated, as the old
                    // scalar-at-a-time reader did.
                    s.push(b as char);
                    *pos += 1;
                } else {
                    let run = std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    s.push_str(run);
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(Error::new("expected a value"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number"))?;
    // Validate by parsing as f64 (covers every numeric shape we emit).
    text.parse::<f64>().map_err(|_| Error::new("invalid number"))?;
    Ok(Value::Num(text.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let doc = r#"{"a": 1, "b": [true, null, "x\ny"], "c": -2.5e3}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Num("1".into())));
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[2],
            Value::Str("x\ny".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped_str(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd\u{1}".into()));
    }
}
