//! Sequence helpers (`rand::seq`): the subset CampusLab uses.

use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
