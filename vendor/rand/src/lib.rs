//! A minimal, dependency-free, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of `rand` APIs CampusLab uses are vendored here: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. It does NOT
//! produce the same stream as upstream `rand`'s ChaCha-based `StdRng` — it
//! only promises what CampusLab relies on: a deterministic, well-mixed,
//! platform-independent stream for a given seed.

pub mod rngs;
pub mod seq;

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a deterministic RNG from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform bounded sampler, the bound behind
/// [`Rng::gen_range`]. A single generic [`SampleRange`] impl over this
/// trait (rather than per-type range impls) is what lets type inference
/// flow outward from call sites like `slice[rng.gen_range(0..3)]`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)` (or `[start, end]` if `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                // Multiply-shift bounded sampling: bias is < 2^-64, far
                // below anything the simulator's statistics can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(start, end, true, rng)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-100..=100);
            assert!((-100..=100).contains(&i));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
