//! Concrete RNGs. `StdRng` is xoshiro256++ — small, fast, and more than
//! adequate for simulation workloads (it is not cryptographic, and neither
//! is anything CampusLab does with it).

use crate::{RngCore, SeedableRng};

/// The standard deterministic simulator RNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64, used to expand a 64-bit seed into full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Expose the raw xoshiro256++ state word-for-word, so simulators can
    /// checkpoint an RNG mid-stream and restore it bit-exactly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild an RNG from state captured by [`StdRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
