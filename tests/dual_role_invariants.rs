//! Property-style integration invariants spanning crates: conservation
//! laws the whole system must obey regardless of scenario parameters.

use campuslab::netsim::SimDuration;
use campuslab::testbed::{collect, AttackScenario, Scenario};
use proptest::prelude::*;

fn scenario(seed: u64, sessions_per_sec: f64, qps: f64) -> Scenario {
    let mut s = Scenario::small();
    s.campus.seed = seed;
    s.workload.seed = seed;
    s.workload.sessions_per_sec = sessions_per_sec;
    s.workload.duration = SimDuration::from_secs(3);
    s.attack = if qps > 0.0 {
        AttackScenario::DnsAmplification {
            victim_index: 0,
            qps,
            start_frac: 0.2,
            duration_frac: 0.6,
        }
    } else {
        AttackScenario::None
    };
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Packet conservation: everything injected is delivered or dropped,
    /// and the monitor never sees more than crossed the border.
    #[test]
    fn conservation_holds(seed in 1u64..500, rate in 2.0f64..12.0, qps in 0.0f64..300.0) {
        let s = scenario(seed, rate, qps);
        let data = collect(&s);
        prop_assert_eq!(
            data.net.injected,
            data.net.delivered + data.net.dropped_total(),
            "packets must be conserved"
        );
        prop_assert!(data.monitor.observed <= data.net.injected);
        prop_assert_eq!(data.monitor.captured + data.monitor.ring_dropped, data.monitor.observed);
        // Flow assembly conserves captured packets.
        let flow_packets: u64 = data.flows.iter().map(|f| f.total_packets()).sum();
        prop_assert_eq!(flow_packets, data.monitor.captured);
    }

    /// Label soundness: malicious counts in the capture match the ground
    /// truth the generator injected (no labels invented or lost en route).
    #[test]
    fn labels_survive_the_pipeline(seed in 1u64..500, qps in 50.0f64..400.0) {
        let s = scenario(seed, 4.0, qps);
        let data = collect(&s);
        let malicious = data.packets.iter().filter(|p| p.is_malicious()).count();
        // Responses cross the border; query volume equals response volume.
        let expected = (qps * (3.0 * 0.6)).round() as usize;
        // Allow for network drops and edge effects but demand the bulk.
        prop_assert!(malicious > 0);
        prop_assert!(
            malicious <= expected + 2,
            "more malicious packets captured ({malicious}) than generated ({expected})"
        );
        prop_assert!(
            malicious * 10 >= expected * 8,
            "too many attack packets vanished: {malicious} of {expected}"
        );
    }

    /// Determinism: the same scenario collects the same data, always.
    #[test]
    fn collection_is_deterministic(seed in 1u64..100) {
        let a = collect(&scenario(seed, 5.0, 100.0));
        let b = collect(&scenario(seed, 5.0, 100.0));
        prop_assert_eq!(a.packets.len(), b.packets.len());
        prop_assert_eq!(a.net.delivered, b.net.delivered);
        prop_assert_eq!(a.flows.len(), b.flows.len());
        let bytes_a: u64 = a.packets.iter().map(|p| u64::from(p.wire_len)).sum();
        let bytes_b: u64 = b.packets.iter().map(|p| u64::from(p.wire_len)).sum();
        prop_assert_eq!(bytes_a, bytes_b);
    }
}
