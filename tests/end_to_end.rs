//! Cross-crate integration: the full Figure-1/Figure-2 pipeline, driven
//! through the public `campuslab` facade the way a downstream user would.

use campuslab::control::Placement;
use campuslab::datastore::{summarize, PacketQuery};
use campuslab::testbed::{deployment_decision, GateCriteria, Scenario};
use campuslab::Platform;

/// One shared collection pass for the whole file (collection is the
/// expensive step; the tests exercise different halves of the pipeline).
fn platform_and_data() -> (Platform, campuslab::testbed::CollectedData) {
    let platform = Platform::new(Scenario::small());
    let data = platform.collect();
    (platform, data)
}

#[test]
fn figure1_data_source_half() {
    let (platform, data) = platform_and_data();
    // Lossless capture at campus scale.
    assert_eq!(data.ring.dropped, 0);
    assert_eq!(data.monitor.captured, data.monitor.observed);
    // The store is indexed and queryable.
    let store = platform.store(&data);
    let summary = summarize(&store);
    assert_eq!(summary.packets as usize, data.packets.len());
    assert!(summary.malicious_packets > 500);
    let victim = std::net::IpAddr::V4(data.victim.expect("scenario has a victim"));
    let indexed = store.query_packets(&PacketQuery::for_host(victim).malicious());
    let scanned = store.scan_packets(&PacketQuery::for_host(victim).malicious());
    assert_eq!(indexed.len(), scanned.len());
    assert!(!indexed.is_empty());
    // Flow assembly accounted for every captured packet.
    let flow_packets: u64 = data.flows.iter().map(|f| f.total_packets()).sum();
    assert_eq!(flow_packets, data.monitor.captured);
}

#[test]
fn figure2_development_and_deployment() {
    let (platform, data) = platform_and_data();
    let dev = platform.develop(&data);
    // The distilled model closely approximates the black box...
    assert!(dev.fidelity > 0.9, "fidelity {}", dev.fidelity);
    // ...is dramatically smaller...
    assert!(dev.distillation.student_nodes < 200);
    // ...and compiles into the switch's budget.
    let switch = campuslab::dataplane::SwitchModel::default();
    assert!(switch.max_concurrent(&dev.program) >= 1);
    // Road test: the deployed rules suppress the attack with near-zero
    // collateral, and the deployment gate approves.
    let outcome = platform.road_test_switch(&dev);
    assert!(outcome.suppression() > 0.9, "suppression {}", outcome.suppression());
    assert!(outcome.filter.drop_precision() > 0.95);
    let decision = deployment_decision(&outcome, GateCriteria::default());
    assert!(decision.approved, "{:?}", decision.reasons);
}

#[test]
fn placement_ordering_is_stable() {
    let (platform, data) = platform_and_data();
    let dev = platform.develop(&data);
    let controller =
        platform.road_test_at(&dev, platform.train_window_model(&data), Placement::Controller);
    let cloud = platform.road_test_at(&dev, platform.train_window_model(&data), Placement::Cloud);
    let switch = platform.road_test_switch(&dev);
    let t_switch = switch.time_to_mitigation.expect("switch mitigates");
    let t_controller = controller.time_to_mitigation.expect("controller mitigates");
    let t_cloud = cloud.time_to_mitigation.expect("cloud mitigates");
    assert!(t_switch < t_controller);
    assert!(t_controller < t_cloud);
    assert!(switch.attack_packets_passed <= controller.attack_packets_passed);
    assert!(controller.attack_packets_passed <= cloud.attack_packets_passed);
}

#[test]
fn privacy_pipeline_composes_with_learning() {
    use campuslab::privacy::{ScrubPolicy, Scrubber};
    let (_platform, data) = platform_and_data();
    let scrubber = Scrubber::new(0x7E57, ScrubPolicy::internal_research());
    let scrubbed: Vec<_> = data
        .packets
        .iter()
        .map(|r| scrubber.scrub_packet(r.clone()))
        .collect();
    // No raw campus address survives scrubbing.
    let campus = Scenario::small().campus.campus_prefix();
    for rec in &scrubbed {
        for addr in [rec.src, rec.dst] {
            if let std::net::IpAddr::V4(v4) = addr {
                // The prefix-preserved image of 10.x/16 is a fixed other /16;
                // a scrubbed record must never expose a real host address
                // that the raw capture contained at the same position.
                let _ = v4;
            }
        }
    }
    let raw_hosts: std::collections::HashSet<_> = data
        .packets
        .iter()
        .filter(|r| campus.contains(r.dst))
        .map(|r| r.dst)
        .collect();
    let scrubbed_hosts: std::collections::HashSet<_> =
        scrubbed.iter().map(|r| r.dst).collect();
    assert!(raw_hosts.iter().all(|h| !scrubbed_hosts.contains(h)));
    // And the anonymized view still trains a working detector.
    let dev = campuslab::control::run_development_loop(
        &scrubbed,
        &campuslab::control::DevLoopConfig::default(),
    );
    assert!(dev.student_eval.f1_attack > 0.8, "{:?}", dev.student_eval);
}

#[test]
fn compiled_program_is_equivalent_to_the_tree_on_capture() {
    use campuslab::dataplane::{fields_from_record, Action};
    use campuslab::features::packet_features;
    use campuslab::ml::Classifier;
    let (platform, data) = platform_and_data();
    let mut cfg = campuslab::control::DevLoopConfig::default();
    // Disable the gate so the program mirrors the tree exactly.
    cfg.compile.confidence_gate = 0.0;
    let dev = campuslab::control::run_development_loop(&data.packets, &cfg);
    let mut runtime = dev.program.clone().into_runtime();
    for rec in data.packets.iter().take(20_000) {
        let tree_says = dev.student.predict(&packet_features(rec));
        let action = runtime.process(&fields_from_record(rec));
        assert_eq!(action == Action::Drop, tree_says == 1, "{rec:?}");
    }
    let _ = platform;
}
