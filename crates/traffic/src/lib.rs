//! # campuslab-traffic
//!
//! Labeled workload generation for a simulated campus network: benign
//! application mixes (web, video, DNS, SSH, mail, backup, NTP) with
//! heavy-tailed sizes and diurnal load, plus attack campaigns (DNS
//! amplification, SYN flood, port scan, SSH brute force, exfiltration).
//!
//! Every generated packet carries ground-truth labels — the thing the paper
//! says real networks almost never provide ("labelled data that is key to
//! applying some of the existing AI/ML techniques to network-specific
//! problems is largely non-existent", §2). Because CampusLab's campus is
//! simulated, labels are perfect by construction, and experiments measure
//! how well the monitoring + learning pipeline recovers them.
//!
//! ```
//! use campuslab_netsim::{Campus, CampusConfig, SimDuration};
//! use campuslab_traffic::{TrafficGenerator, WorkloadConfig};
//!
//! let campus = Campus::build(CampusConfig {
//!     dist_count: 1, access_per_dist: 2, hosts_per_access: 4,
//!     external_hosts: 8, ..CampusConfig::default()
//! });
//! let mut gen = TrafficGenerator::new(&campus, WorkloadConfig {
//!     duration: SimDuration::from_secs(1),
//!     sessions_per_sec: 10.0,
//!     ..WorkloadConfig::default()
//! });
//! let schedule = gen.generate();
//! assert!(schedule.len() > 0);
//! assert_eq!(schedule.malicious_split().0, 0); // benign until attacks added
//! ```

pub mod distributions;
pub mod labels;
pub mod schedule;
pub mod apps;
pub mod attacks;
pub mod workload;

pub use apps::{Endpoint, SessionEnv, MSS};
pub use labels::{AppClass, AttackKind};
pub use schedule::{Injection, Schedule};
pub use workload::{default_mix, TrafficGenerator, WorkloadConfig};
