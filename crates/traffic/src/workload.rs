//! The workload generator: turns a [`Campus`] and a [`WorkloadConfig`] into
//! a labeled packet [`Schedule`] — the benign campus mix plus any attack
//! campaigns layered on top.

use crate::apps::{self, Endpoint, SessionEnv};
use crate::attacks;
use crate::distributions::{diurnal_multiplier, Exponential, Zipf};
use crate::labels::{AppClass, AttackKind};
use crate::schedule::Schedule;
use campuslab_netsim::{Campus, NodeId, PacketBuilder, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the benign workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// How long sessions keep starting.
    pub duration: SimDuration,
    /// Mean session arrival rate (before diurnal modulation).
    pub sessions_per_sec: f64,
    /// Application mix weights.
    pub mix: Vec<(AppClass, f64)>,
    /// Apply the day/night load curve.
    pub diurnal: bool,
    /// Length of a simulated "day" (compressible for short runs).
    pub day_length: SimDuration,
    /// RTT to external services.
    pub external_rtt: SimDuration,
    /// RTT inside the campus.
    pub internal_rtt: SimDuration,
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            duration: SimDuration::from_secs(10),
            sessions_per_sec: 30.0,
            mix: default_mix(),
            diurnal: false,
            day_length: SimDuration::from_secs(86_400),
            external_rtt: SimDuration::from_millis(15),
            internal_rtt: SimDuration::from_millis(1),
            seed: 42,
        }
    }
}

/// The default campus application mix, loosely shaped like published campus
/// traffic studies: web-dominated, with DNS chatter, some video elephants,
/// and operational background (NTP, mail, backups, SSH).
pub fn default_mix() -> Vec<(AppClass, f64)> {
    vec![
        (AppClass::Dns, 0.25),
        (AppClass::Web, 0.34),
        (AppClass::Video, 0.07),
        (AppClass::Ssh, 0.08),
        (AppClass::Mail, 0.08),
        (AppClass::Backup, 0.02),
        (AppClass::Ntp, 0.14),
        (AppClass::Icmp, 0.02),
    ]
}

/// Generates labeled schedules for one campus.
pub struct TrafficGenerator<'c> {
    campus: &'c Campus,
    cfg: WorkloadConfig,
    rng: StdRng,
    builder: PacketBuilder,
    next_flow: u64,
    host_pop: Zipf,
    ext_pop: Zipf,
    domains: Vec<String>,
}

impl<'c> TrafficGenerator<'c> {
    /// Create a generator for `campus`.
    pub fn new(campus: &'c Campus, cfg: WorkloadConfig) -> Self {
        assert!(!campus.hosts.is_empty(), "campus has no hosts");
        assert!(!campus.external.is_empty(), "campus has no external hosts");
        let rng = StdRng::seed_from_u64(cfg.seed);
        let domains = (0..48)
            .map(|k| {
                let tld = ["com", "org", "net", "edu"][k % 4];
                format!("svc{k}.example{}.{tld}", k % 7)
            })
            .collect();
        TrafficGenerator {
            rng,
            host_pop: Zipf::new(campus.hosts.len(), 0.9),
            ext_pop: Zipf::new(campus.external.len(), 1.0),
            campus,
            cfg,
            builder: PacketBuilder::new(),
            next_flow: 0,
            domains,
        }
    }

    /// Endpoint handle for a node.
    pub fn endpoint(&self, node: NodeId) -> Endpoint {
        Endpoint { node, addr: self.campus.addr_of(node) }
    }

    fn random_host(&mut self) -> Endpoint {
        let idx = self.host_pop.sample(&mut self.rng);
        self.endpoint(self.campus.hosts[idx])
    }

    fn random_external(&mut self) -> Endpoint {
        let idx = self.ext_pop.sample(&mut self.rng);
        self.endpoint(self.campus.external[idx])
    }

    fn pick_class(&mut self) -> AppClass {
        let total: f64 = self.cfg.mix.iter().map(|(_, w)| w).sum();
        let mut u = self.rng.gen::<f64>() * total;
        for &(class, w) in &self.cfg.mix {
            if u < w {
                return class;
            }
            u -= w;
        }
        self.cfg.mix.last().map(|&(c, _)| c).unwrap_or(AppClass::Web)
    }

    /// Generate the benign workload schedule.
    pub fn generate(&mut self) -> Schedule {
        let mut schedule = Schedule::new();
        let base_gap = Exponential::new(self.cfg.sessions_per_sec.max(1e-9));
        let mut t = SimTime::ZERO;
        loop {
            let mut gap = base_gap.sample(&mut self.rng);
            if self.cfg.diurnal {
                let frac = t.as_secs_f64() / self.cfg.day_length.as_secs_f64();
                gap /= diurnal_multiplier(frac, 0.2).max(1e-3);
            }
            t += SimDuration::from_secs_f64(gap);
            if t.since(SimTime::ZERO) > self.cfg.duration {
                break;
            }
            let class = self.pick_class();
            self.emit_session(&mut schedule, t, class);
        }
        schedule.sort();
        schedule
    }

    fn emit_session(&mut self, schedule: &mut Schedule, t: SimTime, class: AppClass) {
        let client = self.random_host();
        let resolver = self.endpoint(self.campus.servers.dns);
        let mail = self.endpoint(self.campus.servers.mail);
        let ext_rtt = self.cfg.external_rtt;
        let int_rtt = self.cfg.internal_rtt;
        let domain_idx = {
            
            self.host_pop.sample(&mut self.rng) % self.domains.len()
        };
        let server = self.random_external();
        let upstream = self.random_external();
        let domain = self.domains[domain_idx].clone();
        let peer_host = self.random_host();
        let coin: f64 = self.rng.gen();
        // Resolver cache behaviour: misses trigger upstream recursion that
        // crosses the border; a slice of upstream answers is legitimately
        // fat (DNSSEC/TXT), overlapping amplification sizes.
        let cache_miss: bool = self.rng.gen::<f64>() < 0.4;
        let fat_answer: bool = self.rng.gen::<f64>() < 0.25;
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        match class {
            AppClass::Dns => {
                apps::dns_lookup(
                    &mut env,
                    t,
                    client,
                    resolver,
                    &domain,
                    campuslab_wire::DnsType::A,
                    server.addr,
                    int_rtt,
                );
                if cache_miss {
                    apps::dns_upstream_lookup(
                        &mut env, t, resolver, upstream, &domain, server.addr, ext_rtt, fat_answer,
                    );
                }
            }
            AppClass::Web => {
                if cache_miss {
                    apps::dns_upstream_lookup(
                        &mut env, t, resolver, upstream, &domain, server.addr, ext_rtt, fat_answer,
                    );
                }
                apps::web_session(&mut env, t, client, resolver, server, &domain, ext_rtt, 16_000.0);
            }
            AppClass::Video => {
                apps::video_session(&mut env, t, client, server, ext_rtt);
            }
            AppClass::Ssh => {
                // Half the sessions stay on campus, half go out.
                let peer = if coin < 0.5 { peer_host } else { server };
                let rtt = if coin < 0.5 { int_rtt } else { ext_rtt };
                apps::ssh_session(&mut env, t, client, peer, rtt);
            }
            AppClass::Mail => {
                // Inbound mail (external -> campus MX) or outbound relay.
                if coin < 0.5 {
                    apps::mail_session(&mut env, t, server, mail, ext_rtt);
                } else {
                    apps::mail_session(&mut env, t, client, mail, int_rtt);
                }
            }
            AppClass::Backup => {
                apps::backup_session(&mut env, t, client, server, ext_rtt);
            }
            AppClass::Ntp => {
                apps::ntp_session(&mut env, t, client, server, ext_rtt);
            }
            AppClass::Icmp => {
                let count = env.rng.gen_range(3..8);
                apps::ping_session(&mut env, t, client, server, ext_rtt, count);
            }
        }
    }

    /// Layer a DNS amplification campaign onto `schedule` (paper §2).
    pub fn add_dns_amplification(
        &mut self,
        schedule: &mut Schedule,
        victim: NodeId,
        qps: f64,
        start: SimTime,
        duration: SimDuration,
    ) {
        let attacker = self.endpoint(*self.campus.external.last().expect("external hosts"));
        let reflectors: Vec<Endpoint> = self
            .campus
            .external
            .iter()
            .take(8.min(self.campus.external.len().saturating_sub(1)).max(1))
            .map(|&n| self.endpoint(n))
            .collect();
        let campaign = attacks::DnsAmplification {
            attacker,
            victim: self.endpoint(victim),
            reflectors,
            qps,
            start,
            duration,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::dns_amplification(&mut env, &campaign);
    }

    /// Layer a signature-rotating reflection campaign onto `schedule`:
    /// one phase per `(service_port, start, duration)` entry, each phase
    /// drawing a different reflector pool from the external population so
    /// the flood's source prefixes rotate along with its port. This is
    /// the adversarial-drift workload (experiment E17).
    pub fn add_rotating_reflection(
        &mut self,
        schedule: &mut Schedule,
        victim: NodeId,
        qps: f64,
        phases: &[(u16, SimTime, SimDuration)],
    ) {
        let attacker = self.endpoint(*self.campus.external.last().expect("external hosts"));
        // The attacker node is reserved; reflector pools tile the rest.
        let ext = &self.campus.external[..self.campus.external.len().saturating_sub(1)];
        assert!(!ext.is_empty(), "rotating reflection needs non-attacker externals");
        let pool = 4.min(ext.len());
        let phases: Vec<attacks::ReflectionPhase> = phases
            .iter()
            .enumerate()
            .map(|(k, &(service_port, start, duration))| attacks::ReflectionPhase {
                service_port,
                reflectors: (0..pool)
                    .map(|j| self.endpoint(ext[(k * pool + j) % ext.len()]))
                    .collect(),
                start,
                duration,
            })
            .collect();
        let campaign = attacks::RotatingReflection {
            attacker,
            victim: self.endpoint(victim),
            phases,
            qps,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::rotating_reflection(&mut env, &campaign);
    }

    /// Layer a new-application rollout onto `schedule`: from `start`,
    /// extra sessions of `class` arrive at `sessions_per_sec` on top of
    /// the base mix — the benign-drift workload (a campus-wide app
    /// deployment shifting the feature distribution without any attack).
    pub fn add_app_rollout(
        &mut self,
        schedule: &mut Schedule,
        class: AppClass,
        sessions_per_sec: f64,
        start: SimTime,
        duration: SimDuration,
    ) {
        let gap = Exponential::new(sessions_per_sec.max(1e-9));
        let mut t = start;
        loop {
            t += SimDuration::from_secs_f64(gap.sample(&mut self.rng));
            if t.since(start) > duration {
                break;
            }
            self.emit_session(schedule, t, class);
        }
        schedule.sort();
    }

    /// Layer a SYN flood at a campus server onto `schedule`.
    pub fn add_syn_flood(
        &mut self,
        schedule: &mut Schedule,
        victim: NodeId,
        dport: u16,
        pps: f64,
        start: SimTime,
        duration: SimDuration,
    ) {
        let campaign = attacks::SynFlood {
            attacker: self.endpoint(*self.campus.external.last().expect("external hosts")),
            victim: self.endpoint(victim),
            dport,
            pps,
            start,
            duration,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::syn_flood(&mut env, &campaign);
    }

    /// Layer a port scan of the first `n_targets` campus hosts.
    pub fn add_port_scan(
        &mut self,
        schedule: &mut Schedule,
        n_targets: usize,
        ports: Vec<u16>,
        pps: f64,
        start: SimTime,
    ) {
        let targets: Vec<Endpoint> = self
            .campus
            .hosts
            .iter()
            .take(n_targets)
            .map(|&n| self.endpoint(n))
            .collect();
        let campaign = attacks::PortScan {
            attacker: self.endpoint(*self.campus.external.last().expect("external hosts")),
            targets,
            ports,
            pps,
            start,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::port_scan(&mut env, &campaign);
    }

    /// Layer an SSH brute-force campaign against a campus host.
    pub fn add_ssh_brute_force(
        &mut self,
        schedule: &mut Schedule,
        victim: NodeId,
        attempts: usize,
        rate: f64,
        start: SimTime,
    ) {
        let campaign = attacks::SshBruteForce {
            attacker: self.endpoint(*self.campus.external.last().expect("external hosts")),
            victim: self.endpoint(victim),
            attempts,
            rate,
            start,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::ssh_brute_force(&mut env, &campaign);
    }

    /// Layer a slow exfiltration from a compromised campus host.
    pub fn add_exfiltration(
        &mut self,
        schedule: &mut Schedule,
        compromised: NodeId,
        bytes: usize,
        pace_bps: u64,
        start: SimTime,
    ) {
        let campaign = attacks::Exfiltration {
            compromised: self.endpoint(compromised),
            sink: self.endpoint(*self.campus.external.last().expect("external hosts")),
            bytes,
            pace_bps,
            start,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::exfiltration(&mut env, &campaign);
    }

    /// Layer one campaign of each [`AttackKind`] spread over the workload
    /// window — the "attack climate" used by multi-class experiments.
    pub fn add_mixed_attacks(&mut self, schedule: &mut Schedule) {
        let victim = self.campus.hosts[0];
        let web = self.campus.servers.web;
        let span = self.cfg.duration;
        let at = |f: f64| SimTime::ZERO + SimDuration::from_secs_f64(span.as_secs_f64() * f);
        self.add_dns_amplification(
            schedule,
            victim,
            400.0,
            at(0.1),
            SimDuration::from_secs_f64(span.as_secs_f64() * 0.25),
        );
        self.add_syn_flood(
            schedule,
            web,
            443,
            800.0,
            at(0.4),
            SimDuration::from_secs_f64(span.as_secs_f64() * 0.2),
        );
        self.add_port_scan(schedule, 16, (20..60).collect(), 500.0, at(0.6));
        self.add_ssh_brute_force(schedule, self.campus.hosts[1], 30, 4.0, at(0.7));
        self.add_exfiltration(schedule, self.campus.hosts[2], 3_000_000, 4_000_000, at(0.75));
    }

    /// Ids of every attack kind `add_mixed_attacks` injects. Deliberately
    /// not [`AttackKind::ALL`]: the resolver water torture
    /// ([`AttackKind::NxdomainFlood`]) only makes sense against a live
    /// resolver actor and is layered by the ResolverLab experiment, not by
    /// the generic attack climate.
    pub fn mixed_attack_kinds() -> [AttackKind; 5] {
        [
            AttackKind::DnsAmplification,
            AttackKind::SynFlood,
            AttackKind::PortScan,
            AttackKind::SshBruteForce,
            AttackKind::Exfiltration,
        ]
    }

    /// Benign resolver-client load for runs where a live resolver actor
    /// answers: **queries only**, Zipf-skewed over the workload domains.
    ///
    /// The regular [`AppClass::Dns`] sessions script both query and
    /// response (the resolver is a passive sink there); layering those onto
    /// a run with a real resolver actor would double every answer. This
    /// generator is the actor-era replacement.
    pub fn add_resolver_clients(
        &mut self,
        schedule: &mut Schedule,
        qps: f64,
        start: SimTime,
        duration: SimDuration,
    ) {
        let resolver = self.endpoint(self.campus.servers.dns);
        let n = (qps * duration.as_secs_f64()).round() as usize;
        let gap = SimDuration::from_secs_f64(1.0 / qps.max(1e-9));
        for i in 0..n {
            let client = self.random_host();
            let domain_idx = self.host_pop.sample(&mut self.rng) % self.domains.len();
            let domain = self.domains[domain_idx].clone();
            let t = start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
            let flow_id = self.next_flow;
            self.next_flow += 1;
            let truth = campuslab_netsim::GroundTruth {
                flow_id,
                app_class: AppClass::Dns.id(),
                attack: None,
            };
            let id: u16 = self.rng.gen();
            let sport: u16 = self.rng.gen_range(1024..61000);
            let mut qbytes = Vec::new();
            campuslab_wire::DnsMessage::query(id, &domain, campuslab_wire::DnsType::A)
                .emit(&mut qbytes)
                .expect("workload domains are valid");
            let pkt = self.builder.udp_v4(
                client.addr,
                resolver.addr,
                sport,
                53,
                campuslab_netsim::Payload::Bytes(qbytes.into()),
                64,
                truth,
            );
            schedule.push(t, client.node, pkt);
        }
    }

    /// Layer a water-torture NXDOMAIN flood at the campus resolver.
    pub fn add_nxdomain_flood(
        &mut self,
        schedule: &mut Schedule,
        n_sources: usize,
        qps_per_source: f64,
        start: SimTime,
        duration: SimDuration,
    ) {
        let sources: Vec<Endpoint> = self
            .campus
            .external
            .iter()
            .rev()
            .take(n_sources.max(1))
            .map(|&n| self.endpoint(n))
            .collect();
        let campaign = attacks::NxdomainFlood {
            sources,
            resolver: self.endpoint(self.campus.servers.dns),
            base_domain: "torture.example.net".into(),
            qps_per_source,
            // ~6% of the flood arrives mangled, exercising the resolver's
            // malformed-input paths while the attack is on.
            corrupt_permille: 63,
            start,
            duration,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::nxdomain_flood(&mut env, &campaign);
    }

    /// Layer an ANY/TXT amplification burst abusing the campus resolver.
    pub fn add_resolver_amp_burst(
        &mut self,
        schedule: &mut Schedule,
        victim: NodeId,
        qps: f64,
        start: SimTime,
        duration: SimDuration,
    ) {
        let campaign = attacks::ResolverAmpBurst {
            attacker: self.endpoint(*self.campus.external.last().expect("external hosts")),
            victim: self.endpoint(victim),
            resolver: self.endpoint(self.campus.servers.dns),
            zone: "amp.example.org".into(),
            qps,
            start,
            duration,
        };
        let mut env = SessionEnv {
            builder: &mut self.builder,
            rng: &mut self.rng,
            schedule,
            next_flow: &mut self.next_flow,
        };
        attacks::resolver_amp_burst(&mut env, &campaign);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::CampusConfig;

    fn small_campus() -> Campus {
        Campus::build(CampusConfig {
            dist_count: 2,
            access_per_dist: 2,
            hosts_per_access: 4,
            external_hosts: 10,
            ..CampusConfig::default()
        })
    }

    #[test]
    fn generates_labeled_benign_mix() {
        let campus = small_campus();
        let mut g = TrafficGenerator::new(&campus, WorkloadConfig {
            duration: SimDuration::from_secs(5),
            sessions_per_sec: 20.0,
            ..WorkloadConfig::default()
        });
        let s = g.generate();
        assert!(s.len() > 500, "too few packets: {}", s.len());
        let by_app = s.count_by_app();
        // The two dominant classes must be present; all packets labeled.
        assert!(by_app.contains_key(&AppClass::Dns.id()));
        assert!(by_app.contains_key(&AppClass::Web.id()));
        assert!(!by_app.contains_key(&0), "unlabeled packets found");
        let (mal, _) = s.malicious_split();
        assert_eq!(mal, 0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let campus = small_campus();
        let run = || {
            let mut g = TrafficGenerator::new(&campus, WorkloadConfig {
                duration: SimDuration::from_secs(2),
                ..WorkloadConfig::default()
            });
            let s = g.generate();
            (s.len(), s.total_bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn attack_layering_marks_malicious() {
        let campus = small_campus();
        let mut g = TrafficGenerator::new(&campus, WorkloadConfig {
            duration: SimDuration::from_secs(3),
            sessions_per_sec: 5.0,
            ..WorkloadConfig::default()
        });
        let mut s = g.generate();
        let benign = s.len();
        g.add_dns_amplification(
            &mut s,
            campus.hosts[0],
            200.0,
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
        );
        let (mal, ben) = s.malicious_split();
        assert_eq!(ben, benign);
        assert_eq!(mal, 400);
    }

    #[test]
    fn mixed_attacks_cover_all_kinds() {
        let campus = small_campus();
        let mut g = TrafficGenerator::new(&campus, WorkloadConfig {
            duration: SimDuration::from_secs(4),
            sessions_per_sec: 2.0,
            ..WorkloadConfig::default()
        });
        let mut s = g.generate();
        g.add_mixed_attacks(&mut s);
        let kinds: std::collections::HashSet<u16> = s
            .iter()
            .filter_map(|i| i.packet.truth.attack)
            .collect();
        assert_eq!(kinds.len(), TrafficGenerator::mixed_attack_kinds().len());
    }

    #[test]
    fn resolver_clients_emit_queries_only() {
        let campus = small_campus();
        let mut g = TrafficGenerator::new(&campus, WorkloadConfig::default());
        let mut s = Schedule::new();
        g.add_resolver_clients(&mut s, 40.0, SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(s.len(), 80);
        let dns_ip = std::net::IpAddr::V4(campus.addr_of(campus.servers.dns));
        for inj in s.iter() {
            assert_eq!(inj.packet.network.dst(), dns_ip, "all traffic goes to the resolver");
            assert_eq!(inj.packet.transport.dst_port(), Some(53));
            assert_eq!(inj.packet.truth.attack, None);
            let msg =
                campuslab_wire::DnsMessage::parse(inj.packet.payload.bytes().unwrap()).unwrap();
            assert!(!msg.flags.response, "clients never script responses");
        }
    }

    #[test]
    fn diurnal_shifts_load_toward_midday() {
        let campus = small_campus();
        let day = SimDuration::from_secs(100); // compressed day
        let mut g = TrafficGenerator::new(&campus, WorkloadConfig {
            duration: day,
            day_length: day,
            sessions_per_sec: 10.0,
            diurnal: true,
            mix: vec![(AppClass::Ntp, 1.0)], // constant-size sessions
            ..WorkloadConfig::default()
        });
        let s = g.generate();
        let half = SimTime::from_secs(25);
        let (mut morning, mut midday) = (0usize, 0usize);
        for i in s.iter() {
            if i.at < half {
                morning += 1;
            } else if i.at < SimTime::from_secs(75) {
                midday += 1;
            }
        }
        assert!(
            midday as f64 > 1.5 * morning as f64,
            "diurnal had no effect: morning={morning} midday={midday}"
        );
    }

    #[test]
    fn workload_runs_through_the_simulator() {
        let campus = small_campus();
        let mut g = TrafficGenerator::new(&campus, WorkloadConfig {
            duration: SimDuration::from_secs(2),
            sessions_per_sec: 10.0,
            ..WorkloadConfig::default()
        });
        let mut s = g.generate();
        let total = s.len() as u64;
        let mut net = Campus::build(CampusConfig {
            dist_count: 2,
            access_per_dist: 2,
            hosts_per_access: 4,
            external_hosts: 10,
            ..CampusConfig::default()
        })
        .net;
        s.apply_to(&mut net);
        let stats = net.run_to_completion();
        assert_eq!(stats.injected, total);
        // The benign mix must overwhelmingly survive an idle campus network.
        assert!(
            stats.delivery_ratio() > 0.99,
            "delivery ratio {} ({stats:?})",
            stats.delivery_ratio()
        );
    }
}
