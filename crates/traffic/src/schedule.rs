//! Packet schedules: the timed injection lists the generator produces and
//! the simulator consumes.

use campuslab_netsim::{Network, NodeId, Packet, SimDuration, SimTime};
use std::collections::BTreeMap;

/// One packet departure: at `at`, `packet` leaves `node`.
#[derive(Debug, Clone)]
pub struct Injection {
    pub at: SimTime,
    pub node: NodeId,
    pub packet: Packet,
}

/// A time-ordered list of injections plus summary accessors.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    injections: Vec<Injection>,
    sorted: bool,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule { injections: Vec::new(), sorted: true }
    }

    /// Append one injection.
    pub fn push(&mut self, at: SimTime, node: NodeId, packet: Packet) {
        if let Some(last) = self.injections.last() {
            if at < last.at {
                self.sorted = false;
            }
        }
        self.injections.push(Injection { at, node, packet });
    }

    /// Append every injection of `other`.
    pub fn merge(&mut self, other: Schedule) {
        if other.injections.is_empty() {
            return;
        }
        self.sorted = false;
        self.injections.extend(other.injections);
    }

    /// Sort by time (stable, so equal-time packets keep generation order).
    pub fn sort(&mut self) {
        if !self.sorted {
            self.injections.sort_by_key(|i| i.at);
            self.sorted = true;
        }
    }

    /// Number of scheduled packets.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Total scheduled bytes (on-wire).
    pub fn total_bytes(&self) -> u64 {
        self.injections.iter().map(|i| i.packet.wire_len() as u64).sum()
    }

    /// Time of the last injection.
    pub fn span(&self) -> SimDuration {
        self.injections
            .iter()
            .map(|i| i.at)
            .max()
            .unwrap_or(SimTime::ZERO)
            - SimTime::ZERO
    }

    /// Packets per ground-truth application class id.
    pub fn count_by_app(&self) -> BTreeMap<u16, usize> {
        let mut m = BTreeMap::new();
        for i in &self.injections {
            *m.entry(i.packet.truth.app_class).or_insert(0) += 1;
        }
        m
    }

    /// `(malicious, benign)` packet counts.
    pub fn malicious_split(&self) -> (usize, usize) {
        let malicious = self
            .injections
            .iter()
            .filter(|i| i.packet.truth.is_malicious())
            .count();
        (malicious, self.injections.len() - malicious)
    }

    /// Iterate the injections (sort first for time order).
    pub fn iter(&self) -> impl Iterator<Item = &Injection> {
        self.injections.iter()
    }

    /// Feed every injection into a network. Sorts first.
    pub fn apply_to(&mut self, net: &mut Network) {
        self.sort();
        for i in &self.injections {
            net.inject(i.at, i.node, i.packet.clone());
        }
    }

    /// Consume into the raw injection list, sorted by time.
    pub fn into_injections(mut self) -> Vec<Injection> {
        self.sort();
        self.injections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::{GroundTruth, PacketBuilder, Payload};
    use std::net::Ipv4Addr;

    fn pkt(b: &mut PacketBuilder, app: u16, attack: Option<u16>) -> Packet {
        b.udp_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Payload::Synthetic(100),
            64,
            GroundTruth { flow_id: 0, app_class: app, attack },
        )
    }

    #[test]
    fn push_and_sort() {
        let mut b = PacketBuilder::new();
        let mut s = Schedule::new();
        s.push(SimTime::from_millis(5), NodeId(0), pkt(&mut b, 1, None));
        s.push(SimTime::from_millis(1), NodeId(0), pkt(&mut b, 2, None));
        s.sort();
        let times: Vec<_> = s.iter().map(|i| i.at).collect();
        assert_eq!(times, vec![SimTime::from_millis(1), SimTime::from_millis(5)]);
    }

    #[test]
    fn merge_and_counts() {
        let mut b = PacketBuilder::new();
        let mut s1 = Schedule::new();
        s1.push(SimTime::ZERO, NodeId(0), pkt(&mut b, 1, None));
        let mut s2 = Schedule::new();
        s2.push(SimTime::ZERO, NodeId(0), pkt(&mut b, 1, Some(1)));
        s2.push(SimTime::ZERO, NodeId(0), pkt(&mut b, 2, None));
        s1.merge(s2);
        assert_eq!(s1.len(), 3);
        assert_eq!(s1.malicious_split(), (1, 2));
        let by_app = s1.count_by_app();
        assert_eq!(by_app[&1], 2);
        assert_eq!(by_app[&2], 1);
    }

    #[test]
    fn total_bytes_and_span() {
        let mut b = PacketBuilder::new();
        let mut s = Schedule::new();
        s.push(SimTime::from_secs(3), NodeId(0), pkt(&mut b, 1, None));
        s.push(SimTime::from_secs(1), NodeId(0), pkt(&mut b, 1, None));
        assert_eq!(s.span(), SimDuration::from_secs(3));
        assert_eq!(s.total_bytes(), 2 * (14 + 20 + 8 + 100));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.span(), SimDuration::ZERO);
        assert_eq!(s.total_bytes(), 0);
    }
}
