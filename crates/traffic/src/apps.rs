//! Benign application session models.
//!
//! Each model synthesizes a realistic packet-level exchange — TCP handshake,
//! paced data, sparse ACKs, teardown; or UDP request/response — with real
//! headers and, where the capture plane inspects content (DNS), real payload
//! bytes. Sessions are *pre-scheduled*: timing encodes typical RTT and
//! pacing rather than emerging from an endpoint stack, which is the right
//! fidelity for monitoring/learning experiments (volume, mix, headers,
//! timing) while keeping million-packet workloads cheap to generate.

use crate::labels::AppClass;
use crate::schedule::Schedule;
use campuslab_netsim::{GroundTruth, NodeId, PacketBuilder, Payload, SimDuration, SimTime};
use campuslab_wire::{DnsMessage, DnsRcode, DnsRecord, DnsRecordData, DnsType, TcpControl, TcpRepr};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Maximum TCP payload per packet (Ethernet MTU minus IP/TCP headers).
pub const MSS: usize = 1460;
/// Emit one pure ACK from the receiver per this many data packets.
const ACK_EVERY: usize = 8;

/// One end of a session.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    pub node: NodeId,
    pub addr: Ipv4Addr,
}

/// Shared mutable state threaded through all session generators.
pub struct SessionEnv<'a> {
    pub builder: &'a mut PacketBuilder,
    pub rng: &'a mut StdRng,
    pub schedule: &'a mut Schedule,
    pub next_flow: &'a mut u64,
}

impl SessionEnv<'_> {
    /// Allocate a fresh flow id.
    pub fn alloc_flow(&mut self) -> u64 {
        let id = *self.next_flow;
        *self.next_flow += 1;
        id
    }
}

/// Parameters of one synthesized TCP exchange.
#[derive(Debug, Clone, Copy)]
pub struct TcpExchange {
    pub sport: u16,
    pub dport: u16,
    /// Bytes the client sends after the handshake.
    pub request_bytes: usize,
    /// Bytes the server sends back.
    pub response_bytes: usize,
    /// Pacing rate for data segments, bits per second.
    pub pace_bps: u64,
    /// Round-trip time between the endpoints.
    pub rtt: SimDuration,
}

/// Synthesize a complete TCP exchange (handshake, request, response, sparse
/// ACKs, FIN teardown). Returns the time the session finishes.
pub fn tcp_exchange(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    server: Endpoint,
    app: AppClass,
    truth_attack: Option<u16>,
    x: TcpExchange,
) -> SimTime {
    let flow_id = env.alloc_flow();
    let truth = GroundTruth { flow_id, app_class: app.id(), attack: truth_attack };
    let half_rtt = SimDuration::from_nanos(x.rtt.as_nanos() / 2);
    let client_isn: u32 = env.rng.gen();
    let server_isn: u32 = env.rng.gen();

    let push = |env: &mut SessionEnv<'_>,
                    at: SimTime,
                    from: Endpoint,
                    to: Endpoint,
                    tcp: TcpRepr,
                    payload: Payload| {
        let pkt = env
            .builder
            .tcp_v4(from.addr, to.addr, tcp.src_port, tcp.dst_port, tcp, payload, truth);
        env.schedule.push(at, from.node, pkt);
    };

    let base_tcp = |sport: u16, dport: u16, seq: u32, ack: u32, control: TcpControl| TcpRepr {
        src_port: sport,
        dst_port: dport,
        seq,
        ack,
        control,
        window: 65535,
        mss: None,
        window_scale: None,
    };

    // --- Handshake ---
    let syn = TcpRepr {
        mss: Some(MSS as u16),
        window_scale: Some(7),
        ..base_tcp(x.sport, x.dport, client_isn, 0, TcpControl::SYN)
    };
    push(env, t0, client, server, syn, Payload::Synthetic(0));
    let synack = TcpRepr {
        mss: Some(MSS as u16),
        window_scale: Some(7),
        ..base_tcp(x.dport, x.sport, server_isn, client_isn.wrapping_add(1), TcpControl::SYN_ACK)
    };
    push(env, t0 + half_rtt, server, client, synack, Payload::Synthetic(0));
    let mut t = t0 + x.rtt;
    push(
        env,
        t,
        client,
        server,
        base_tcp(x.sport, x.dport, client_isn.wrapping_add(1), server_isn.wrapping_add(1), TcpControl::ACK),
        Payload::Synthetic(0),
    );

    let gap = |bytes: usize| SimDuration::transmission(bytes + 54, x.pace_bps);

    // --- Request (client -> server) ---
    let mut cseq = client_isn.wrapping_add(1);
    let sack = server_isn.wrapping_add(1);
    let mut sent = 0usize;
    let mut i = 0usize;
    while sent < x.request_bytes {
        let chunk = (x.request_bytes - sent).min(MSS);
        let mut ctl = TcpControl::ACK;
        if sent + chunk >= x.request_bytes {
            ctl.psh = true;
        }
        push(
            env,
            t,
            client,
            server,
            base_tcp(x.sport, x.dport, cseq, sack, ctl),
            Payload::Synthetic(chunk),
        );
        cseq = cseq.wrapping_add(chunk as u32);
        sent += chunk;
        i += 1;
        if i.is_multiple_of(ACK_EVERY) {
            push(
                env,
                t + half_rtt,
                server,
                client,
                base_tcp(x.dport, x.sport, sack, cseq, TcpControl::ACK),
                Payload::Synthetic(0),
            );
        }
        t += gap(chunk);
    }

    // --- Response (server -> client), starts after the request lands ---
    let mut t = t + half_rtt;
    let mut sseq = sack;
    let mut sent = 0usize;
    let mut i = 0usize;
    while sent < x.response_bytes {
        let chunk = (x.response_bytes - sent).min(MSS);
        let mut ctl = TcpControl::ACK;
        if sent + chunk >= x.response_bytes {
            ctl.psh = true;
        }
        push(
            env,
            t,
            server,
            client,
            base_tcp(x.dport, x.sport, sseq, cseq, ctl),
            Payload::Synthetic(chunk),
        );
        sseq = sseq.wrapping_add(chunk as u32);
        sent += chunk;
        i += 1;
        if i.is_multiple_of(ACK_EVERY) {
            push(
                env,
                t + half_rtt,
                client,
                server,
                base_tcp(x.sport, x.dport, cseq, sseq, TcpControl::ACK),
                Payload::Synthetic(0),
            );
        }
        t += gap(chunk);
    }

    // --- Teardown ---
    let t_fin = t + half_rtt;
    push(
        env,
        t_fin,
        client,
        server,
        base_tcp(x.sport, x.dport, cseq, sseq, TcpControl::FIN_ACK),
        Payload::Synthetic(0),
    );
    push(
        env,
        t_fin + half_rtt,
        server,
        client,
        base_tcp(x.dport, x.sport, sseq, cseq.wrapping_add(1), TcpControl::FIN_ACK),
        Payload::Synthetic(0),
    );
    let t_end = t_fin + x.rtt;
    push(
        env,
        t_end,
        client,
        server,
        base_tcp(x.sport, x.dport, cseq.wrapping_add(1), sseq.wrapping_add(1), TcpControl::ACK),
        Payload::Synthetic(0),
    );
    t_end
}

/// Synthesize a DNS lookup (real DNS payload bytes) to `resolver` and its
/// response. Returns the time the answer arrives at the client.
#[allow(clippy::too_many_arguments)]
pub fn dns_lookup(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    resolver: Endpoint,
    domain: &str,
    qtype: DnsType,
    answer_addr: Ipv4Addr,
    rtt: SimDuration,
) -> SimTime {
    let flow_id = env.alloc_flow();
    let truth = GroundTruth { flow_id, app_class: AppClass::Dns.id(), attack: None };
    let id: u16 = env.rng.gen();
    let sport: u16 = env.rng.gen_range(32768..61000);

    let query = DnsMessage::query(id, domain, qtype);
    let mut qbytes = Vec::new();
    query.emit(&mut qbytes).expect("generated name is valid");
    let qpkt = env.builder.udp_v4(
        client.addr,
        resolver.addr,
        sport,
        53,
        Payload::Bytes(qbytes.into()),
        64,
        truth,
    );
    env.schedule.push(t0, client.node, qpkt);

    let response = query.answer(
        vec![DnsRecord {
            name: domain.to_string(),
            ttl: 300,
            data: DnsRecordData::A(answer_addr),
        }],
        DnsRcode::NoError,
    );
    let mut rbytes = Vec::new();
    response.emit(&mut rbytes).expect("generated name is valid");
    let t_resp = t0 + SimDuration::from_nanos(rtt.as_nanos() / 2) + SimDuration::from_micros(200);
    let rpkt = env.builder.udp_v4(
        resolver.addr,
        client.addr,
        53,
        sport,
        Payload::Bytes(rbytes.into()),
        64,
        truth,
    );
    env.schedule.push(t_resp, resolver.node, rpkt);
    t_resp + SimDuration::from_nanos(rtt.as_nanos() / 2)
}

/// The campus resolver's upstream recursion: on a cache miss it queries an
/// external authoritative server, which answers — sometimes fatly (DNSSEC
/// material, TXT records). These benign port-53 exchanges cross the border
/// tap and are exactly the traffic an amplification detector must *not*
/// drop, so they matter enormously for the confidence-gate experiments.
#[allow(clippy::too_many_arguments)]
pub fn dns_upstream_lookup(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    resolver: Endpoint,
    upstream: Endpoint,
    domain: &str,
    answer_addr: Ipv4Addr,
    external_rtt: SimDuration,
    fat: bool,
) -> SimTime {
    let flow_id = env.alloc_flow();
    let truth = GroundTruth { flow_id, app_class: AppClass::Dns.id(), attack: None };
    let id: u16 = env.rng.gen();
    let sport: u16 = env.rng.gen_range(32768..61000);
    let qtype = if fat { DnsType::Txt } else { DnsType::A };
    let query = DnsMessage::query(id, domain, qtype);
    let mut qbytes = Vec::new();
    query.emit(&mut qbytes).expect("generated name is valid");
    let qpkt = env.builder.udp_v4(
        resolver.addr,
        upstream.addr,
        sport,
        53,
        Payload::Bytes(qbytes.into()),
        64,
        truth,
    );
    env.schedule.push(t0, resolver.node, qpkt);

    let answers: Vec<DnsRecord> = if fat {
        // DNSSEC-signed zones and verbose TXT records: legitimately large,
        // spanning the same size range as reflected amplification answers.
        let n = env.rng.gen_range(8..26);
        (0..n)
            .map(|_| DnsRecord {
                name: domain.to_string(),
                ttl: 3600,
                data: DnsRecordData::Txt(vec![b'k'; env.rng.gen_range(80..210)]),
            })
            .collect()
    } else {
        (0..env.rng.gen_range(1..4))
            .map(|k| DnsRecord {
                name: domain.to_string(),
                ttl: 300,
                data: DnsRecordData::A(Ipv4Addr::from(u32::from(answer_addr) + k)),
            })
            .collect()
    };
    let response = query.answer(answers, DnsRcode::NoError);
    let mut rbytes = Vec::new();
    response.emit(&mut rbytes).expect("generated name is valid");
    let t_resp = t0 + SimDuration::from_nanos(external_rtt.as_nanos() / 2)
        + SimDuration::from_micros(500);
    // Authoritative servers run many OSes and sit behind many path
    // lengths; arriving TTLs are diverse, just like the attack's.
    let ttl = [64u8, 128, 255][env.rng.gen_range(0..3)] - env.rng.gen_range(6..20);
    let rpkt = env.builder.udp_v4(
        upstream.addr,
        resolver.addr,
        53,
        sport,
        Payload::Bytes(rbytes.into()),
        ttl,
        truth,
    );
    env.schedule.push(t_resp, upstream.node, rpkt);
    t_resp + SimDuration::from_nanos(external_rtt.as_nanos() / 2)
}

/// A web-browsing session: DNS lookup, then 1–6 HTTPS object fetches.
#[allow(clippy::too_many_arguments)]
pub fn web_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    resolver: Endpoint,
    server: Endpoint,
    domain: &str,
    external_rtt: SimDuration,
    object_median: f64,
) -> SimTime {
    let t = dns_lookup(
        env,
        t0,
        client,
        resolver,
        domain,
        DnsType::A,
        server.addr,
        SimDuration::from_micros(800),
    );
    let objects = env.rng.gen_range(1..=6);
    let mut t_end = t;
    for _ in 0..objects {
        let size = crate::distributions::LogNormal::from_median(object_median, 1.2)
            .sample(env.rng)
            .min(4_000_000.0) as usize;
        let sport = env.rng.gen_range(32768..61000);
        let think = SimDuration::from_millis(env.rng.gen_range(1..30));
        let request_bytes = env.rng.gen_range(200..900);
        t_end = tcp_exchange(
            env,
            t_end + think,
            client,
            server,
            AppClass::Web,
            None,
            TcpExchange {
                sport,
                dport: 443,
                request_bytes,
                response_bytes: size.max(500),
                pace_bps: 100_000_000,
                rtt: external_rtt,
            },
        );
    }
    t_end
}

/// A paced video stream from an external CDN.
pub fn video_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    cdn: Endpoint,
    external_rtt: SimDuration,
) -> SimTime {
    let size = crate::distributions::Pareto::new(1_500_000.0, 1.3)
        .sample(env.rng)
        .min(30_000_000.0) as usize;
    let sport = env.rng.gen_range(32768..61000);
    tcp_exchange(
        env,
        t0,
        client,
        cdn,
        AppClass::Video,
        None,
        TcpExchange {
            sport,
            dport: 443,
            request_bytes: 600,
            response_bytes: size,
            // Paced near a stream bitrate rather than line rate.
            pace_bps: 20_000_000,
            rtt: external_rtt,
        },
    )
}

/// An interactive SSH session: a burst of small keystroke exchanges.
pub fn ssh_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    server: Endpoint,
    rtt: SimDuration,
) -> SimTime {
    let sport = env.rng.gen_range(32768..61000);
    // Login + key exchange.
    let mut t = tcp_exchange(
        env,
        t0,
        client,
        server,
        AppClass::Ssh,
        None,
        TcpExchange {
            sport,
            dport: 22,
            request_bytes: 2200,
            response_bytes: 3000,
            pace_bps: 50_000_000,
            rtt,
        },
    );
    // Keystroke/echo exchanges, exponentially spaced.
    let exchanges = env.rng.gen_range(5..40);
    let gap = crate::distributions::Exponential::new(2.0);
    for _ in 0..exchanges {
        t += SimDuration::from_secs_f64(gap.sample(env.rng).min(10.0));
        let request_bytes = env.rng.gen_range(48..120);
        let response_bytes = env.rng.gen_range(48..400);
        t = tcp_exchange(
            env,
            t,
            client,
            server,
            AppClass::Ssh,
            None,
            TcpExchange {
                sport,
                dport: 22,
                request_bytes,
                response_bytes,
                pace_bps: 50_000_000,
                rtt,
            },
        );
    }
    t
}

/// An SMTP delivery to or from the campus mail server.
pub fn mail_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    mail_server: Endpoint,
    rtt: SimDuration,
) -> SimTime {
    let size = crate::distributions::LogNormal::from_median(40_000.0, 1.4)
        .sample(env.rng)
        .min(10_000_000.0) as usize;
    let sport = env.rng.gen_range(32768..61000);
    tcp_exchange(
        env,
        t0,
        client,
        mail_server,
        AppClass::Mail,
        None,
        TcpExchange {
            sport,
            dport: 25,
            request_bytes: size,
            response_bytes: 400,
            pace_bps: 80_000_000,
            rtt,
        },
    )
}

/// A bulk off-site backup upload.
pub fn backup_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    storage: Endpoint,
    external_rtt: SimDuration,
) -> SimTime {
    let size = crate::distributions::Pareto::new(4_000_000.0, 1.1)
        .sample(env.rng)
        .min(60_000_000.0) as usize;
    let sport = env.rng.gen_range(32768..61000);
    tcp_exchange(
        env,
        t0,
        client,
        storage,
        AppClass::Backup,
        None,
        TcpExchange {
            sport,
            dport: 443,
            request_bytes: size,
            response_bytes: 2_000,
            pace_bps: 200_000_000,
            rtt: external_rtt,
        },
    )
}

/// An ICMP monitoring ping train: the NOC pinging an external service.
pub fn ping_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    target: Endpoint,
    rtt: SimDuration,
    count: u16,
) -> SimTime {
    use campuslab_wire::IcmpRepr;
    let flow_id = env.alloc_flow();
    let truth = GroundTruth { flow_id, app_class: AppClass::Icmp.id(), attack: None };
    let ident: u16 = env.rng.gen();
    let mut t = t0;
    let mut last = t0;
    for seq in 0..count {
        let req = env.builder.icmp_v4(
            client.addr,
            target.addr,
            IcmpRepr::echo_request(ident, seq, &[0x61; 56]),
            truth,
        );
        env.schedule.push(t, client.node, req);
        let t_reply = t + SimDuration::from_nanos(rtt.as_nanos() / 2);
        let rep = env.builder.icmp_v4(
            target.addr,
            client.addr,
            IcmpRepr::echo_reply(ident, seq, &[0x61; 56]),
            truth,
        );
        env.schedule.push(t_reply, target.node, rep);
        last = t_reply + SimDuration::from_nanos(rtt.as_nanos() / 2);
        t += SimDuration::from_secs(1); // classic 1 Hz ping
    }
    last
}

/// An NTP poll.
pub fn ntp_session(
    env: &mut SessionEnv<'_>,
    t0: SimTime,
    client: Endpoint,
    server: Endpoint,
    rtt: SimDuration,
) -> SimTime {
    let flow_id = env.alloc_flow();
    let truth = GroundTruth { flow_id, app_class: AppClass::Ntp.id(), attack: None };
    let sport = env.rng.gen_range(32768..61000);
    let q = env.builder.udp_v4(
        client.addr,
        server.addr,
        sport,
        123,
        Payload::Synthetic(48),
        64,
        truth,
    );
    env.schedule.push(t0, client.node, q);
    let t_resp = t0 + SimDuration::from_nanos(rtt.as_nanos() / 2);
    let r = env.builder.udp_v4(
        server.addr,
        client.addr,
        123,
        sport,
        Payload::Synthetic(48),
        64,
        truth,
    );
    env.schedule.push(t_resp, server.node, r);
    t_resp + SimDuration::from_nanos(rtt.as_nanos() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::TransportHeader;
    use rand::SeedableRng;

    fn env_parts() -> (PacketBuilder, StdRng, Schedule, u64) {
        (PacketBuilder::new(), StdRng::seed_from_u64(1), Schedule::new(), 0)
    }

    fn ep(node: usize, addr: [u8; 4]) -> Endpoint {
        Endpoint { node: NodeId(node), addr: Ipv4Addr::from(addr) }
    }

    #[test]
    fn tcp_exchange_has_handshake_and_teardown() {
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        let client = ep(0, [10, 1, 1, 10]);
        let server = ep(1, [203, 0, 113, 1]);
        tcp_exchange(
            &mut env,
            SimTime::ZERO,
            client,
            server,
            AppClass::Web,
            None,
            TcpExchange {
                sport: 40000,
                dport: 443,
                request_bytes: 500,
                response_bytes: 5000,
                pace_bps: 10_000_000,
                rtt: SimDuration::from_millis(20),
            },
        );
        s.sort();
        let pkts: Vec<_> = s.iter().collect();
        // SYN first, SYN-ACK second.
        match &pkts[0].packet.transport {
            TransportHeader::Tcp(t) => {
                assert!(t.control.syn && !t.control.ack);
                assert_eq!(t.mss, Some(MSS as u16));
            }
            _ => panic!("not tcp"),
        }
        match &pkts[1].packet.transport {
            TransportHeader::Tcp(t) => assert!(t.control.syn && t.control.ack),
            _ => panic!("not tcp"),
        }
        // Last packet is the final ACK of the teardown.
        match &pkts.last().unwrap().packet.transport {
            TransportHeader::Tcp(t) => assert!(t.control.ack && !t.control.fin),
            _ => panic!("not tcp"),
        }
        // FINs exist in both directions.
        let fins = pkts
            .iter()
            .filter(|i| matches!(&i.packet.transport, TransportHeader::Tcp(t) if t.control.fin))
            .count();
        assert_eq!(fins, 2);
        // Response bytes arrive in MSS-sized chunks: 5000 -> 4 data packets.
        let server_data: usize = pkts
            .iter()
            .filter(|i| i.packet.network.src() == std::net::IpAddr::V4(server.addr))
            .map(|i| i.packet.payload.len())
            .sum();
        assert_eq!(server_data, 5000);
    }

    #[test]
    fn dns_lookup_produces_parseable_messages() {
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        dns_lookup(
            &mut env,
            SimTime::ZERO,
            ep(0, [10, 1, 1, 10]),
            ep(1, [10, 1, 255, 53]),
            "www.example.edu",
            DnsType::A,
            Ipv4Addr::new(203, 0, 113, 7),
            SimDuration::from_millis(1),
        );
        assert_eq!(s.len(), 2);
        s.sort();
        let q = s.iter().next().unwrap();
        let msg = DnsMessage::parse(q.packet.payload.bytes().unwrap()).unwrap();
        assert!(!msg.flags.response);
        assert_eq!(msg.questions[0].name, "www.example.edu");
        let a = s.iter().nth(1).unwrap();
        let msg = DnsMessage::parse(a.packet.payload.bytes().unwrap()).unwrap();
        assert!(msg.flags.response);
        assert_eq!(msg.answers.len(), 1);
        // Query and response share the same flow id.
        assert_eq!(q.packet.truth.flow_id, a.packet.truth.flow_id);
        assert_eq!(q.packet.truth.app_class, AppClass::Dns.id());
    }

    #[test]
    fn web_session_starts_with_dns() {
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        web_session(
            &mut env,
            SimTime::ZERO,
            ep(0, [10, 1, 1, 10]),
            ep(1, [10, 1, 255, 53]),
            ep(2, [203, 0, 113, 1]),
            "cdn.example.org",
            SimDuration::from_millis(15),
            16_000.0,
        );
        s.sort();
        let first = s.iter().next().unwrap();
        assert_eq!(first.packet.transport.dst_port(), Some(53));
        // Web flows exist and are labeled web.
        assert!(s
            .iter()
            .any(|i| i.packet.truth.app_class == AppClass::Web.id()));
        assert!(s.len() > 5);
    }

    #[test]
    fn sessions_allocate_distinct_flow_ids() {
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        let c = ep(0, [10, 1, 1, 10]);
        let srv = ep(1, [10, 1, 255, 25]);
        mail_session(&mut env, SimTime::ZERO, c, srv, SimDuration::from_millis(1));
        ntp_session(&mut env, SimTime::ZERO, c, srv, SimDuration::from_millis(1));
        assert_eq!(f, 2);
        let flows: std::collections::HashSet<u64> =
            s.iter().map(|i| i.packet.truth.flow_id).collect();
        assert_eq!(flows.len(), 2);
    }

    #[test]
    fn ping_session_alternates_request_reply() {
        use campuslab_netsim::TransportHeader;
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        ping_session(
            &mut env,
            SimTime::ZERO,
            ep(0, [10, 1, 1, 10]),
            ep(1, [203, 0, 113, 1]),
            SimDuration::from_millis(20),
            4,
        );
        assert_eq!(s.len(), 8);
        s.sort();
        let mut requests = 0;
        let mut replies = 0;
        for inj in s.iter() {
            match &inj.packet.transport {
                TransportHeader::Icmp(icmp) => match icmp.icmp_type {
                    campuslab_wire::IcmpType::EchoRequest => requests += 1,
                    campuslab_wire::IcmpType::EchoReply => replies += 1,
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("not icmp: {other:?}"),
            }
            assert_eq!(inj.packet.truth.app_class, AppClass::Icmp.id());
        }
        assert_eq!((requests, replies), (4, 4));
    }

    #[test]
    fn video_is_large_and_paced() {
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        let end = video_session(
            &mut env,
            SimTime::ZERO,
            ep(0, [10, 1, 1, 10]),
            ep(1, [203, 0, 113, 2]),
            SimDuration::from_millis(20),
        );
        // At 20 Mbps pacing a >=1.5 MB object takes >= 0.6 s.
        assert!(end.as_secs_f64() > 0.5, "end {end}");
        assert!(s.total_bytes() > 1_400_000);
    }

    #[test]
    fn ssh_session_is_chatty_and_small() {
        let (mut b, mut r, mut s, mut f) = env_parts();
        let mut env = SessionEnv {
            builder: &mut b,
            rng: &mut r,
            schedule: &mut s,
            next_flow: &mut f,
        };
        ssh_session(
            &mut env,
            SimTime::ZERO,
            ep(0, [10, 1, 1, 10]),
            ep(1, [10, 1, 2, 10]),
            SimDuration::from_millis(2),
        );
        let n = s.len();
        let bytes = s.total_bytes();
        assert!(n > 20, "ssh too quiet: {n}");
        // Mean packet size stays small for interactive traffic.
        assert!((bytes as f64 / n as f64) < 500.0);
        assert!(s
            .iter()
            .all(|i| i.packet.transport.dst_port() == Some(22)
                || i.packet.transport.src_port() == Some(22)));
    }
}
