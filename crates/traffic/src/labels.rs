//! Ground-truth label vocabulary: application classes and attack kinds.
//!
//! These are the labels the paper laments real networks never give you
//! ("labelled data ... is largely non-existent", §2). The generator stamps
//! them into [`GroundTruth`](campuslab_netsim::GroundTruth) so every
//! downstream experiment has perfect ground truth to train and score
//! against.

/// Benign application classes in the campus mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// Recursive DNS lookups to the campus resolver.
    Dns,
    /// HTTPS web browsing to external services.
    Web,
    /// Long paced video streams from external CDNs.
    Video,
    /// Interactive SSH sessions.
    Ssh,
    /// SMTP to and from the campus mail server.
    Mail,
    /// Bulk off-site backup uploads.
    Backup,
    /// NTP time synchronization.
    Ntp,
    /// ICMP echo (operations monitoring pings).
    Icmp,
}

impl AppClass {
    /// All classes, in id order.
    pub const ALL: [AppClass; 8] = [
        AppClass::Dns,
        AppClass::Web,
        AppClass::Video,
        AppClass::Ssh,
        AppClass::Mail,
        AppClass::Backup,
        AppClass::Ntp,
        AppClass::Icmp,
    ];

    /// Stable numeric id (1-based; 0 means "unlabeled").
    pub fn id(self) -> u16 {
        match self {
            AppClass::Dns => 1,
            AppClass::Web => 2,
            AppClass::Video => 3,
            AppClass::Ssh => 4,
            AppClass::Mail => 5,
            AppClass::Backup => 6,
            AppClass::Ntp => 7,
            AppClass::Icmp => 8,
        }
    }

    /// Inverse of [`AppClass::id`].
    pub fn from_id(id: u16) -> Option<AppClass> {
        AppClass::ALL.into_iter().find(|c| c.id() == id)
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AppClass::Dns => "dns",
            AppClass::Web => "web",
            AppClass::Video => "video",
            AppClass::Ssh => "ssh",
            AppClass::Mail => "mail",
            AppClass::Backup => "backup",
            AppClass::Ntp => "ntp",
            AppClass::Icmp => "icmp",
        }
    }
}

/// Attack campaign kinds the generator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackKind {
    /// Spoofed-source DNS reflection/amplification flood at a campus victim
    /// — the paper's §2 running example.
    DnsAmplification,
    /// TCP SYN flood at a campus server.
    SynFlood,
    /// Horizontal/vertical TCP port scan of campus hosts.
    PortScan,
    /// Repeated failed SSH logins against a campus host.
    SshBruteForce,
    /// Slow bulk exfiltration from a compromised campus host.
    Exfiltration,
    /// Random-subdomain NXDOMAIN "water torture" flood against the campus
    /// recursive resolver: every junk name defeats the cache and forces an
    /// upstream round trip.
    NxdomainFlood,
}

impl AttackKind {
    /// All kinds, in id order.
    pub const ALL: [AttackKind; 6] = [
        AttackKind::DnsAmplification,
        AttackKind::SynFlood,
        AttackKind::PortScan,
        AttackKind::SshBruteForce,
        AttackKind::Exfiltration,
        AttackKind::NxdomainFlood,
    ];

    /// Stable numeric id (1-based).
    pub fn id(self) -> u16 {
        match self {
            AttackKind::DnsAmplification => 1,
            AttackKind::SynFlood => 2,
            AttackKind::PortScan => 3,
            AttackKind::SshBruteForce => 4,
            AttackKind::Exfiltration => 5,
            AttackKind::NxdomainFlood => 6,
        }
    }

    /// Inverse of [`AttackKind::id`].
    pub fn from_id(id: u16) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.id() == id)
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::DnsAmplification => "dns-amplification",
            AttackKind::SynFlood => "syn-flood",
            AttackKind::PortScan => "port-scan",
            AttackKind::SshBruteForce => "ssh-brute-force",
            AttackKind::Exfiltration => "exfiltration",
            AttackKind::NxdomainFlood => "nxdomain-flood",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_ids_round_trip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::from_id(c.id()), Some(c));
        }
        assert_eq!(AppClass::from_id(0), None);
        assert_eq!(AppClass::from_id(99), None);
    }

    #[test]
    fn attack_ids_round_trip() {
        for k in AttackKind::ALL {
            assert_eq!(AttackKind::from_id(k.id()), Some(k));
        }
        assert_eq!(AttackKind::from_id(0), None);
    }

    #[test]
    fn ids_are_unique() {
        let mut app_ids: Vec<u16> = AppClass::ALL.iter().map(|c| c.id()).collect();
        app_ids.dedup();
        assert_eq!(app_ids.len(), AppClass::ALL.len());
        let mut atk_ids: Vec<u16> = AttackKind::ALL.iter().map(|k| k.id()).collect();
        atk_ids.dedup();
        assert_eq!(atk_ids.len(), AttackKind::ALL.len());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            AppClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), AppClass::ALL.len());
    }
}
