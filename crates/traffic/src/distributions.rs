//! Seeded samplers for the heavy-tailed quantities that make campus traffic
//! look like campus traffic: log-normal flow sizes, Pareto "elephant" tails,
//! exponential inter-arrivals, Zipf popularity, and a diurnal load curve.
//!
//! Implemented from first principles on top of a uniform RNG so the crate
//! needs nothing beyond `rand` and stays bit-reproducible across platforms.

use rand::Rng;
use std::f64::consts::PI;

/// Log-normal distribution parameterized by the underlying normal's mean
/// and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the *median* and the sigma of log-space. The median of
    /// a log-normal is `exp(mu)`, which is the intuitive knob ("typical web
    /// object is ~8 KB").
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0 && sigma >= 0.0);
        LogNormal { mu: median.ln(), sigma }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
/// Shapes near 1.2 give the classic "mice and elephants" flow-size mix.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    pub x_min: f64,
    pub alpha: f64,
}

impl Pareto {
    /// Construct; panics on non-positive parameters.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }

    /// Draw one sample via inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with the given rate (events per unit).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    pub rate: f64,
}

impl Exponential {
    /// Construct; panics on a non-positive rate.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0);
        Exponential { rate }
    }

    /// Draw one inter-arrival gap.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.rate
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`: rank 0 is the
/// most popular. Used for host activity and server popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative weights, normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Construct over `n` ranks; panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: constructed with n > 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Diurnal load modulation: a smooth day/night cycle with a midday peak.
///
/// Returns a multiplier in `[floor, 1.0]` given the fraction of the day
/// elapsed (0.0 = midnight, 0.5 = noon).
pub fn diurnal_multiplier(day_fraction: f64, floor: f64) -> f64 {
    let x = day_fraction.rem_euclid(1.0);
    // Cosine dip at midnight, peak at noon.
    let wave = 0.5 - 0.5 * (2.0 * PI * x).cos();
    floor + (1.0 - floor) * wave
}

/// Draw from the standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD1570)
    }

    #[test]
    fn lognormal_median_is_close() {
        let d = LogNormal::from_median(8192.0, 1.0);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median / 8192.0 - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn pareto_respects_minimum_and_is_heavy_tailed() {
        let d = Pareto::new(1000.0, 1.2);
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 1000.0));
        // Heavy tail: the max dwarfs the median.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(max > 50.0 * median, "max {max}, median {median}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let d = Exponential::new(4.0);
        let mut r = rng();
        let mean: f64 = (0..50_000).map(|_| d.sample(&mut r)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let d = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
        // Rank 0 should take roughly 1/H(100) ~ 19% of the mass.
        let share = counts[0] as f64 / 50_000.0;
        assert!((share - 0.19).abs() < 0.03, "share {share}");
    }

    #[test]
    fn zipf_single_item() {
        let d = Zipf::new(1, 1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn diurnal_peaks_at_noon_and_bottoms_at_midnight() {
        let floor = 0.2;
        assert!((diurnal_multiplier(0.0, floor) - floor).abs() < 1e-9);
        assert!((diurnal_multiplier(0.5, floor) - 1.0).abs() < 1e-9);
        let morning = diurnal_multiplier(0.25, floor);
        assert!(morning > floor && morning < 1.0);
        // Periodicity.
        assert!((diurnal_multiplier(1.25, floor) - morning).abs() < 1e-9);
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let d = LogNormal::from_median(100.0, 0.5);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), d.sample(&mut r2));
        }
    }
}
