//! Attack-campaign generators, each stamping [`AttackKind`] ground truth.
//!
//! The flagship is DNS amplification — the paper's §2 example of a network
//! event an automated pipeline should detect and mitigate ("drop attack
//! traffic on ingress if confidence in detection is at least 90%").

use crate::apps::{tcp_exchange, Endpoint, SessionEnv, TcpExchange};
use crate::labels::{AppClass, AttackKind};
use campuslab_netsim::{GroundTruth, Payload, SimDuration, SimTime};
use campuslab_wire::{DnsMessage, DnsRcode, DnsRecord, DnsRecordData, DnsType, TcpControl, TcpRepr};
use rand::Rng;
use std::net::Ipv4Addr;

/// Parameters of a DNS reflection/amplification campaign.
#[derive(Debug, Clone)]
pub struct DnsAmplification {
    /// The bot sending spoofed queries (external).
    pub attacker: Endpoint,
    /// The campus host whose address is spoofed — and flooded.
    pub victim: Endpoint,
    /// Open resolvers abused as reflectors (external).
    pub reflectors: Vec<Endpoint>,
    /// Spoofed queries per second.
    pub qps: f64,
    pub start: SimTime,
    pub duration: SimDuration,
}

/// Generate a DNS amplification campaign.
///
/// Spoofed `ANY` queries (src forged to the victim) go from the attacker to
/// each reflector; every reflector answers the *victim* with a multi-record
/// response an order of magnitude larger than the query — the inbound flood
/// crosses the campus border where the monitoring tap and any deployed
/// mitigation live.
pub fn dns_amplification(env: &mut SessionEnv<'_>, a: &DnsAmplification) {
    assert!(!a.reflectors.is_empty(), "amplification needs reflectors");
    let n = (a.qps * a.duration.as_secs_f64()).round() as usize;
    let gap = SimDuration::from_secs_f64(1.0 / a.qps.max(1e-9));
    // Reflected answers are large multi-record responses (~1.5-4 KB).
    let zone = "amp.example.org";
    for i in 0..n {
        let flow_id = env.alloc_flow();
        let truth = GroundTruth {
            flow_id,
            app_class: AppClass::Dns.id(),
            attack: Some(AttackKind::DnsAmplification.id()),
        };
        let t = a.start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
        let reflector = a.reflectors[i % a.reflectors.len()];
        let id: u16 = env.rng.gen();
        // Evasive attackers spoof typical resolver client ports.
        let sport: u16 = env.rng.gen_range(32768..61000);

        let query = DnsMessage::query(id, zone, DnsType::Any);
        let mut qbytes = Vec::new();
        query.emit(&mut qbytes).expect("valid zone name");
        // Source address forged to the victim; the packet physically leaves
        // the attacker's uplink.
        let qpkt = env.builder.udp_v4(
            a.victim.addr,
            reflector.addr,
            sport,
            53,
            Payload::Bytes(qbytes.into()),
            64,
            truth,
        );
        env.schedule.push(t, a.attacker.node, qpkt);

        // Response sizes vary per query (records and lengths differ), so
        // the flood overlaps the size range of legitimate fat answers
        // (DNSSEC, big TXT) rather than presenting one magic constant.
        let n_records = env.rng.gen_range(14..24);
        let answers: Vec<DnsRecord> = (0..n_records)
            .map(|k| DnsRecord {
                name: zone.to_string(),
                ttl: 3600,
                data: DnsRecordData::Txt(vec![
                    b'A' + (k % 26) as u8;
                    env.rng.gen_range(90..180)
                ]),
            })
            .collect();
        let response = query.answer(answers, DnsRcode::NoError);
        let mut rbytes = Vec::new();
        response.emit(&mut rbytes).expect("valid zone name");
        // Arriving TTLs reflect diverse reflector OSes (64/128/255 initial)
        // minus 6-20 Internet hops, just like real border traffic.
        let ttl = initial_ttl(env) - env.rng.gen_range(6..20);
        let rpkt = env.builder.udp_v4(
            reflector.addr,
            a.victim.addr,
            53,
            sport,
            Payload::Bytes(rbytes.into()),
            ttl,
            truth,
        );
        env.schedule
            .push(t + SimDuration::from_millis(4), reflector.node, rpkt);
    }
}

/// A realistic initial TTL: common OS defaults.
fn initial_ttl(env: &mut SessionEnv<'_>) -> u8 {
    [64u8, 128, 255][env.rng.gen_range(0..3)]
}

/// One phase of a signature-rotating reflection campaign.
#[derive(Debug, Clone)]
pub struct ReflectionPhase {
    /// Service port the reflectors answer *from* (53 DNS, 123 NTP,
    /// 1900 SSDP, …) — the part of the flood's signature a static
    /// filter keys on.
    pub service_port: u16,
    /// Reflector pool for this phase; hopping pools rotates the flood's
    /// source prefixes along with its port signature.
    pub reflectors: Vec<Endpoint>,
    pub start: SimTime,
    pub duration: SimDuration,
}

/// Parameters of a rotating reflection/amplification campaign: the
/// attacker hops reflection vector (service port) and reflector pool
/// mid-run, so a mitigation trained on one phase's signature goes stale
/// the moment the next phase begins — the drift scenario DriftPilot's
/// retrain loop exists to close.
#[derive(Debug, Clone)]
pub struct RotatingReflection {
    /// The bot sending spoofed trigger packets (external).
    pub attacker: Endpoint,
    /// The campus host whose address is spoofed — and flooded.
    pub victim: Endpoint,
    /// The rotation schedule. Phases may leave gaps (quiet spells) and
    /// are generated independently.
    pub phases: Vec<ReflectionPhase>,
    /// Spoofed triggers per second within each phase.
    pub qps: f64,
}

/// Generate the rotating campaign. Every phase works like classic
/// reflection — a small spoofed trigger to each reflector, a much larger
/// answer to the victim from the phase's service port — but the port and
/// the reflector prefixes change per phase.
pub fn rotating_reflection(env: &mut SessionEnv<'_>, a: &RotatingReflection) {
    for phase in &a.phases {
        assert!(!phase.reflectors.is_empty(), "reflection phase needs reflectors");
        let n = (a.qps * phase.duration.as_secs_f64()).round() as usize;
        let gap = SimDuration::from_secs_f64(1.0 / a.qps.max(1e-9));
        let app_class = match phase.service_port {
            53 => AppClass::Dns.id(),
            123 => AppClass::Ntp.id(),
            _ => 0,
        };
        for i in 0..n {
            let flow_id = env.alloc_flow();
            let truth = GroundTruth {
                flow_id,
                app_class,
                attack: Some(AttackKind::DnsAmplification.id()),
            };
            let t = phase.start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
            let reflector = phase.reflectors[i % phase.reflectors.len()];
            let sport: u16 = env.rng.gen_range(32768..61000);
            // Small spoofed trigger (monlist/ANY/SEARCH equivalents).
            let trigger = env.builder.udp_v4(
                a.victim.addr,
                reflector.addr,
                sport,
                phase.service_port,
                Payload::Synthetic(env.rng.gen_range(40..80)),
                64,
                truth,
            );
            env.schedule.push(t, a.attacker.node, trigger);
            // Amplified answer back at the victim, sourced from the
            // phase's service port with reflector-OS TTL diversity.
            let ttl = initial_ttl(env) - env.rng.gen_range(6..20);
            let answer = env.builder.udp_v4(
                reflector.addr,
                a.victim.addr,
                phase.service_port,
                sport,
                Payload::Synthetic(env.rng.gen_range(900..1400)),
                ttl,
                truth,
            );
            env.schedule
                .push(t + SimDuration::from_millis(4), reflector.node, answer);
        }
    }
}

/// Parameters of a random-subdomain NXDOMAIN "water torture" flood
/// against the campus recursive resolver.
#[derive(Debug, Clone)]
pub struct NxdomainFlood {
    /// External bots sending the junk queries.
    pub sources: Vec<Endpoint>,
    /// The campus resolver under torture.
    pub resolver: Endpoint,
    /// Base domain whose random subdomains defeat the cache.
    pub base_domain: String,
    /// Queries per second, per source.
    pub qps_per_source: f64,
    /// Per-mille of queries byte-corrupted in flight, exercising the
    /// resolver's malformed-input paths under load.
    pub corrupt_permille: u16,
    pub start: SimTime,
    pub duration: SimDuration,
}

/// Generate a water-torture flood: every query names a unique random
/// subdomain, so no answer is ever cacheable and each one costs the
/// resolver an upstream round trip (or a starved slot). Only queries are
/// generated — the responses are whatever the attacked resolver actually
/// does, which is the point of the experiment.
pub fn nxdomain_flood(env: &mut SessionEnv<'_>, a: &NxdomainFlood) {
    assert!(!a.sources.is_empty(), "water torture needs sources");
    let per_source = (a.qps_per_source * a.duration.as_secs_f64()).round() as usize;
    let gap = SimDuration::from_secs_f64(1.0 / a.qps_per_source.max(1e-9));
    for (s, source) in a.sources.iter().enumerate() {
        // Stagger sources so the aggregate does not arrive in phase.
        let phase = SimDuration::from_nanos(gap.as_nanos() * s as u64 / a.sources.len().max(1) as u64);
        for i in 0..per_source {
            let flow_id = env.alloc_flow();
            let truth = GroundTruth {
                flow_id,
                app_class: AppClass::Dns.id(),
                attack: Some(AttackKind::NxdomainFlood.id()),
            };
            let t = a.start + phase + SimDuration::from_nanos(gap.as_nanos() * i as u64);
            // A unique junk label per query is what defeats the cache.
            let label_len = env.rng.gen_range(7..13);
            let label: String = (0..label_len)
                .map(|_| (b'a' + env.rng.gen_range(0..26)) as char)
                .collect();
            let name = format!("{label}.{}", a.base_domain);
            let id: u16 = env.rng.gen();
            let sport: u16 = env.rng.gen_range(1024..65535);
            let mut qbytes = Vec::new();
            DnsMessage::query(id, &name, DnsType::A)
                .emit(&mut qbytes)
                .expect("generated labels are valid");
            // A slice of the flood is botched in flight: header survives,
            // body does not — the resolver must absorb it without panicking.
            if env.rng.gen_range(0..1000) < a.corrupt_permille && qbytes.len() > 12 {
                let pos = env.rng.gen_range(12..qbytes.len());
                qbytes[pos] ^= 0xff;
            }
            let ttl = initial_ttl(env) - env.rng.gen_range(6..20);
            let pkt = env.builder.udp_v4(
                source.addr,
                a.resolver.addr,
                sport,
                53,
                Payload::Bytes(qbytes.into()),
                ttl,
                truth,
            );
            env.schedule.push(t, source.node, pkt);
        }
    }
}

/// Parameters of an ANY/TXT amplification burst that abuses the campus
/// resolver itself as the reflector.
#[derive(Debug, Clone)]
pub struct ResolverAmpBurst {
    /// The bot sending spoofed queries (external).
    pub attacker: Endpoint,
    /// Campus host whose address is spoofed — and would receive the
    /// amplified answers if the resolver cooperated.
    pub victim: Endpoint,
    /// The campus resolver being abused.
    pub resolver: Endpoint,
    /// The fat zone queried (large multi-record TXT answer).
    pub zone: String,
    /// Spoofed queries per second.
    pub qps: f64,
    pub start: SimTime,
    pub duration: SimDuration,
}

/// Generate the burst: spoofed-source ANY/TXT queries at the resolver.
/// No responses are scripted — whether the victim gets flooded depends
/// entirely on the resolver's response rate limiting.
pub fn resolver_amp_burst(env: &mut SessionEnv<'_>, a: &ResolverAmpBurst) {
    let n = (a.qps * a.duration.as_secs_f64()).round() as usize;
    let gap = SimDuration::from_secs_f64(1.0 / a.qps.max(1e-9));
    for i in 0..n {
        let flow_id = env.alloc_flow();
        let truth = GroundTruth {
            flow_id,
            app_class: AppClass::Dns.id(),
            attack: Some(AttackKind::DnsAmplification.id()),
        };
        let t = a.start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
        let id: u16 = env.rng.gen();
        let sport: u16 = env.rng.gen_range(32768..61000);
        let qtype = if env.rng.gen::<f64>() < 0.7 { DnsType::Any } else { DnsType::Txt };
        let mut qbytes = Vec::new();
        DnsMessage::query(id, &a.zone, qtype).emit(&mut qbytes).expect("valid zone name");
        let pkt = env.builder.udp_v4(
            a.victim.addr,
            a.resolver.addr,
            sport,
            53,
            Payload::Bytes(qbytes.into()),
            64,
            truth,
        );
        env.schedule.push(t, a.attacker.node, pkt);
    }
}

/// Parameters of a SYN flood.
#[derive(Debug, Clone)]
pub struct SynFlood {
    pub attacker: Endpoint,
    /// The campus server under attack.
    pub victim: Endpoint,
    pub dport: u16,
    /// SYNs per second.
    pub pps: f64,
    pub start: SimTime,
    pub duration: SimDuration,
}

/// Generate a SYN flood with randomly spoofed sources.
pub fn syn_flood(env: &mut SessionEnv<'_>, a: &SynFlood) {
    let n = (a.pps * a.duration.as_secs_f64()).round() as usize;
    let gap = SimDuration::from_secs_f64(1.0 / a.pps.max(1e-9));
    for i in 0..n {
        let flow_id = env.alloc_flow();
        let truth = GroundTruth {
            flow_id,
            app_class: 0,
            attack: Some(AttackKind::SynFlood.id()),
        };
        let t = a.start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
        // Random routable-looking spoofed source.
        let spoofed = Ipv4Addr::new(
            env.rng.gen_range(11..200),
            env.rng.gen(),
            env.rng.gen(),
            env.rng.gen_range(1..255),
        );
        let tcp = TcpRepr {
            src_port: env.rng.gen_range(1024..65535),
            dst_port: a.dport,
            seq: env.rng.gen(),
            ack: 0,
            control: TcpControl::SYN,
            window: 65535,
            mss: Some(1460),
            window_scale: None,
        };
        let pkt = env.builder.tcp_v4(
            spoofed,
            a.victim.addr,
            tcp.src_port,
            tcp.dst_port,
            tcp,
            Payload::Synthetic(0),
            truth,
        );
        env.schedule.push(t, a.attacker.node, pkt);
    }
}

/// Parameters of a TCP port scan.
#[derive(Debug, Clone)]
pub struct PortScan {
    pub attacker: Endpoint,
    /// Campus hosts probed.
    pub targets: Vec<Endpoint>,
    /// Destination ports swept per target.
    pub ports: Vec<u16>,
    /// Probes per second.
    pub pps: f64,
    pub start: SimTime,
}

/// Generate a scan: one SYN per (target, port); most targets answer RST.
pub fn port_scan(env: &mut SessionEnv<'_>, a: &PortScan) {
    let gap = SimDuration::from_secs_f64(1.0 / a.pps.max(1e-9));
    let mut i = 0u64;
    for target in &a.targets {
        for &port in &a.ports {
            let flow_id = env.alloc_flow();
            let truth = GroundTruth {
                flow_id,
                app_class: 0,
                attack: Some(AttackKind::PortScan.id()),
            };
            let t = a.start + SimDuration::from_nanos(gap.as_nanos() * i);
            i += 1;
            let sport: u16 = env.rng.gen_range(1024..65535);
            let syn = TcpRepr {
                src_port: sport,
                dst_port: port,
                seq: env.rng.gen(),
                ack: 0,
                control: TcpControl::SYN,
                window: 1024,
                mss: None,
                window_scale: None,
            };
            let probe = env.builder.tcp_v4(
                a.attacker.addr,
                target.addr,
                sport,
                port,
                syn,
                Payload::Synthetic(0),
                truth,
            );
            env.schedule.push(t, a.attacker.node, probe);
            // Closed ports (the common case) answer with RST.
            if env.rng.gen::<f64>() < 0.9 {
                let rst = TcpRepr {
                    src_port: port,
                    dst_port: sport,
                    seq: 0,
                    ack: syn.seq.wrapping_add(1),
                    control: TcpControl::RST,
                    window: 0,
                    mss: None,
                    window_scale: None,
                };
                let reply = env.builder.tcp_v4(
                    target.addr,
                    a.attacker.addr,
                    port,
                    sport,
                    rst,
                    Payload::Synthetic(0),
                    truth,
                );
                env.schedule
                    .push(t + SimDuration::from_millis(12), target.node, reply);
            }
        }
    }
}

/// Parameters of an SSH brute-force campaign.
#[derive(Debug, Clone)]
pub struct SshBruteForce {
    pub attacker: Endpoint,
    pub victim: Endpoint,
    /// Login attempts.
    pub attempts: usize,
    /// Attempts per second.
    pub rate: f64,
    pub start: SimTime,
}

/// Generate repeated short failed-login SSH exchanges.
pub fn ssh_brute_force(env: &mut SessionEnv<'_>, a: &SshBruteForce) {
    let gap = SimDuration::from_secs_f64(1.0 / a.rate.max(1e-9));
    for i in 0..a.attempts {
        let t = a.start + SimDuration::from_nanos(gap.as_nanos() * i as u64);
        let sport = env.rng.gen_range(1024..65535);
        tcp_exchange(
            env,
            t,
            a.attacker,
            a.victim,
            AppClass::Ssh,
            Some(AttackKind::SshBruteForce.id()),
            TcpExchange {
                sport,
                dport: 22,
                // Banner + failed auth: small, stereotyped sizes.
                request_bytes: 1200,
                response_bytes: 800,
                pace_bps: 50_000_000,
                rtt: SimDuration::from_millis(30),
            },
        );
    }
}

/// Parameters of a slow data-exfiltration upload.
#[derive(Debug, Clone)]
pub struct Exfiltration {
    /// The compromised campus host.
    pub compromised: Endpoint,
    /// The external collection point.
    pub sink: Endpoint,
    pub bytes: usize,
    /// Upload pacing, bits per second (slow to stay under the radar).
    pub pace_bps: u64,
    pub start: SimTime,
}

/// Generate the exfiltration upload as one long TLS-looking transfer.
pub fn exfiltration(env: &mut SessionEnv<'_>, a: &Exfiltration) {
    let sport = env.rng.gen_range(1024..65535);
    tcp_exchange(
        env,
        a.start,
        a.compromised,
        a.sink,
        AppClass::Backup, // masquerades as backup traffic
        Some(AttackKind::Exfiltration.id()),
        TcpExchange {
            sport,
            dport: 443,
            request_bytes: a.bytes,
            response_bytes: 1200,
            pace_bps: a.pace_bps,
            rtt: SimDuration::from_millis(25),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use campuslab_netsim::{NodeId, PacketBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ep(node: usize, addr: [u8; 4]) -> Endpoint {
        Endpoint { node: NodeId(node), addr: Ipv4Addr::from(addr) }
    }

    struct Ctx {
        builder: PacketBuilder,
        rng: StdRng,
        schedule: Schedule,
        next_flow: u64,
    }

    impl Ctx {
        fn new() -> Self {
            Ctx {
                builder: PacketBuilder::new(),
                rng: StdRng::seed_from_u64(5),
                schedule: Schedule::new(),
                next_flow: 0,
            }
        }
        fn env(&mut self) -> SessionEnv<'_> {
            SessionEnv {
                builder: &mut self.builder,
                rng: &mut self.rng,
                schedule: &mut self.schedule,
                next_flow: &mut self.next_flow,
            }
        }
    }

    #[test]
    fn amplification_amplifies() {
        let mut ctx = Ctx::new();
        let campaign = DnsAmplification {
            attacker: ep(0, [203, 0, 113, 66]),
            victim: ep(1, [10, 1, 1, 10]),
            reflectors: vec![ep(2, [203, 0, 113, 1]), ep(3, [203, 0, 113, 2])],
            qps: 100.0,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
        };
        dns_amplification(&mut ctx.env(), &campaign);
        let s = &ctx.schedule;
        assert_eq!(s.len(), 200); // 100 queries + 100 responses
        let victim_ip = std::net::IpAddr::V4(Ipv4Addr::new(10, 1, 1, 10));
        let to_victim: u64 = s
            .iter()
            .filter(|i| i.packet.network.dst() == victim_ip)
            .map(|i| i.packet.wire_len() as u64)
            .sum();
        let from_victim_addr: u64 = s
            .iter()
            .filter(|i| i.packet.network.src() == victim_ip)
            .map(|i| i.packet.wire_len() as u64)
            .sum();
        // The response flood dwarfs the spoofed query stream: ~10x or more.
        assert!(
            to_victim > 8 * from_victim_addr,
            "amplification factor too low: {to_victim} vs {from_victim_addr}"
        );
        assert!(s
            .iter()
            .all(|i| i.packet.truth.attack == Some(AttackKind::DnsAmplification.id())));
    }

    #[test]
    fn amplification_responses_parse_as_dns() {
        let mut ctx = Ctx::new();
        let campaign = DnsAmplification {
            attacker: ep(0, [203, 0, 113, 66]),
            victim: ep(1, [10, 1, 1, 10]),
            reflectors: vec![ep(2, [203, 0, 113, 1])],
            qps: 10.0,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
        };
        dns_amplification(&mut ctx.env(), &campaign);
        for inj in ctx.schedule.iter() {
            let msg = DnsMessage::parse(inj.packet.payload.bytes().unwrap()).unwrap();
            if msg.flags.response {
                assert!((14..24).contains(&msg.answers.len()), "{}", msg.answers.len());
            } else {
                assert!(msg.is_amplification_prone());
            }
        }
    }

    #[test]
    fn rotating_reflection_hops_port_and_prefix_signatures() {
        let mut ctx = Ctx::new();
        let campaign = RotatingReflection {
            attacker: ep(0, [203, 0, 113, 66]),
            victim: ep(1, [10, 1, 1, 10]),
            phases: vec![
                ReflectionPhase {
                    service_port: 53,
                    reflectors: vec![ep(2, [203, 0, 113, 1]), ep(3, [203, 0, 113, 2])],
                    start: SimTime::ZERO,
                    duration: SimDuration::from_secs(1),
                },
                ReflectionPhase {
                    service_port: 123,
                    reflectors: vec![ep(4, [198, 51, 100, 1]), ep(5, [198, 51, 100, 2])],
                    start: SimTime::from_secs(2),
                    duration: SimDuration::from_secs(1),
                },
            ],
            qps: 100.0,
        };
        rotating_reflection(&mut ctx.env(), &campaign);
        let s = &ctx.schedule;
        assert_eq!(s.len(), 400); // 2 phases x (100 triggers + 100 answers)
        let victim_ip = std::net::IpAddr::V4(Ipv4Addr::new(10, 1, 1, 10));
        // Phase 1 answers come from port 53, phase 2 answers from 123 —
        // the mid-run signature rotation a static filter cannot follow.
        let answers: Vec<_> =
            s.iter().filter(|i| i.packet.network.dst() == victim_ip).collect();
        assert_eq!(answers.len(), 200);
        for inj in &answers {
            let sport = inj.packet.transport.src_port().unwrap();
            let expected = if inj.at < SimTime::from_secs(2) { 53 } else { 123 };
            assert_eq!(sport, expected, "wrong service port at {:?}", inj.at);
            // Pools rotate prefixes with the port.
            let first_octet = match inj.packet.network.src() {
                std::net::IpAddr::V4(v4) => v4.octets()[0],
                _ => unreachable!(),
            };
            assert_eq!(first_octet, if expected == 53 { 203 } else { 198 });
        }
        // Amplification holds: answers dwarf the spoofed trigger stream.
        let to_victim: u64 = answers.iter().map(|i| i.packet.wire_len() as u64).sum();
        let triggers: u64 = s
            .iter()
            .filter(|i| i.packet.network.src() == victim_ip)
            .map(|i| i.packet.wire_len() as u64)
            .sum();
        assert!(to_victim > 8 * triggers, "amplification too low: {to_victim} vs {triggers}");
        assert!(s
            .iter()
            .all(|i| i.packet.truth.attack == Some(AttackKind::DnsAmplification.id())));
    }

    #[test]
    fn syn_flood_spoofs_sources() {
        let mut ctx = Ctx::new();
        let campaign = SynFlood {
            attacker: ep(0, [203, 0, 113, 66]),
            victim: ep(1, [10, 1, 255, 80]),
            dport: 443,
            pps: 500.0,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(2),
        };
        syn_flood(&mut ctx.env(), &campaign);
        let s = &ctx.schedule;
        assert_eq!(s.len(), 1000);
        let sources: std::collections::HashSet<std::net::IpAddr> =
            s.iter().map(|i| i.packet.network.src()).collect();
        assert!(sources.len() > 900, "sources not spoofed: {}", sources.len());
        for inj in s.iter() {
            match &inj.packet.transport {
                campuslab_netsim::TransportHeader::Tcp(t) => {
                    assert!(t.control.syn && !t.control.ack)
                }
                _ => panic!("syn flood emitted non-tcp"),
            }
        }
    }

    #[test]
    fn port_scan_sweeps_targets_and_ports() {
        let mut ctx = Ctx::new();
        let campaign = PortScan {
            attacker: ep(0, [203, 0, 113, 66]),
            targets: vec![ep(1, [10, 1, 1, 10]), ep(2, [10, 1, 1, 11])],
            ports: (1..=50).collect(),
            pps: 1000.0,
            start: SimTime::ZERO,
        };
        port_scan(&mut ctx.env(), &campaign);
        let probes = ctx
            .schedule
            .iter()
            .filter(|i| i.packet.network.src() == "203.0.113.66".parse::<std::net::IpAddr>().unwrap())
            .count();
        assert_eq!(probes, 100);
        // Most probes draw an RST back.
        let rsts = ctx
            .schedule
            .iter()
            .filter(|i| matches!(&i.packet.transport, campuslab_netsim::TransportHeader::Tcp(t) if t.control.rst))
            .count();
        assert!(rsts > 70 && rsts <= 100, "rsts {rsts}");
    }

    #[test]
    fn brute_force_hits_port_22_repeatedly() {
        let mut ctx = Ctx::new();
        let campaign = SshBruteForce {
            attacker: ep(0, [203, 0, 113, 66]),
            victim: ep(1, [10, 1, 1, 10]),
            attempts: 20,
            rate: 2.0,
            start: SimTime::ZERO,
        };
        ssh_brute_force(&mut ctx.env(), &campaign);
        let syns = ctx
            .schedule
            .iter()
            .filter(|i| {
                i.packet.transport.dst_port() == Some(22)
                    && matches!(&i.packet.transport, campuslab_netsim::TransportHeader::Tcp(t) if t.control.syn && !t.control.ack)
            })
            .count();
        assert_eq!(syns, 20);
        assert!(ctx
            .schedule
            .iter()
            .all(|i| i.packet.truth.attack == Some(AttackKind::SshBruteForce.id())));
    }

    #[test]
    fn water_torture_names_are_unique_and_mostly_well_formed() {
        let mut ctx = Ctx::new();
        let campaign = NxdomainFlood {
            sources: vec![ep(0, [203, 0, 113, 50]), ep(1, [203, 0, 113, 51])],
            resolver: ep(2, [10, 1, 255, 53]),
            base_domain: "torture.example.net".into(),
            qps_per_source: 50.0,
            corrupt_permille: 63,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(2),
        };
        nxdomain_flood(&mut ctx.env(), &campaign);
        let s = &ctx.schedule;
        assert_eq!(s.len(), 200); // 2 sources x 50 qps x 2 s, queries only
        let mut names = std::collections::HashSet::new();
        let mut corrupted = 0;
        for inj in s.iter() {
            assert_eq!(inj.packet.transport.dst_port(), Some(53));
            assert_eq!(inj.packet.truth.attack, Some(AttackKind::NxdomainFlood.id()));
            match DnsMessage::parse(inj.packet.payload.bytes().unwrap()) {
                Ok(msg) => {
                    assert!(!msg.flags.response, "flood is queries only");
                    assert!(msg.questions[0].name.ends_with(".torture.example.net"));
                    names.insert(msg.questions[0].name.clone());
                }
                Err(_) => corrupted += 1,
            }
        }
        // Unique junk labels: effectively no collisions at this scale.
        assert!(names.len() >= 190, "names {} not unique enough", names.len());
        // The corruption knob produced some malformed queries, not too many.
        assert!((1..40).contains(&corrupted), "corrupted {corrupted}");
    }

    #[test]
    fn amp_burst_spoofs_the_victim_and_asks_fat_questions() {
        let mut ctx = Ctx::new();
        let campaign = ResolverAmpBurst {
            attacker: ep(0, [203, 0, 113, 66]),
            victim: ep(1, [10, 1, 1, 10]),
            resolver: ep(2, [10, 1, 255, 53]),
            zone: "amp.example.org".into(),
            qps: 100.0,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
        };
        resolver_amp_burst(&mut ctx.env(), &campaign);
        assert_eq!(ctx.schedule.len(), 100);
        for inj in ctx.schedule.iter() {
            let victim_ip: std::net::IpAddr = "10.1.1.10".parse().unwrap();
            assert_eq!(inj.packet.network.src(), victim_ip, "source must be spoofed");
            let msg = DnsMessage::parse(inj.packet.payload.bytes().unwrap()).unwrap();
            assert!(msg.is_amplification_prone());
        }
    }

    #[test]
    fn exfiltration_is_outbound_heavy() {
        let mut ctx = Ctx::new();
        let campaign = Exfiltration {
            compromised: ep(0, [10, 1, 3, 14]),
            sink: ep(1, [203, 0, 113, 99]),
            bytes: 5_000_000,
            pace_bps: 2_000_000,
            start: SimTime::ZERO,
        };
        exfiltration(&mut ctx.env(), &campaign);
        let out: u64 = ctx
            .schedule
            .iter()
            .filter(|i| i.packet.network.src() == "10.1.3.14".parse::<std::net::IpAddr>().unwrap())
            .map(|i| i.packet.wire_len() as u64)
            .sum();
        let inbound: u64 = ctx
            .schedule
            .iter()
            .filter(|i| i.packet.network.dst() == "10.1.3.14".parse::<std::net::IpAddr>().unwrap())
            .map(|i| i.packet.wire_len() as u64)
            .sum();
        assert!(out > 5_000_000);
        assert!(out > 20 * inbound);
        // Slow pacing stretches the transfer over many seconds.
        assert!(ctx.schedule.span().as_secs_f64() > 10.0);
    }
}
