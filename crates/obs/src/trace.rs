//! Span-based stage tracing in sim-time.
//!
//! A [`Span`] is a named interval of *simulated* time plus an event
//! sequence number. Wall clock never appears: two replays of the same
//! seeded run — sequential or parallel — produce byte-identical traces.
//! Sequence numbers order spans that open at the same sim-time instant
//! (e.g. back-to-back pipeline stages of zero simulated length).

use crate::json_escape;
use std::fmt::Write as _;

/// Sentinel `end_ns` for a span that was opened but never closed.
pub const OPEN_END: u64 = u64::MAX;

/// One traced interval, in sim-time nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// Monotonic per-tracer sequence number, assigned at open.
    pub seq: u64,
    /// Stage name, e.g. `roadtest/run` or `mitigate[10.1.1.10]`.
    pub name: String,
    /// Sim-time at open, nanoseconds.
    pub start_ns: u64,
    /// Sim-time at close, nanoseconds ([`OPEN_END`] while open).
    pub end_ns: u64,
}

impl Span {
    /// Span duration in sim-time nanoseconds; zero while still open.
    pub fn duration_ns(&self) -> u64 {
        if self.end_ns == OPEN_END {
            0
        } else {
            self.end_ns.saturating_sub(self.start_ns)
        }
    }
}

/// Handle returned by [`Tracer::open`], consumed by [`Tracer::close`].
#[derive(Debug)]
#[must_use = "open spans should be closed"]
pub struct OpenSpan(usize);

impl OpenSpan {
    /// Index of the underlying span, for checkpointing a handle that is
    /// still open at a freeze barrier.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Rebuild a handle from an index captured by [`OpenSpan::index`].
    /// Only meaningful against the same tracer state it was frozen from.
    pub fn from_index(i: usize) -> OpenSpan {
        OpenSpan(i)
    }
}

/// An append-only span log with a deterministic sequence counter.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Tracer {
    spans: Vec<Span>,
    seq: u64,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Hand out the next event sequence number (also advanced by every
    /// span open). Usable standalone to stamp non-span events.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Open a span at sim-time `start_ns`.
    pub fn open(&mut self, name: impl Into<String>, start_ns: u64) -> OpenSpan {
        let seq = self.next_seq();
        self.spans.push(Span { seq, name: name.into(), start_ns, end_ns: OPEN_END });
        OpenSpan(self.spans.len() - 1)
    }

    /// Close a previously opened span at sim-time `end_ns`.
    pub fn close(&mut self, span: OpenSpan, end_ns: u64) {
        self.spans[span.0].end_ns = end_ns;
    }

    /// Record a fully-formed span in one call.
    pub fn record(&mut self, name: impl Into<String>, start_ns: u64, end_ns: u64) {
        let seq = self.next_seq();
        self.spans.push(Span { seq, name: name.into(), start_ns, end_ns });
    }

    /// All spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Append another tracer's spans, re-sequencing them after this
    /// tracer's own. Appending in a fixed order (e.g. per experiment
    /// point) keeps the merged trace deterministic.
    pub fn merge_from(&mut self, other: &Tracer) {
        let base = self.seq;
        for s in &other.spans {
            self.spans.push(Span { seq: base + s.seq, ..s.clone() });
        }
        self.seq = base + other.seq;
    }

    /// Render as a JSON array, one span per line, hand-rolled and
    /// byte-deterministic.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"seq\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                s.seq,
                json_escape(&s.name),
                s.start_ns,
                s.end_ns
            );
            out.push_str(if i + 1 == self.spans.len() { "\n" } else { ",\n" });
        }
        out.push_str("]\n");
        out
    }

    /// Render as aligned text, one span per line: `seq  [start..end]  name`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            if s.end_ns == OPEN_END {
                let _ = writeln!(out, "{:>6}  [{} ns .. open]  {}", s.seq, s.start_ns, s.name);
            } else {
                let _ = writeln!(
                    out,
                    "{:>6}  [{} ns .. {} ns]  {}",
                    s.seq, s.start_ns, s.end_ns, s.name
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_and_record_sequence() {
        let mut t = Tracer::new();
        let a = t.open("collect", 0);
        t.record("flash", 5, 9);
        t.close(a, 100);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].seq, 0);
        assert_eq!(t.spans()[0].end_ns, 100);
        assert_eq!(t.spans()[1].seq, 1);
        assert_eq!(t.spans()[1].duration_ns(), 4);
    }

    #[test]
    fn json_render_is_stable() {
        let mut t = Tracer::new();
        t.record("a\"quote", 1, 2);
        let j = t.render_json();
        assert_eq!(j, "[\n  {\"seq\":0,\"name\":\"a\\\"quote\",\"start_ns\":1,\"end_ns\":2}\n]\n");
        assert_eq!(j, t.render_json());
    }

    #[test]
    fn merge_resequences() {
        let mut a = Tracer::new();
        a.record("x", 0, 1);
        let mut b = Tracer::new();
        b.record("y", 2, 3);
        b.record("z", 4, 5);
        a.merge_from(&b);
        let seqs: Vec<u64> = a.spans().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(a.next_seq(), 3);
    }

    #[test]
    fn empty_trace_renders_bracket_pair() {
        assert_eq!(Tracer::new().render_json(), "[\n]\n");
    }
}
