//! Metrics: a registry of descriptors plus flat, lock-free sinks of values.
//!
//! The [`Registry`] is built once at construction time (metric names, help
//! strings, histogram bucket bounds) and then handed out as many
//! [`ObsSink`]s as there are independent workers. A sink is nothing but
//! three flat vectors indexed by the typed ids the registry returned, so
//! the fast path is `self.counters[i] += 1` — no hashing, no locking, no
//! allocation.
//!
//! ## Naming scheme
//!
//! Metric names follow the Prometheus conventions:
//! `<subsystem>_<noun>_<unit>[_total]`, e.g. `sim_dropped_packets_total`.
//! A metric may carry one static label (`reason="queue"`); metrics sharing
//! a family name must be registered contiguously so the renderer can emit
//! one `# HELP`/`# TYPE` header per family.

/// Index of a counter within a sink. Obtained from [`Registry::counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Index of a gauge within a sink. Obtained from [`Registry::gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Index of a histogram within a sink. Obtained from [`Registry::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug, Clone)]
struct Desc {
    /// Family name, e.g. `sim_dropped_packets_total`.
    name: &'static str,
    /// Optional rendered label pair, e.g. `reason="queue"`.
    label: Option<&'static str>,
    help: &'static str,
    kind: Kind,
    /// Index into the sink's value vector for this kind.
    slot: u32,
}

/// A fixed-bucket histogram: strictly increasing upper bounds plus an
/// implicit `+Inf` bucket, with total count and sum.
///
/// Invariants (pinned by property tests):
/// * `counts.len() == bounds.len() + 1`
/// * `count == counts.iter().sum()`
/// * `sum` is the exact sum of every recorded value
/// * cumulative bucket counts are monotone non-decreasing
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Box<[u64]>,
    counts: Box<[u64]>,
    count: u64,
    sum: u128,
}

// Hand-rolled (the derive cannot thaw `Box<[u64]>`), shaped exactly like
// the named-struct derive output so checkpoints stay format-uniform.
impl serde::Serialize for Histogram {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"bounds\":");
        self.bounds[..].serialize_json(out);
        out.push_str(",\"counts\":");
        self.counts[..].serialize_json(out);
        out.push_str(",\"count\":");
        self.count.serialize_json(out);
        out.push_str(",\"sum\":");
        self.sum.serialize_json(out);
        out.push('}');
    }
}

impl serde::Deserialize for Histogram {
    fn deserialize_json(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let pairs = v.as_object()?;
        let bounds: Vec<u64> = serde::Deserialize::deserialize_json(serde::json::field(pairs, "bounds")?)?;
        let counts: Vec<u64> = serde::Deserialize::deserialize_json(serde::json::field(pairs, "counts")?)?;
        let count: u64 = serde::Deserialize::deserialize_json(serde::json::field(pairs, "count")?)?;
        let sum: u128 = serde::Deserialize::deserialize_json(serde::json::field(pairs, "sum")?)?;
        if counts.len() != bounds.len() + 1 || !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err(serde::json::Error::new("histogram shape invariant violated"));
        }
        Ok(Histogram {
            bounds: bounds.into_boxed_slice(),
            counts: counts.into_boxed_slice(),
            count,
            sum,
        })
    }
}

impl Histogram {
    /// Build an empty histogram. `bounds` must be strictly increasing;
    /// the `+Inf` bucket is implicit.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.into(),
            counts: vec![0; bounds.len() + 1].into_boxed_slice(),
            count: 0,
            sum: 0,
        }
    }

    /// Index of the bucket `value` lands in: the first bound `>= value`,
    /// or the `+Inf` bucket.
    pub fn bucket_for(&self, value: u64) -> usize {
        // Bucket vectors here are short (<= ~16 bounds); a linear scan
        // beats binary search and keeps the fast path branch-predictable.
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let i = self.bucket_for(value);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Fold another histogram with identical bounds into this one.
    /// Element-wise addition, so merging is associative and commutative.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram merge across different bucket layouts");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket upper bounds (exclusive of the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts per bucket, Prometheus `le` style (`+Inf` last,
    /// always equal to [`Histogram::count`]).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u128 {
        self.sum
    }
}

/// The schema: metric descriptors in registration order. Build one per
/// subsystem, then mint sinks from it.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    descs: Vec<Desc>,
    counters: u32,
    gauges: u32,
    hist_bounds: Vec<Box<[u64]>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a counter; the returned id indexes every sink minted from
    /// this registry.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> CounterId {
        self.counter_with_label(name, None, help)
    }

    /// Register a counter carrying a static label, e.g.
    /// `("sim_dropped_packets_total", Some("reason=\"queue\""), ...)`.
    /// Members of one family must be registered contiguously.
    pub fn counter_with_label(
        &mut self,
        name: &'static str,
        label: Option<&'static str>,
        help: &'static str,
    ) -> CounterId {
        let slot = self.counters;
        self.counters += 1;
        self.descs.push(Desc { name, label, help, kind: Kind::Counter, slot });
        CounterId(slot)
    }

    /// Register a gauge (a signed value that can go up and down).
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> GaugeId {
        let slot = self.gauges;
        self.gauges += 1;
        self.descs.push(Desc { name, label: None, help, kind: Kind::Gauge, slot });
        GaugeId(slot)
    }

    /// Register a fixed-bucket histogram. `bounds` must be strictly
    /// increasing; the `+Inf` bucket is implicit.
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        bounds: &[u64],
    ) -> HistogramId {
        let slot = self.hist_bounds.len() as u32;
        // Histogram::new validates monotonicity.
        self.hist_bounds.push(Histogram::new(bounds).bounds);
        self.descs.push(Desc { name, label: None, help, kind: Kind::Histogram, slot });
        HistogramId(slot)
    }

    /// Mint a zeroed sink sized for this registry's schema.
    pub fn sink(&self) -> ObsSink {
        ObsSink {
            counters: vec![0; self.counters as usize],
            gauges: vec![0; self.gauges as usize],
            hists: self.hist_bounds.iter().map(|b| Histogram::new(b)).collect(),
            enabled: true,
        }
    }

    /// Number of registered metrics (all kinds).
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Render a sink as Prometheus text exposition format. Walks metrics
    /// in registration order: byte-deterministic for a given schema and
    /// value set.
    pub fn render(&self, sink: &ObsSink) -> String {
        self.render_prefixed(sink, "")
    }

    /// Like [`Registry::render`], but with `prefix` prepended to every
    /// family name. Instance-scoped subsystems (one registry schema, many
    /// live instances — e.g. per-tenant rollout guards) use this to keep
    /// their families disjoint in a combined dump; the empty prefix is
    /// byte-identical to `render`.
    pub fn render_prefixed(&self, sink: &ObsSink, prefix: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for d in &self.descs {
            if last_family != Some(d.name) {
                let ty = match d.kind {
                    Kind::Counter => "counter",
                    Kind::Gauge => "gauge",
                    Kind::Histogram => "histogram",
                };
                let _ = writeln!(out, "# HELP {prefix}{} {}", d.name, d.help);
                let _ = writeln!(out, "# TYPE {prefix}{} {}", d.name, ty);
                last_family = Some(d.name);
            }
            match d.kind {
                Kind::Counter => {
                    let v = sink.counters[d.slot as usize];
                    match d.label {
                        Some(l) => {
                            let _ = writeln!(out, "{prefix}{}{{{}}} {}", d.name, l, v);
                        }
                        None => {
                            let _ = writeln!(out, "{prefix}{} {}", d.name, v);
                        }
                    }
                }
                Kind::Gauge => {
                    let _ = writeln!(out, "{prefix}{} {}", d.name, sink.gauges[d.slot as usize]);
                }
                Kind::Histogram => {
                    let h = &sink.hists[d.slot as usize];
                    let cum = h.cumulative();
                    for (b, c) in h.bounds.iter().zip(cum.iter()) {
                        let _ = writeln!(out, "{prefix}{}_bucket{{le=\"{}\"}} {}", d.name, b, c);
                    }
                    let _ = writeln!(
                        out,
                        "{prefix}{}_bucket{{le=\"+Inf\"}} {}",
                        d.name,
                        cum.last().copied().unwrap_or(0)
                    );
                    let _ = writeln!(out, "{prefix}{}_sum {}", d.name, h.sum);
                    let _ = writeln!(out, "{prefix}{}_count {}", d.name, h.count);
                }
            }
        }
        out
    }
}

/// A flat vector of metric values matching one [`Registry`] schema.
///
/// Cloneable and `Send`: parallel runners give each worker its own sink
/// and fold them back with [`ObsSink::merge_from`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObsSink {
    counters: Vec<u64>,
    gauges: Vec<i64>,
    hists: Vec<Histogram>,
    enabled: bool,
}

impl ObsSink {
    /// Bump a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        if self.enabled {
            self.counters[id.0 as usize] += 1;
        }
    }

    /// Bump a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0 as usize] += n;
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: i64) {
        if self.enabled {
            self.gauges[id.0 as usize] = v;
        }
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        if self.enabled {
            self.hists[id.0 as usize].record(v);
        }
    }

    /// Read a counter back.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Read a gauge back.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id.0 as usize]
    }

    /// Read a histogram back.
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.hists[id.0 as usize]
    }

    /// Disable (or re-enable) recording. Disabled sinks make every bump a
    /// single predictable branch — the baseline for the overhead bench.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Fold another sink minted from the same registry into this one.
    /// Counters and gauges add element-wise, histograms merge bucket-wise,
    /// so the fold is associative — the parallel runner's reduction order
    /// cannot change the result.
    pub fn merge_from(&mut self, other: &ObsSink) {
        assert_eq!(self.counters.len(), other.counters.len(), "sink merge across schemas");
        assert_eq!(self.gauges.len(), other.gauges.len(), "sink merge across schemas");
        assert_eq!(self.hists.len(), other.hists.len(), "sink merge across schemas");
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge_from(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (Registry, CounterId, CounterId, GaugeId, HistogramId) {
        let mut reg = Registry::new();
        let a = reg.counter_with_label("pkts_total", Some("kind=\"a\""), "packets by kind");
        let b = reg.counter_with_label("pkts_total", Some("kind=\"b\""), "packets by kind");
        let g = reg.gauge("depth", "instantaneous depth");
        let h = reg.histogram("lat_us", "latency", &[10, 100, 1000]);
        (reg, a, b, g, h)
    }

    #[test]
    fn render_is_deterministic_and_grouped() {
        let (reg, a, b, g, h) = demo();
        let mut s = reg.sink();
        s.inc(a);
        s.add(b, 3);
        s.set(g, -2);
        s.observe(h, 5);
        s.observe(h, 50);
        s.observe(h, 5000);
        let text = reg.render(&s);
        let expect = "\
# HELP pkts_total packets by kind
# TYPE pkts_total counter
pkts_total{kind=\"a\"} 1
pkts_total{kind=\"b\"} 3
# HELP depth instantaneous depth
# TYPE depth gauge
depth -2
# HELP lat_us latency
# TYPE lat_us histogram
lat_us_bucket{le=\"10\"} 1
lat_us_bucket{le=\"100\"} 2
lat_us_bucket{le=\"1000\"} 2
lat_us_bucket{le=\"+Inf\"} 3
lat_us_sum 5055
lat_us_count 3
";
        assert_eq!(text, expect);
        assert_eq!(text, reg.render(&s), "render must be stable");
    }

    #[test]
    fn prefixed_render_renames_every_family_and_empty_prefix_is_identity() {
        let (reg, a, _, g, h) = demo();
        let mut s = reg.sink();
        s.inc(a);
        s.set(g, 4);
        s.observe(h, 42);
        assert_eq!(reg.render_prefixed(&s, ""), reg.render(&s));
        let prefixed = reg.render_prefixed(&s, "t3_");
        for line in prefixed.lines() {
            let body = line.strip_prefix("# HELP ").or_else(|| line.strip_prefix("# TYPE ")).unwrap_or(line);
            assert!(body.starts_with("t3_"), "unprefixed line in output: {line}");
        }
        assert_eq!(prefixed.replace("t3_", ""), reg.render(&s));
    }

    #[test]
    fn histogram_boundary_values_land_in_lower_bucket() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(10); // on the bound: le="10"
        h.record(11);
        assert_eq!(h.bucket_counts(), &[1, 1, 0]);
        assert_eq!(h.cumulative(), vec![1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn merge_adds_everything() {
        let (reg, a, _, g, h) = demo();
        let mut s1 = reg.sink();
        let mut s2 = reg.sink();
        s1.inc(a);
        s2.add(a, 4);
        s1.set(g, 2);
        s2.set(g, 5);
        s1.observe(h, 7);
        s2.observe(h, 700);
        s1.merge_from(&s2);
        assert_eq!(s1.counter(a), 5);
        assert_eq!(s1.gauge(g), 7);
        assert_eq!(s1.histogram(h).count(), 2);
        assert_eq!(s1.histogram(h).sum(), 707);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let (reg, a, _, g, h) = demo();
        let mut s = reg.sink();
        s.set_enabled(false);
        s.inc(a);
        s.set(g, 9);
        s.observe(h, 1);
        assert_eq!(s.counter(a), 0);
        assert_eq!(s.gauge(g), 0);
        assert_eq!(s.histogram(h).count(), 0);
    }
}
