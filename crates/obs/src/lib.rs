//! # campuslab-obs
//!
//! The Observatory: a zero-dependency metrics registry (counters, gauges,
//! fixed-bucket histograms) plus span-based stage tracing for every layer
//! of the CampusLab pipeline.
//!
//! Two properties drive the whole design:
//!
//! * **Determinism.** Every value is timestamped in *sim-time* nanoseconds
//!   and event sequence numbers — wall clock never enters a dump. Rendering
//!   walks metrics in registration order and spans in sequence order, so a
//!   dump or trace from the same seeded run is byte-for-byte identical, run
//!   after run, sequential or parallel.
//! * **Cheap on the fast path.** An [`ObsSink`] is a flat `Vec<u64>` owned
//!   by whoever is being instrumented; bumping a counter is an array index
//!   and an add. No globals, no locks, no atomics — parallel runners give
//!   each worker its own sink and [`ObsSink::merge_from`] folds them.
//!
//! ```
//! use campuslab_obs::Registry;
//!
//! let mut reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", "route cache hits");
//! let depth = reg.histogram("queue_depth_bytes", "egress queue depth", &[100, 1_000, 10_000]);
//! let mut sink = reg.sink();
//! sink.inc(hits);
//! sink.observe(depth, 250);
//! let dump = reg.render(&sink);
//! assert!(dump.contains("cache_hits_total 1"));
//! assert!(dump.contains("queue_depth_bytes_bucket{le=\"1000\"} 1"));
//! ```

#![deny(rust_2018_idioms)]
#![deny(unreachable_pub)]

pub mod metrics;
pub mod trace;

pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, ObsSink, Registry};
pub use trace::{OpenSpan, Span, Tracer};

/// Escape a string for inclusion in a JSON string literal (hand-rolled so
/// deterministic renders need no serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Hand-rolled and table-free so every durability layer (checkpoint
/// envelopes, WAL record frames, segment manifests) shares one checksum
/// with zero dependencies. Throughput is irrelevant at the sizes involved;
/// bit-exactness across platforms is what matters.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::{crc32, json_escape};

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"), "single-byte change must move the sum");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
