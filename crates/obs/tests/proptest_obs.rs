//! Property tests for the Observatory's metric types: histogram bucket
//! monotonicity, merge associativity/commutativity, and the sum/count
//! invariants every sink bump must preserve.

use campuslab_obs::{Histogram, ObsSink, Registry};
use proptest::prelude::*;
use proptest::{collection, proptest, ProptestConfig};

/// Random strictly-increasing bucket bounds (1..=6 buckets).
fn bounds_from(raw: Vec<u64>) -> Vec<u64> {
    let mut b: Vec<u64> = raw.into_iter().map(|v| v % 1_000_000).collect();
    b.sort_unstable();
    b.dedup();
    if b.is_empty() {
        b.push(1);
    }
    b
}

fn filled(bounds: &[u64], values: &[u64]) -> Histogram {
    let mut h = Histogram::new(bounds);
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn histogram_cumulative_is_monotone_and_totals_match(
        raw_bounds in collection::vec(any::<u64>(), 1..=6),
        values in collection::vec(0u64..2_000_000, 0..=64),
    ) {
        let bounds = bounds_from(raw_bounds);
        let h = filled(&bounds, &values);
        let cumulative = h.cumulative();
        // One implicit +Inf bucket beyond the explicit bounds.
        prop_assert_eq!(cumulative.len(), bounds.len() + 1);
        for pair in cumulative.windows(2) {
            prop_assert!(pair[0] <= pair[1], "cumulative dipped: {:?}", cumulative);
        }
        // The +Inf bucket swallows everything; per-bucket counts sum to it.
        prop_assert_eq!(*cumulative.last().unwrap(), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        // Every value landed in the first bucket whose bound covers it.
        for &v in &values {
            let b = h.bucket_for(v);
            prop_assert!(b == bounds.len() || v <= bounds[b]);
            prop_assert!(b == 0 || v > bounds[b - 1]);
        }
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        raw_bounds in collection::vec(any::<u64>(), 1..=5),
        xs in collection::vec(0u64..500_000, 0..=32),
        ys in collection::vec(0u64..500_000, 0..=32),
        zs in collection::vec(0u64..500_000, 0..=32),
    ) {
        let bounds = bounds_from(raw_bounds);
        let (a, b, c) = (filled(&bounds, &xs), filled(&bounds, &ys), filled(&bounds, &zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        // b ⊕ a == a ⊕ b
        let mut ba = b.clone();
        ba.merge_from(&a);
        let mut ab = a.clone();
        ab.merge_from(&b);
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        prop_assert_eq!(ab.sum(), ba.sum());
        // Merging preserves the totals of both sides.
        prop_assert_eq!(ab.count(), a.count() + b.count());
        prop_assert_eq!(ab.sum(), a.sum() + b.sum());
    }

    #[test]
    fn sink_merge_matches_replayed_bumps(
        xs in collection::vec((0usize..3, 1u64..1_000), 0..=48),
        ys in collection::vec((0usize..3, 1u64..1_000), 0..=48),
    ) {
        // Schema: three counters and a histogram fed from every bump.
        let mut reg = Registry::new();
        let counters =
            [reg.counter("a_total", ""), reg.counter("b_total", ""), reg.counter("c_total", "")];
        let hist = reg.histogram("h", "", &[10, 100, 500]);
        let bump = |sink: &mut ObsSink, stream: &[(usize, u64)]| {
            for &(which, amount) in stream {
                sink.add(counters[which], amount);
                sink.observe(hist, amount);
            }
        };
        // Two sinks merged…
        let (mut left, mut right) = (reg.sink(), reg.sink());
        bump(&mut left, &xs);
        bump(&mut right, &ys);
        left.merge_from(&right);
        // …must equal one sink fed both streams in sequence.
        let mut both = reg.sink();
        bump(&mut both, &xs);
        bump(&mut both, &ys);
        for id in counters {
            prop_assert_eq!(left.counter(id), both.counter(id));
        }
        prop_assert_eq!(left.histogram(hist).bucket_counts(), both.histogram(hist).bucket_counts());
        prop_assert_eq!(left.histogram(hist).sum(), both.histogram(hist).sum());
        // And the rendered dumps agree byte-for-byte.
        prop_assert_eq!(reg.render(&left), reg.render(&both));
    }

    #[test]
    fn disabled_sinks_stay_zero(
        bumps in collection::vec(1u64..1_000, 0..=16),
    ) {
        let mut reg = Registry::new();
        let c = reg.counter("c_total", "");
        let h = reg.histogram("h", "", &[50]);
        let mut sink = reg.sink();
        sink.set_enabled(false);
        for &v in &bumps {
            sink.add(c, v);
            sink.observe(h, v);
        }
        prop_assert_eq!(sink.counter(c), 0);
        prop_assert_eq!(sink.histogram(h).count(), 0);
        // Re-enabling resumes counting from zero, not from a stash.
        sink.set_enabled(true);
        sink.inc(c);
        prop_assert_eq!(sink.counter(c), 1);
    }
}
