//! Per-packet features — the feature set a programmable data plane can
//! evaluate at line rate, because every column is a header field or a
//! trivial function of one. This is the schema the tree→match-action
//! compiler understands.

use crate::label::LabelMode;
use campuslab_capture::{Direction, PacketRecord};
use campuslab_ml::Dataset;

/// Column names, in order. Every feature is integer-valued on purpose:
/// tree thresholds over integers compile exactly to range matches.
pub const PACKET_FEATURES: [&str; 13] = [
    "protocol",
    "src_port",
    "dst_port",
    "wire_len",
    "ttl",
    "direction_inbound",
    "tcp_syn",
    "tcp_ack",
    "tcp_fin",
    "tcp_rst",
    "is_udp",
    "is_tcp",
    "src_port_is_dns",
];

/// Index of a packet feature by name; panics on unknown names (they are
/// compile-time constants everywhere they are used).
pub fn packet_feature_index(name: &str) -> usize {
    PACKET_FEATURES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown packet feature {name}"))
}

/// Extract the feature row for one captured packet.
pub fn packet_features(rec: &PacketRecord) -> Vec<f64> {
    vec![
        f64::from(rec.protocol),
        f64::from(rec.src_port),
        f64::from(rec.dst_port),
        f64::from(rec.wire_len),
        f64::from(rec.ttl),
        f64::from(u8::from(rec.direction == Direction::Inbound)),
        f64::from(u8::from(rec.tcp_flags.syn)),
        f64::from(u8::from(rec.tcp_flags.ack)),
        f64::from(u8::from(rec.tcp_flags.fin)),
        f64::from(u8::from(rec.tcp_flags.rst)),
        f64::from(u8::from(rec.protocol == 17)),
        f64::from(u8::from(rec.protocol == 6)),
        f64::from(u8::from(rec.src_port == 53)),
    ]
}

/// Build a per-packet dataset from captured records, labeled per `mode`.
/// Records are assumed time-ordered (as the capture plane produces them),
/// so `split_by_order` gives leakage-free train/test splits.
pub fn packet_dataset(records: &[PacketRecord], mode: LabelMode) -> Dataset {
    let x: Vec<Vec<f64>> = records.iter().map(packet_features).collect();
    let y: Vec<usize> = records.iter().map(|r| mode.label_packet(r)).collect();
    let mut d = Dataset::new(
        x,
        y,
        PACKET_FEATURES.iter().map(|s| s.to_string()).collect(),
    );
    d.n_classes = d.n_classes.max(mode.min_classes());
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::TcpFlags;
    use std::net::IpAddr;

    fn rec(protocol: u8, sport: u16, dport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: 0,
            direction: Direction::Inbound,
            src: IpAddr::from([203, 0, 113, 1]),
            dst: IpAddr::from([10, 1, 1, 10]),
            protocol,
            src_port: sport,
            dst_port: dport,
            wire_len: 1200,
            ttl: 60,
            tcp_flags: TcpFlags { syn: protocol == 6, ..Default::default() },
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    #[test]
    fn schema_and_row_agree() {
        let row = packet_features(&rec(17, 53, 40_000, 1));
        assert_eq!(row.len(), PACKET_FEATURES.len());
        assert_eq!(row[packet_feature_index("protocol")], 17.0);
        assert_eq!(row[packet_feature_index("src_port")], 53.0);
        assert_eq!(row[packet_feature_index("dst_port")], 40_000.0);
        assert_eq!(row[packet_feature_index("wire_len")], 1200.0);
        assert_eq!(row[packet_feature_index("direction_inbound")], 1.0);
        assert_eq!(row[packet_feature_index("is_udp")], 1.0);
        assert_eq!(row[packet_feature_index("is_tcp")], 0.0);
        assert_eq!(row[packet_feature_index("src_port_is_dns")], 1.0);
    }

    #[test]
    fn tcp_flags_are_featurized() {
        let row = packet_features(&rec(6, 50_000, 443, 0));
        assert_eq!(row[packet_feature_index("tcp_syn")], 1.0);
        assert_eq!(row[packet_feature_index("is_tcp")], 1.0);
        assert_eq!(row[packet_feature_index("src_port_is_dns")], 0.0);
    }

    #[test]
    fn dataset_binary_labels() {
        let records = vec![rec(17, 53, 40_000, 1), rec(6, 50_000, 443, 0)];
        let d = packet_dataset(&records, LabelMode::BinaryAttack);
        assert_eq!(d.len(), 2);
        assert_eq!(d.y, vec![1, 0]);
        assert_eq!(d.n_classes, 2);
        assert_eq!(d.feature_names.len(), PACKET_FEATURES.len());
    }

    #[test]
    #[should_panic(expected = "unknown packet feature")]
    fn unknown_feature_name_panics() {
        packet_feature_index("nope");
    }
}
