//! # campuslab-features
//!
//! Feature engineering over the data store — the activity the paper says
//! access to an IMAGENET-like store finally makes "a first-class citizen"
//! (§2). Three feature granularities, matched to where a model can run:
//!
//! * [`packet`] — per-packet, header-only, integer-valued: evaluable by a
//!   programmable data plane, and exactly what the tree→match-action
//!   compiler consumes.
//! * [`flowfeat`] — per-flow aggregates from the flow table: the control
//!   plane's feature set.
//! * [`window`] — per-destination time-window aggregates: the richest (and
//!   slowest) view, natural for a controller or cloud tier.
//!
//! All builders produce seeded-deterministic [`campuslab_ml::Dataset`]s
//! with ground-truth labels chosen by [`LabelMode`].

//!
//! ```
//! use campuslab_features::{PACKET_FEATURES, packet_feature_index};
//!
//! // The packet schema is the switch's match key, by construction.
//! assert_eq!(PACKET_FEATURES.len(), 13);
//! assert_eq!(PACKET_FEATURES[packet_feature_index("src_port_is_dns")],
//!            "src_port_is_dns");
//! ```

pub mod label;
pub mod packet;
pub mod flowfeat;
pub mod window;

pub use flowfeat::{flow_dataset, flow_feature_index, flow_features, FLOW_FEATURES};
pub use label::LabelMode;
pub use packet::{packet_dataset, packet_feature_index, packet_features, PACKET_FEATURES};
pub use window::{
    aggregate, window_dataset, FrozenWindowStream, WindowCell, WindowConfig, WindowStream,
    WINDOW_FEATURES,
};
