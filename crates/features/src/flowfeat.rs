//! Per-flow features — richer than per-packet, computable in the control
//! plane from the flow table; the feature set for flow-granularity
//! detectors (SSH brute force, exfiltration).

use crate::label::LabelMode;
use campuslab_capture::FlowRecord;
use campuslab_ml::Dataset;

/// Column names, in order.
pub const FLOW_FEATURES: [&str; 14] = [
    "duration_s",
    "total_packets",
    "total_bytes",
    "fwd_packets",
    "rev_packets",
    "bytes_ratio_fwd",
    "mean_pkt_len",
    "min_len",
    "max_len",
    "mean_iat_ms",
    "syn_count",
    "fin_count",
    "rst_count",
    "dst_port",
];

/// Index of a flow feature by name.
pub fn flow_feature_index(name: &str) -> usize {
    FLOW_FEATURES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown flow feature {name}"))
}

/// Extract the feature row for one flow.
pub fn flow_features(f: &FlowRecord) -> Vec<f64> {
    let total_packets = f.total_packets() as f64;
    let total_bytes = f.total_bytes() as f64;
    vec![
        f.duration_ns() as f64 / 1e9,
        total_packets,
        total_bytes,
        f.fwd_packets as f64,
        f.rev_packets as f64,
        if total_bytes > 0.0 { f.fwd_bytes as f64 / total_bytes } else { 0.5 },
        if total_packets > 0.0 { total_bytes / total_packets } else { 0.0 },
        f64::from(f.min_len),
        f64::from(f.max_len),
        f.mean_iat_ns as f64 / 1e6,
        f64::from(f.syn_count),
        f64::from(f.fin_count),
        f64::from(f.rst_count),
        f64::from(f.key.dst_port),
    ]
}

/// Build a flow-level dataset.
pub fn flow_dataset(flows: &[FlowRecord], mode: LabelMode) -> Dataset {
    let x: Vec<Vec<f64>> = flows.iter().map(flow_features).collect();
    let y: Vec<usize> = flows.iter().map(|f| mode.label_flow(f)).collect();
    let mut d = Dataset::new(x, y, FLOW_FEATURES.iter().map(|s| s.to_string()).collect());
    d.n_classes = d.n_classes.max(mode.min_classes());
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::FlowKey;

    fn flow(attack: u16) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: "10.1.1.10".parse().unwrap(),
                dst: "203.0.113.9".parse().unwrap(),
                protocol: 6,
                src_port: 50_000,
                dst_port: 22,
            },
            first_ts_ns: 1_000_000_000,
            last_ts_ns: 3_000_000_000,
            fwd_packets: 10,
            fwd_bytes: 4_000,
            rev_packets: 5,
            rev_bytes: 1_000,
            syn_count: 2,
            fin_count: 2,
            rst_count: 0,
            mean_iat_ns: 2_000_000,
            min_len: 60,
            max_len: 1500,
            label_app: 4,
            label_attack: attack,
        }
    }

    #[test]
    fn feature_values() {
        let row = flow_features(&flow(0));
        assert_eq!(row.len(), FLOW_FEATURES.len());
        assert_eq!(row[flow_feature_index("duration_s")], 2.0);
        assert_eq!(row[flow_feature_index("total_packets")], 15.0);
        assert_eq!(row[flow_feature_index("total_bytes")], 5_000.0);
        assert!((row[flow_feature_index("bytes_ratio_fwd")] - 0.8).abs() < 1e-12);
        assert!((row[flow_feature_index("mean_pkt_len")] - 5000.0 / 15.0).abs() < 1e-9);
        assert_eq!(row[flow_feature_index("mean_iat_ms")], 2.0);
        assert_eq!(row[flow_feature_index("dst_port")], 22.0);
    }

    #[test]
    fn dataset_with_attack_kinds() {
        let flows = vec![flow(0), flow(4), flow(4)];
        let d = flow_dataset(&flows, LabelMode::AttackKind);
        assert_eq!(d.y, vec![0, 4, 4]);
        assert_eq!(d.n_classes, 6);
    }

    #[test]
    fn degenerate_flow_is_finite() {
        let mut f = flow(0);
        f.fwd_packets = 1;
        f.rev_packets = 0;
        f.fwd_bytes = 0;
        f.rev_bytes = 0;
        let row = flow_features(&f);
        assert!(row.iter().all(|v| v.is_finite()));
    }
}
