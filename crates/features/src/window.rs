//! Time-window aggregates per destination host — the control-plane /
//! cloud feature set: richer context than any single packet, at the cost
//! of waiting for the window to fill (the latency/accuracy trade of
//! experiment E8).

use crate::label::LabelMode;
use campuslab_capture::{Direction, PacketRecord};
use campuslab_ml::Dataset;
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;


/// Column names, in order.
pub const WINDOW_FEATURES: [&str; 11] = [
    "pkt_count",
    "byte_count",
    "distinct_srcs",
    "src_entropy",
    "udp_frac",
    "dns_src_frac",
    "syn_frac",
    "inbound_frac",
    "mean_pkt_len",
    "max_pkt_len",
    "rst_frac",
];

/// Windowing parameters.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct WindowConfig {
    /// Tumbling window length.
    pub window_ns: u64,
    /// Ignore (dst, window) cells with fewer packets than this — tiny
    /// cells carry more noise than signal.
    pub min_packets: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { window_ns: 1_000_000_000, min_packets: 3 }
    }
}

/// One aggregated cell: traffic toward `dst` during window `index`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowCell {
    pub dst: IpAddr,
    pub window_index: u64,
    pub features: Vec<f64>,
    /// Majority label over member packets under the given mode.
    pub label: usize,
    pub packets: usize,
}

/// Per-cell accumulator shared by the batch [`aggregate`] and the
/// incremental [`WindowStream`]: both absorb records and finish cells
/// through this one implementation, so streaming == batch holds by
/// construction, not by parallel maintenance of two formulas.
#[derive(Debug, Clone, Default)]
struct Acc {
    pkts: u64,
    bytes: u64,
    // BTreeMap so the entropy float sum below always runs in source-address
    // order: summation order is part of the byte-determinism contract.
    srcs: BTreeMap<IpAddr, u64>,
    udp: u64,
    dns_src: u64,
    syn: u64,
    inbound: u64,
    rst: u64,
    max_len: u32,
    labels: BTreeMap<usize, u64>,
}

impl Acc {
    fn absorb(&mut self, r: &PacketRecord, mode: LabelMode) {
        self.pkts += 1;
        self.bytes += u64::from(r.wire_len);
        *self.srcs.entry(r.src).or_insert(0) += 1;
        self.udp += u64::from(r.protocol == 17);
        self.dns_src += u64::from(r.src_port == 53);
        self.syn += u64::from(r.tcp_flags.syn && !r.tcp_flags.ack);
        self.rst += u64::from(r.tcp_flags.rst);
        self.inbound += u64::from(r.direction == Direction::Inbound);
        self.max_len = self.max_len.max(r.wire_len);
        *self.labels.entry(mode.label_packet(r)).or_insert(0) += 1;
    }

    fn finish(&self, dst: IpAddr, window_index: u64) -> WindowCell {
        let n = self.pkts as f64;
        // Attacks should dominate labeling even when mixed with benign
        // chatter: prefer the highest-count *nonzero* label when it holds
        // at least 25% of the window. Ties break toward the smallest label
        // id — an explicit rule, never map iteration order.
        let mut label = majority(&self.labels, |_| true).expect("non-empty cell");
        if label == 0 {
            if let Some(alt) = majority(&self.labels, |l| l != 0) {
                if self.labels[&alt] as f64 >= n * 0.25 {
                    label = alt;
                }
            }
        }
        // Shannon entropy of the source distribution, in bits: a
        // reflection flood spreads mass across many reflectors where a
        // normal conversation concentrates on a handful of peers.
        let src_entropy: f64 = self
            .srcs
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        WindowCell {
            dst,
            window_index,
            features: vec![
                n,
                self.bytes as f64,
                self.srcs.len() as f64,
                src_entropy,
                self.udp as f64 / n,
                self.dns_src as f64 / n,
                self.syn as f64 / n,
                self.inbound as f64 / n,
                self.bytes as f64 / n,
                f64::from(self.max_len),
                self.rst as f64 / n,
            ],
            label,
            packets: self.pkts as usize,
        }
    }
}

/// Highest-count label among those passing `keep`; ties break toward the
/// smallest label id (strict `>` over an ascending-ordered map).
fn majority(labels: &BTreeMap<usize, u64>, keep: impl Fn(usize) -> bool) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    for (&l, &c) in labels {
        if keep(l) && best.is_none_or(|(_, bc)| c > bc) {
            best = Some((l, c));
        }
    }
    best.map(|(l, _)| l)
}

/// Aggregate time-ordered packet records into per-destination window cells.
pub fn aggregate(records: &[PacketRecord], cfg: WindowConfig, mode: LabelMode) -> Vec<WindowCell> {
    let mut cells: HashMap<(IpAddr, u64), Acc> = HashMap::new();
    for r in records {
        let w = r.ts_ns / cfg.window_ns;
        cells.entry((r.dst, w)).or_default().absorb(r, mode);
    }
    let mut out: Vec<WindowCell> = cells
        .into_iter()
        .filter(|(_, acc)| acc.pkts as usize >= cfg.min_packets)
        .map(|((dst, window_index), acc)| acc.finish(dst, window_index))
        .collect();
    out.sort_by_key(|c| (c.window_index, c.dst));
    out
}

/// Incremental window aggregator: absorbs records one at a time (in
/// nondecreasing timestamp order) and seals a window's cells as soon as a
/// later window opens. Over any time-ordered record range the concatenated
/// output is byte-identical to a one-shot [`aggregate`] over the same
/// range — the differential test in `tests/streaming_differential.rs` pins
/// that law; DriftPilot relies on it to learn from live taps.
#[derive(Debug, Clone)]
pub struct WindowStream {
    cfg: WindowConfig,
    mode: LabelMode,
    /// Accumulators for windows not yet sealed, in emit order.
    open: BTreeMap<(u64, IpAddr), Acc>,
    /// Windows below this index have been sealed and emitted.
    floor: u64,
}

impl WindowStream {
    /// New empty stream.
    pub fn new(cfg: WindowConfig, mode: LabelMode) -> Self {
        WindowStream { cfg, mode, open: BTreeMap::new(), floor: 0 }
    }

    /// Absorb one record, appending any cells its arrival seals onto `out`.
    ///
    /// Records must arrive in nondecreasing window order (time order is
    /// sufficient) — a record for an already-sealed window is a caller bug.
    pub fn push(&mut self, r: &PacketRecord, out: &mut Vec<WindowCell>) {
        let w = r.ts_ns / self.cfg.window_ns;
        assert!(
            w >= self.floor,
            "record for sealed window {w} (floor {}): feed records in time order",
            self.floor
        );
        if w > self.floor {
            self.seal_below(w, out);
        }
        self.open.entry((w, r.dst)).or_default().absorb(r, self.mode);
    }

    /// Seal every still-open window and append its cells onto `out`.
    pub fn finish(mut self, out: &mut Vec<WindowCell>) {
        self.seal_below(u64::MAX, out);
    }

    /// Number of records currently held in open (unsealed) windows.
    pub fn pending(&self) -> usize {
        self.open.values().map(|a| a.pkts as usize).sum()
    }

    /// Freeze the stream's in-flight state (open accumulators included)
    /// for a checkpoint. Maps flatten to sorted pairs so the frozen image
    /// is byte-deterministic.
    pub fn freeze(&self) -> FrozenWindowStream {
        FrozenWindowStream {
            cfg: self.cfg,
            mode: self.mode,
            open: self
                .open
                .iter()
                .map(|(&(w, dst), acc)| {
                    (
                        (w, dst),
                        FrozenAcc {
                            pkts: acc.pkts,
                            bytes: acc.bytes,
                            srcs: acc.srcs.iter().map(|(&a, &c)| (a, c)).collect(),
                            udp: acc.udp,
                            dns_src: acc.dns_src,
                            syn: acc.syn,
                            inbound: acc.inbound,
                            rst: acc.rst,
                            max_len: acc.max_len,
                            labels: acc.labels.iter().map(|(&l, &c)| (l, c)).collect(),
                        },
                    )
                })
                .collect(),
            floor: self.floor,
        }
    }

    /// Rebuild a stream from a frozen image. The thawed stream continues
    /// byte-identically to one that never stopped.
    pub fn thaw(frozen: FrozenWindowStream) -> Self {
        WindowStream {
            cfg: frozen.cfg,
            mode: frozen.mode,
            open: frozen
                .open
                .into_iter()
                .map(|((w, dst), acc)| {
                    (
                        (w, dst),
                        Acc {
                            pkts: acc.pkts,
                            bytes: acc.bytes,
                            srcs: acc.srcs.into_iter().collect(),
                            udp: acc.udp,
                            dns_src: acc.dns_src,
                            syn: acc.syn,
                            inbound: acc.inbound,
                            rst: acc.rst,
                            max_len: acc.max_len,
                            labels: acc.labels.into_iter().collect(),
                        },
                    )
                })
                .collect(),
            floor: frozen.floor,
        }
    }

    fn seal_below(&mut self, w: u64, out: &mut Vec<WindowCell>) {
        // BTreeMap iteration is (window_index, dst)-ordered — the same
        // order `aggregate` sorts into.
        let rest = self.open.split_off(&(w, ip_min()));
        for ((wi, dst), acc) in std::mem::replace(&mut self.open, rest) {
            if acc.pkts as usize >= self.cfg.min_packets {
                out.push(acc.finish(dst, wi));
            }
        }
        self.floor = w;
    }
}

/// The smallest `IpAddr` under its `Ord` (v4 sorts before v6).
fn ip_min() -> IpAddr {
    IpAddr::from([0u8, 0, 0, 0])
}

/// A [`WindowStream`]'s checkpointable image: one not-yet-sealed
/// accumulator per `(window, dst)` cell, flattened to sorted pairs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenWindowStream {
    pub cfg: WindowConfig,
    pub mode: LabelMode,
    pub open: Vec<((u64, IpAddr), FrozenAcc)>,
    pub floor: u64,
}

/// One frozen per-cell accumulator (maps flattened to sorted pairs).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenAcc {
    pub pkts: u64,
    pub bytes: u64,
    pub srcs: Vec<(IpAddr, u64)>,
    pub udp: u64,
    pub dns_src: u64,
    pub syn: u64,
    pub inbound: u64,
    pub rst: u64,
    pub max_len: u32,
    pub labels: Vec<(usize, u64)>,
}

/// Build a window-level dataset.
pub fn window_dataset(records: &[PacketRecord], cfg: WindowConfig, mode: LabelMode) -> Dataset {
    let cells = aggregate(records, cfg, mode);
    let x: Vec<Vec<f64>> = cells.iter().map(|c| c.features.clone()).collect();
    let y: Vec<usize> = cells.iter().map(|c| c.label).collect();
    let mut d = Dataset::new(x, y, WINDOW_FEATURES.iter().map(|s| s.to_string()).collect());
    d.n_classes = d.n_classes.max(mode.min_classes());
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::TcpFlags;

    fn rec(ts: u64, src: [u8; 4], dst: [u8; 4], proto: u8, sport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from(src),
            dst: IpAddr::from(dst),
            protocol: proto,
            src_port: sport,
            dst_port: 40_000,
            wire_len: 1000,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    #[test]
    fn amplification_window_has_the_signature() {
        // 20 DNS responses from distinct resolvers to one victim + 3
        // benign packets to another host.
        let mut records = Vec::new();
        for i in 0..20u8 {
            records.push(rec(1_000 * u64::from(i), [203, 0, 113, i + 1], [10, 1, 1, 10], 17, 53, 1));
        }
        for i in 0..3u8 {
            records.push(rec(2_000 * u64::from(i), [203, 0, 113, 99], [10, 1, 2, 20], 6, 443, 0));
        }
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells.len(), 2);
        let victim = cells
            .iter()
            .find(|c| c.dst == IpAddr::from([10, 1, 1, 10]))
            .unwrap();
        assert_eq!(victim.label, 1);
        assert_eq!(victim.features[0], 20.0); // pkt_count
        assert_eq!(victim.features[2], 20.0); // distinct srcs
        // 20 uniform sources -> log2(20) bits of source entropy.
        assert!((victim.features[3] - 20f64.log2()).abs() < 1e-9);
        assert_eq!(victim.features[4], 1.0); // udp_frac
        assert_eq!(victim.features[5], 1.0); // dns_src_frac
        let other = cells.iter().find(|c| c.dst == IpAddr::from([10, 1, 2, 20])).unwrap();
        assert_eq!(other.label, 0);
        assert_eq!(other.features[4], 0.0); // udp_frac
        // A single source carries zero entropy.
        assert_eq!(other.features[3], 0.0);
    }

    #[test]
    fn windows_are_tumbling() {
        let records = vec![
            rec(100, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
            rec(200, [1, 1, 1, 2], [10, 0, 0, 1], 17, 53, 0),
            rec(300, [1, 1, 1, 3], [10, 0, 0, 1], 17, 53, 0),
            // Next window.
            rec(1_000_000_100, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
            rec(1_000_000_200, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
            rec(1_000_000_300, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
        ];
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].window_index, 0);
        assert_eq!(cells[1].window_index, 1);
        assert_eq!(cells[0].features[2], 3.0);
        assert_eq!(cells[1].features[2], 1.0);
    }

    #[test]
    fn minority_attack_label_dominates_when_substantial() {
        // 6 benign + 4 attack packets in one cell: attack is 40% >= 25%.
        let mut records = Vec::new();
        for i in 0..6u64 {
            records.push(rec(i, [1, 1, 1, 1], [10, 0, 0, 1], 6, 443, 0));
        }
        for i in 6..10u64 {
            records.push(rec(i, [2, 2, 2, 2], [10, 0, 0, 1], 17, 53, 1));
        }
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells[0].label, 1);
    }

    #[test]
    fn small_cells_are_dropped() {
        let records = vec![rec(0, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0)];
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert!(cells.is_empty());
    }

    #[test]
    fn stream_matches_batch_on_time_ordered_records() {
        let mut records = Vec::new();
        for i in 0..20u8 {
            records.push(rec(
                40_000_000 * u64::from(i),
                [203, 0, 113, i % 5 + 1],
                [10, 1, 1, 10],
                17,
                53,
                1,
            ));
        }
        for i in 0..9u8 {
            records.push(rec(
                900_000_000 + 30_000_000 * u64::from(i),
                [198, 51, 100, i + 1],
                [10, 1, 2, 20],
                6,
                443,
                0,
            ));
        }
        records.sort_by_key(|r| r.ts_ns);
        let batch = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        let mut streamed = Vec::new();
        let mut stream = WindowStream::new(WindowConfig::default(), LabelMode::BinaryAttack);
        for r in &records {
            stream.push(r, &mut streamed);
        }
        stream.finish(&mut streamed);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn stream_seals_windows_as_later_ones_open() {
        let cfg = WindowConfig::default();
        let mut stream = WindowStream::new(cfg, LabelMode::BinaryAttack);
        let mut out = Vec::new();
        for i in 0..5u64 {
            stream.push(&rec(i * 1_000, [1, 1, 1, i as u8], [10, 0, 0, 1], 17, 53, 0), &mut out);
        }
        assert!(out.is_empty(), "window 0 still open");
        assert_eq!(stream.pending(), 5);
        // First record of window 2 seals windows 0 and 1 (1 is empty).
        stream.push(&rec(2_000_000_100, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window_index, 0);
        assert_eq!(out[0].packets, 5);
        assert_eq!(stream.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "sealed window")]
    fn stream_rejects_records_for_sealed_windows() {
        let mut stream = WindowStream::new(WindowConfig::default(), LabelMode::BinaryAttack);
        let mut out = Vec::new();
        stream.push(&rec(3_000_000_000, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0), &mut out);
        stream.push(&rec(100, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0), &mut out);
    }

    #[test]
    fn frozen_stream_resumes_byte_identically() {
        // Freeze mid-window, round-trip through JSON, thaw, and finish:
        // the cells must match a stream that never stopped.
        let cfg = WindowConfig::default();
        let mut records = Vec::new();
        for i in 0..30u64 {
            records.push(rec(
                i * 90_000_000,
                [1, 1, 1, (i % 7) as u8],
                [10, 0, 0, (i % 2) as u8],
                if i % 3 == 0 { 6 } else { 17 },
                53,
                (i % 2) as u16,
            ));
        }
        let cut = 17;
        let mut uninterrupted = Vec::new();
        let mut s1 = WindowStream::new(cfg, LabelMode::BinaryAttack);
        for r in &records {
            s1.push(r, &mut uninterrupted);
        }
        s1.finish(&mut uninterrupted);

        let mut resumed = Vec::new();
        let mut s2 = WindowStream::new(cfg, LabelMode::BinaryAttack);
        for r in &records[..cut] {
            s2.push(r, &mut resumed);
        }
        let json = serde_json::to_string(&s2.freeze()).unwrap();
        let frozen: FrozenWindowStream = serde_json::from_str(&json).unwrap();
        let mut s3 = WindowStream::thaw(frozen);
        assert_eq!(s3.pending(), s2.pending());
        for r in &records[cut..] {
            s3.push(r, &mut resumed);
        }
        s3.finish(&mut resumed);
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn label_ties_break_toward_the_smallest_id() {
        // Two nonzero labels with equal counts: the cell label must be the
        // smaller id, by rule, regardless of accumulation order.
        let mut records = Vec::new();
        for i in 0..3u64 {
            records.push(rec(i, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 2));
        }
        for i in 3..6u64 {
            records.push(rec(i, [2, 2, 2, 2], [10, 0, 0, 1], 17, 53, 1));
        }
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells.len(), 1);
        // BinaryAttack maps both to 1, so exercise the multi-class mode too.
        let multi = aggregate(&records, WindowConfig::default(), LabelMode::AttackKind);
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].label, 1);
    }

    #[test]
    fn dataset_shape() {
        let mut records = Vec::new();
        for i in 0..10u64 {
            records.push(rec(i * 100, [1, 1, 1, (i % 3) as u8], [10, 0, 0, 1], 17, 53, 0));
        }
        let d = window_dataset(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(d.len(), 1);
        assert_eq!(d.n_features(), WINDOW_FEATURES.len());
        assert_eq!(d.n_classes, 2);
    }
}
