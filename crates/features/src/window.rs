//! Time-window aggregates per destination host — the control-plane /
//! cloud feature set: richer context than any single packet, at the cost
//! of waiting for the window to fill (the latency/accuracy trade of
//! experiment E8).

use crate::label::LabelMode;
use campuslab_capture::{Direction, PacketRecord};
use campuslab_ml::Dataset;
use std::collections::HashMap;
use std::net::IpAddr;


/// Column names, in order.
pub const WINDOW_FEATURES: [&str; 11] = [
    "pkt_count",
    "byte_count",
    "distinct_srcs",
    "src_entropy",
    "udp_frac",
    "dns_src_frac",
    "syn_frac",
    "inbound_frac",
    "mean_pkt_len",
    "max_pkt_len",
    "rst_frac",
];

/// Windowing parameters.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Tumbling window length.
    pub window_ns: u64,
    /// Ignore (dst, window) cells with fewer packets than this — tiny
    /// cells carry more noise than signal.
    pub min_packets: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { window_ns: 1_000_000_000, min_packets: 3 }
    }
}

/// One aggregated cell: traffic toward `dst` during window `index`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCell {
    pub dst: IpAddr,
    pub window_index: u64,
    pub features: Vec<f64>,
    /// Majority label over member packets under the given mode.
    pub label: usize,
    pub packets: usize,
}

/// Aggregate time-ordered packet records into per-destination window cells.
pub fn aggregate(records: &[PacketRecord], cfg: WindowConfig, mode: LabelMode) -> Vec<WindowCell> {
    #[derive(Default)]
    struct Acc {
        pkts: u64,
        bytes: u64,
        srcs: HashMap<IpAddr, u64>,
        udp: u64,
        dns_src: u64,
        syn: u64,
        inbound: u64,
        rst: u64,
        max_len: u32,
        labels: HashMap<usize, u64>,
    }
    let mut cells: HashMap<(IpAddr, u64), Acc> = HashMap::new();
    for r in records {
        let w = r.ts_ns / cfg.window_ns;
        let acc = cells.entry((r.dst, w)).or_default();
        acc.pkts += 1;
        acc.bytes += u64::from(r.wire_len);
        *acc.srcs.entry(r.src).or_insert(0) += 1;
        acc.udp += u64::from(r.protocol == 17);
        acc.dns_src += u64::from(r.src_port == 53);
        acc.syn += u64::from(r.tcp_flags.syn && !r.tcp_flags.ack);
        acc.rst += u64::from(r.tcp_flags.rst);
        acc.inbound += u64::from(r.direction == Direction::Inbound);
        acc.max_len = acc.max_len.max(r.wire_len);
        *acc.labels.entry(mode.label_packet(r)).or_insert(0) += 1;
    }
    let mut out: Vec<WindowCell> = cells
        .into_iter()
        .filter(|(_, acc)| acc.pkts as usize >= cfg.min_packets)
        .map(|((dst, window_index), acc)| {
            let n = acc.pkts as f64;
            // Attacks should dominate labeling even when mixed with benign
            // chatter: prefer the highest-count *nonzero* label when it
            // holds at least 25% of the window.
            let mut label = *acc
                .labels
                .iter()
                .max_by_key(|(_, &c)| c)
                .map(|(l, _)| l)
                .expect("non-empty cell");
            if label == 0 {
                if let Some((&alt, &count)) = acc
                    .labels
                    .iter()
                    .filter(|(&l, _)| l != 0)
                    .max_by_key(|(_, &c)| c)
                {
                    if count as f64 >= n * 0.25 {
                        label = alt;
                    }
                }
            }
            // Shannon entropy of the source distribution, in bits: a
            // reflection flood spreads mass across many reflectors where a
            // normal conversation concentrates on a handful of peers.
            let src_entropy: f64 = acc
                .srcs
                .values()
                .map(|&c| {
                    let p = c as f64 / n;
                    -p * p.log2()
                })
                .sum();
            WindowCell {
                dst,
                window_index,
                features: vec![
                    n,
                    acc.bytes as f64,
                    acc.srcs.len() as f64,
                    src_entropy,
                    acc.udp as f64 / n,
                    acc.dns_src as f64 / n,
                    acc.syn as f64 / n,
                    acc.inbound as f64 / n,
                    acc.bytes as f64 / n,
                    f64::from(acc.max_len),
                    acc.rst as f64 / n,
                ],
                label,
                packets: acc.pkts as usize,
            }
        })
        .collect();
    out.sort_by_key(|c| (c.window_index, c.dst));
    out
}

/// Build a window-level dataset.
pub fn window_dataset(records: &[PacketRecord], cfg: WindowConfig, mode: LabelMode) -> Dataset {
    let cells = aggregate(records, cfg, mode);
    let x: Vec<Vec<f64>> = cells.iter().map(|c| c.features.clone()).collect();
    let y: Vec<usize> = cells.iter().map(|c| c.label).collect();
    let mut d = Dataset::new(x, y, WINDOW_FEATURES.iter().map(|s| s.to_string()).collect());
    d.n_classes = d.n_classes.max(mode.min_classes());
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::TcpFlags;

    fn rec(ts: u64, src: [u8; 4], dst: [u8; 4], proto: u8, sport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from(src),
            dst: IpAddr::from(dst),
            protocol: proto,
            src_port: sport,
            dst_port: 40_000,
            wire_len: 1000,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    #[test]
    fn amplification_window_has_the_signature() {
        // 20 DNS responses from distinct resolvers to one victim + 3
        // benign packets to another host.
        let mut records = Vec::new();
        for i in 0..20u8 {
            records.push(rec(1_000 * u64::from(i), [203, 0, 113, i + 1], [10, 1, 1, 10], 17, 53, 1));
        }
        for i in 0..3u8 {
            records.push(rec(2_000 * u64::from(i), [203, 0, 113, 99], [10, 1, 2, 20], 6, 443, 0));
        }
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells.len(), 2);
        let victim = cells
            .iter()
            .find(|c| c.dst == IpAddr::from([10, 1, 1, 10]))
            .unwrap();
        assert_eq!(victim.label, 1);
        assert_eq!(victim.features[0], 20.0); // pkt_count
        assert_eq!(victim.features[2], 20.0); // distinct srcs
        // 20 uniform sources -> log2(20) bits of source entropy.
        assert!((victim.features[3] - 20f64.log2()).abs() < 1e-9);
        assert_eq!(victim.features[4], 1.0); // udp_frac
        assert_eq!(victim.features[5], 1.0); // dns_src_frac
        let other = cells.iter().find(|c| c.dst == IpAddr::from([10, 1, 2, 20])).unwrap();
        assert_eq!(other.label, 0);
        assert_eq!(other.features[4], 0.0); // udp_frac
        // A single source carries zero entropy.
        assert_eq!(other.features[3], 0.0);
    }

    #[test]
    fn windows_are_tumbling() {
        let records = vec![
            rec(100, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
            rec(200, [1, 1, 1, 2], [10, 0, 0, 1], 17, 53, 0),
            rec(300, [1, 1, 1, 3], [10, 0, 0, 1], 17, 53, 0),
            // Next window.
            rec(1_000_000_100, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
            rec(1_000_000_200, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
            rec(1_000_000_300, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0),
        ];
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].window_index, 0);
        assert_eq!(cells[1].window_index, 1);
        assert_eq!(cells[0].features[2], 3.0);
        assert_eq!(cells[1].features[2], 1.0);
    }

    #[test]
    fn minority_attack_label_dominates_when_substantial() {
        // 6 benign + 4 attack packets in one cell: attack is 40% >= 25%.
        let mut records = Vec::new();
        for i in 0..6u64 {
            records.push(rec(i, [1, 1, 1, 1], [10, 0, 0, 1], 6, 443, 0));
        }
        for i in 6..10u64 {
            records.push(rec(i, [2, 2, 2, 2], [10, 0, 0, 1], 17, 53, 1));
        }
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(cells[0].label, 1);
    }

    #[test]
    fn small_cells_are_dropped() {
        let records = vec![rec(0, [1, 1, 1, 1], [10, 0, 0, 1], 17, 53, 0)];
        let cells = aggregate(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert!(cells.is_empty());
    }

    #[test]
    fn dataset_shape() {
        let mut records = Vec::new();
        for i in 0..10u64 {
            records.push(rec(i * 100, [1, 1, 1, (i % 3) as u8], [10, 0, 0, 1], 17, 53, 0));
        }
        let d = window_dataset(&records, WindowConfig::default(), LabelMode::BinaryAttack);
        assert_eq!(d.len(), 1);
        assert_eq!(d.n_features(), WINDOW_FEATURES.len());
        assert_eq!(d.n_classes, 2);
    }
}
