//! Label extraction policies shared by the feature builders.

use campuslab_capture::{FlowRecord, PacketRecord};

/// How records map to class labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LabelMode {
    /// 0 = benign, 1 = any attack.
    BinaryAttack,
    /// 0 = benign, k = attack kind id (1..=5).
    AttackKind,
    /// Application class id (0 = unlabeled).
    AppClass,
}

impl LabelMode {
    /// Label for a packet record.
    pub fn label_packet(self, rec: &PacketRecord) -> usize {
        match self {
            LabelMode::BinaryAttack => usize::from(rec.label_attack != 0),
            LabelMode::AttackKind => usize::from(rec.label_attack),
            LabelMode::AppClass => usize::from(rec.label_app),
        }
    }

    /// Label for a flow record.
    pub fn label_flow(self, f: &FlowRecord) -> usize {
        match self {
            LabelMode::BinaryAttack => usize::from(f.label_attack != 0),
            LabelMode::AttackKind => usize::from(f.label_attack),
            LabelMode::AppClass => usize::from(f.label_app),
        }
    }

    /// Lower bound on the class count (so datasets with one class present
    /// still declare the full label space).
    pub fn min_classes(self) -> usize {
        match self {
            LabelMode::BinaryAttack => 2,
            LabelMode::AttackKind => 6,
            LabelMode::AppClass => 9,
        }
    }

    /// Human-readable class name.
    pub fn class_name(self, class: usize) -> String {
        match self {
            LabelMode::BinaryAttack => ["benign", "attack"]
                .get(class)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("class-{class}")),
            LabelMode::AttackKind => match class {
                0 => "benign".to_string(),
                1 => "dns-amplification".to_string(),
                2 => "syn-flood".to_string(),
                3 => "port-scan".to_string(),
                4 => "ssh-brute-force".to_string(),
                5 => "exfiltration".to_string(),
                6 => "nxdomain-flood".to_string(),
                other => format!("attack-{other}"),
            },
            LabelMode::AppClass => match class {
                0 => "unlabeled".to_string(),
                1 => "dns".to_string(),
                2 => "web".to_string(),
                3 => "video".to_string(),
                4 => "ssh".to_string(),
                5 => "mail".to_string(),
                6 => "backup".to_string(),
                7 => "ntp".to_string(),
                8 => "icmp".to_string(),
                other => format!("app-{other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};
    use std::net::IpAddr;

    fn rec(app: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: 0,
            direction: Direction::Inbound,
            src: IpAddr::from([1, 1, 1, 1]),
            dst: IpAddr::from([2, 2, 2, 2]),
            protocol: 6,
            src_port: 1,
            dst_port: 2,
            wire_len: 60,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: app,
            label_attack: attack,
        }
    }

    #[test]
    fn binary_labels() {
        assert_eq!(LabelMode::BinaryAttack.label_packet(&rec(2, 0)), 0);
        assert_eq!(LabelMode::BinaryAttack.label_packet(&rec(2, 3)), 1);
    }

    #[test]
    fn multiclass_labels() {
        assert_eq!(LabelMode::AttackKind.label_packet(&rec(0, 4)), 4);
        assert_eq!(LabelMode::AppClass.label_packet(&rec(7, 0)), 7);
    }

    #[test]
    fn class_names() {
        assert_eq!(LabelMode::BinaryAttack.class_name(1), "attack");
        assert_eq!(LabelMode::AttackKind.class_name(1), "dns-amplification");
        assert_eq!(LabelMode::AppClass.class_name(2), "web");
        assert_eq!(LabelMode::AttackKind.class_name(9), "attack-9");
    }

    #[test]
    fn min_classes_cover_label_space() {
        assert_eq!(LabelMode::BinaryAttack.min_classes(), 2);
        assert_eq!(LabelMode::AttackKind.min_classes(), 6);
        assert_eq!(LabelMode::AppClass.min_classes(), 9);
    }
}
