//! Segment-chain invariants under randomized ingest and retention:
//! capacity bounds, count conservation, time-bound bookkeeping, the
//! `(ts_ns, seq)` tie-break, and retention's truncate-don't-compact
//! semantics.

use campuslab_capture::{Direction, PacketRecord, TcpFlags};
use campuslab_datastore::{DataStore, PacketQuery, SEGMENT_CAPACITY};
use proptest::prelude::*;
use proptest::{collection, proptest, ProptestConfig};
use std::net::IpAddr;

fn packet(ts: u64, tag: u16) -> PacketRecord {
    PacketRecord {
        ts_ns: ts,
        direction: Direction::Inbound,
        src: IpAddr::from([10, 0, (tag >> 8) as u8, (tag & 0xFF) as u8]),
        dst: IpAddr::from([203, 0, 113, 1]),
        protocol: 17,
        src_port: tag,
        dst_port: 443,
        wire_len: 100,
        ttl: 64,
        tcp_flags: TcpFlags::default(),
        flow_id: u64::from(tag),
        label_app: 1,
        label_attack: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn segment_invariants_hold_after_random_ingest(
        batch_sizes in collection::vec(0usize..900, 1..=8),
        ts_base in collection::vec(0u64..100_000, 8),
    ) {
        let mut ds = DataStore::new();
        let mut total = 0usize;
        let mut tag = 0u16;
        for (bi, &sz) in batch_sizes.iter().enumerate() {
            let base = ts_base[bi % ts_base.len()];
            let batch: Vec<PacketRecord> = (0..sz)
                .map(|i| {
                    tag = tag.wrapping_add(1);
                    packet(base + (i as u64 % 97) * 5, tag)
                })
                .collect();
            total += batch.len();
            ds.ingest_packets(batch);
        }
        // Count conservation across the chain.
        prop_assert_eq!(ds.packet_count(), total);
        let stats = ds.packet_segment_stats();
        prop_assert_eq!(stats.iter().map(|s| s.records).sum::<usize>(), total);
        for s in &stats {
            prop_assert!(s.records > 0, "empty segment in chain");
            prop_assert!(s.records <= SEGMENT_CAPACITY, "segment over capacity: {}", s.records);
            prop_assert!(s.min_ts_ns <= s.max_ts_ns);
        }
        // Segment bounds are honest: every record the iterator yields in
        // some segment's position falls inside the advertised global span.
        if total > 0 {
            let lo = stats.iter().map(|s| s.min_ts_ns).min().unwrap();
            let hi = stats.iter().map(|s| s.max_ts_ns).max().unwrap();
            let mut n = 0usize;
            for r in ds.iter_packets() {
                prop_assert!(r.ts_ns >= lo && r.ts_ns <= hi);
                n += 1;
            }
            prop_assert_eq!(n, total);
        }
        // Global iteration order is non-decreasing in (ts, seq).
        let mut prev: Option<(u64, u64)> = None;
        for (seq, r) in ds.iter_packets_seq() {
            let key = (r.ts_ns, seq);
            if let Some(p) = prev {
                prop_assert!(p < key, "order violated: {:?} then {:?}", p, key);
            }
            prev = Some(key);
        }
    }

    #[test]
    fn retention_is_exact_and_order_preserving(
        n in 0usize..3_000,
        spread in 1u64..50,
        cut_frac in 0u64..120,
    ) {
        let mut ds = DataStore::new();
        let batch: Vec<PacketRecord> =
            (0..n).map(|i| packet(i as u64 * spread, i as u16)).collect();
        ds.ingest_packets(batch.clone());
        let cutoff = n as u64 * spread * cut_frac / 100;
        let expect: Vec<u16> =
            batch.iter().filter(|r| r.ts_ns >= cutoff).map(|r| r.src_port).collect();
        ds.retain_since(cutoff);
        let got: Vec<u16> = ds.iter_packets().map(|r| r.src_port).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(ds.obs.retired_records(), (n - ds.packet_count()) as u64);
        // Post-retention invariants: no segment leaks pre-cutoff records.
        for s in ds.packet_segment_stats() {
            prop_assert!(s.min_ts_ns >= cutoff);
        }
        // Queries still agree with scans on the truncated chain.
        let q = PacketQuery::in_window(cutoff, cutoff + 10_000 * spread);
        let a: Vec<u64> = ds.query_packets(&q).iter().map(|r| r.ts_ns).collect();
        let b: Vec<u64> = ds.scan_packets(&q).iter().map(|r| r.ts_ns).collect();
        prop_assert_eq!(a, b);
    }
}

/// The ordering contract on ties, stated as a plain test: records with
/// equal timestamps come back in capture (ingest) order — across batch
/// boundaries, through segment merges, and after retention.
#[test]
fn equal_timestamps_keep_capture_order() {
    let mut ds = DataStore::new();
    // Batch 1: three records at t=100 in capture order 1,2,3, plus one
    // later record so batch 2 lands out of order (its own segment).
    ds.ingest_packets(vec![packet(100, 1), packet(100, 2), packet(100, 3), packet(900, 4)]);
    // Batch 2: two more records at t=100 — captured later, so they must
    // sort after batch 1's ties even though they live in another segment.
    ds.ingest_packets(vec![packet(100, 5), packet(100, 6)]);
    let order: Vec<u16> = ds.iter_packets().map(|r| r.src_port).collect();
    assert_eq!(order, vec![1, 2, 3, 5, 6, 4]);
    // The same order comes out of the query paths.
    let q = PacketQuery::in_window(100, 101);
    let via_query: Vec<u16> = ds.query_packets(&q).iter().map(|r| r.src_port).collect();
    let via_scan: Vec<u16> = ds.scan_packets(&q).iter().map(|r| r.src_port).collect();
    assert_eq!(via_query, vec![1, 2, 3, 5, 6]);
    assert_eq!(via_query, via_scan);
    // And survives retention (drop nothing at cutoff 100).
    ds.retain_since(100);
    let after: Vec<u16> = ds.iter_packets().map(|r| r.src_port).collect();
    assert_eq!(after, vec![1, 2, 3, 5, 6, 4]);
}

/// An unsorted batch is sorted by timestamp, but its equal-timestamp runs
/// keep within-batch order (the stable `(ts, seq)` sort).
#[test]
fn unsorted_batch_ties_stay_stable() {
    let mut ds = DataStore::new();
    ds.ingest_packets(vec![
        packet(500, 1),
        packet(200, 2),
        packet(500, 3),
        packet(200, 4),
        packet(500, 5),
    ]);
    let order: Vec<u16> = ds.iter_packets().map(|r| r.src_port).collect();
    assert_eq!(order, vec![2, 4, 1, 3, 5]);
}
