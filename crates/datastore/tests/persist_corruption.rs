//! Persistence under hostile bytes: a snapshot that was truncated or
//! bit-flipped on disk must come back as `Ok` (the damage missed every
//! invariant) or a typed `PersistError` — never a panic. The load path is
//! the one place untrusted disk bytes enter the process.

use campuslab_capture::{Direction, FlowKey, FlowRecord, PacketRecord, SensorRecord, TcpFlags};
use campuslab_datastore::{load, save, DataStore};
use proptest::prelude::*;
use proptest::{proptest, ProptestConfig};
use std::net::IpAddr;

fn packet(ts: u64, tag: u16) -> PacketRecord {
    PacketRecord {
        ts_ns: ts,
        direction: Direction::Inbound,
        src: IpAddr::from([10, 1, (tag >> 8) as u8, (tag & 0xFF) as u8]),
        dst: IpAddr::from([203, 0, 113, 1]),
        protocol: 17,
        src_port: 53,
        dst_port: 40_000,
        wire_len: 100 + u32::from(tag % 500),
        ttl: 60,
        tcp_flags: TcpFlags::default(),
        flow_id: u64::from(tag),
        label_app: 1,
        label_attack: u16::from(tag.is_multiple_of(9)),
    }
}

fn flow(first: u64, tag: u16) -> FlowRecord {
    FlowRecord {
        key: FlowKey {
            src: IpAddr::from([10, 1, 1, (tag % 250) as u8]),
            dst: IpAddr::from([203, 0, 113, 1]),
            protocol: 17,
            src_port: tag,
            dst_port: 40_000,
        },
        first_ts_ns: first,
        last_ts_ns: first + 5_000,
        fwd_packets: 3,
        fwd_bytes: 300,
        rev_packets: 1,
        rev_bytes: 80,
        syn_count: 0,
        fin_count: 0,
        rst_count: 0,
        mean_iat_ns: 10,
        min_len: 60,
        max_len: 100,
        label_app: 1,
        label_attack: 0,
    }
}

/// A snapshot with every record type populated, so corruption can land in
/// any section of the document.
fn snapshot_bytes(n: u64) -> Vec<u8> {
    let mut ds = DataStore::new();
    ds.ingest_packets((0..n).map(|i| packet(i * 1_000, i as u16)).collect());
    ds.ingest_flows((0..n / 4).map(|i| flow(i * 2_000, i as u16)).collect());
    ds.ingest_sensors(vec![SensorRecord::ConfigChange {
        ts_ns: 5,
        device: "border".into(),
        summary: "acl change".into(),
    }]);
    let mut buf = Vec::new();
    save(&ds, &mut buf).expect("serializing a valid store");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn truncated_snapshots_error_instead_of_panicking(
        n in 1u64..60,
        cut_permille in 0u64..1000,
    ) {
        let buf = snapshot_bytes(n);
        let cut = (buf.len() as u64 * cut_permille / 1000) as usize;
        // Any strict prefix of the document is unparseable: the top-level
        // object never closes. The contract is a typed error, not where
        // exactly serde gives up.
        let result = load(&buf[..cut]);
        prop_assert!(result.is_err(), "a strict prefix ({cut}/{} bytes) must not load", buf.len());
    }

    #[test]
    fn bit_flipped_snapshots_never_panic(
        n in 1u64..60,
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let mut buf = snapshot_bytes(n);
        let pos = ((buf.len() as u64 - 1) * pos_permille / 1000) as usize;
        buf[pos] ^= 1 << bit;
        match load(&buf[..]) {
            // The flip missed every invariant (e.g. landed in a port
            // number): the store must still be fully usable.
            Ok(ds) => {
                let _ = ds.packet_count();
                let _ = ds.packet_segment_stats();
            }
            // Or it surfaced as one of the typed corruption errors. Both
            // are fine; a panic fails this test.
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    #[test]
    fn multi_flip_corruption_is_contained(
        n in 1u64..40,
        flips in proptest::collection::vec((0u64..1000, 0u32..8), 1..6),
    ) {
        let mut buf = snapshot_bytes(n);
        for (pos_permille, bit) in flips {
            let pos = ((buf.len() as u64 - 1) * pos_permille / 1000) as usize;
            buf[pos] ^= 1 << bit;
        }
        if let Ok(ds) = load(&buf[..]) {
            let _ = ds.packet_count();
        }
    }
}
