//! Differential proptests: on randomized stores and randomized queries,
//! the indexed planner must return exactly what the full scan returns —
//! same records, same order (`(ts_ns, seq)` global order). The scan is
//! deliberately naive; any disagreement is a planner bug by definition.

use campuslab_capture::{Direction, FlowKey, FlowRecord, PacketRecord, TcpFlags};
use campuslab_datastore::{DataStore, FlowQuery, PacketQuery};
use proptest::prelude::*;
use proptest::{collection, proptest, ProptestConfig};
use std::net::IpAddr;

/// Record spec: (ts, src-octet, dst-octet, port-index, attack).
type PacketSpec = (u64, u8, u8, u8, bool);

fn packet(spec: PacketSpec) -> PacketRecord {
    let (ts, src, dst, port, attack) = spec;
    PacketRecord {
        ts_ns: ts,
        direction: if dst % 2 == 0 { Direction::Inbound } else { Direction::Outbound },
        src: IpAddr::from([10, 0, 0, src]),
        dst: IpAddr::from([203, 0, 113, dst]),
        protocol: if port % 2 == 0 { 17 } else { 6 },
        src_port: 40_000,
        dst_port: u16::from(port) + 440,
        wire_len: 60 + u32::from(src) * 10,
        ttl: 64,
        tcp_flags: TcpFlags::default(),
        flow_id: u64::from(src),
        label_app: 1,
        label_attack: u16::from(attack),
    }
}

/// Split specs into up to three ingest batches so stores exercise both
/// the open-segment append and the out-of-order-batch paths.
fn store_from(specs: &[PacketSpec], splits: (usize, usize)) -> DataStore {
    let mut ds = DataStore::new();
    let a = splits.0 % (specs.len() + 1);
    let b = a + splits.1 % (specs.len() - a + 1);
    for chunk in [&specs[..a], &specs[a..b], &specs[b..]] {
        ds.ingest_packets(chunk.iter().copied().map(packet).collect());
    }
    ds
}

fn queries(host: u8, port: u8, wstart: u64, wlen: u64, limit: usize) -> Vec<PacketQuery> {
    let host: IpAddr = IpAddr::from([10, 0, 0, host]);
    let window = wstart..wstart.saturating_add(wlen);
    vec![
        PacketQuery::for_host(host),
        PacketQuery::for_host(host).window(window.start, window.end),
        PacketQuery::default().port(u16::from(port) + 440),
        PacketQuery::default().port(u16::from(port) + 440).window(window.start, window.end),
        PacketQuery::default().malicious(),
        PacketQuery::default().malicious().window(window.start, window.end),
        PacketQuery::in_window(window.start, window.end),
        // Inverted window: must be empty on both paths, never a panic.
        PacketQuery::in_window(window.end, window.start),
        PacketQuery { limit: Some(limit), ..PacketQuery::for_host(host) },
        PacketQuery { limit: Some(limit), ..PacketQuery::in_window(window.start, window.end) },
    ]
}

/// Key the comparison on full records plus position-independent identity:
/// ts plus every field the spec varies.
fn keys(recs: &[&PacketRecord]) -> Vec<(u64, IpAddr, IpAddr, u16, u16)> {
    recs.iter().map(|r| (r.ts_ns, r.src, r.dst, r.dst_port, r.label_attack)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn packet_query_equals_scan(
        specs in collection::vec((0u64..40_000, 0u8..6, 0u8..5, 0u8..5, any::<bool>()), 0..=250),
        splits in (0usize..260, 0usize..260),
        qhost in 0u8..6,
        qport in 0u8..5,
        wstart in 0u64..40_000,
        wlen in 0u64..25_000,
        limit in 0usize..30,
    ) {
        let ds = store_from(&specs, splits);
        for q in queries(qhost, qport, wstart, wlen, limit) {
            let indexed = ds.query_packets(&q);
            let scanned = ds.scan_packets(&q);
            prop_assert_eq!(keys(&indexed), keys(&scanned), "mismatch for {:?}", q);
            let (_, istats) = ds.query_packets_with_stats(&q);
            let (_, sstats) = ds.scan_packets_with_stats(&q);
            prop_assert_eq!(istats.hits, indexed.len());
            prop_assert_eq!(sstats.hits, scanned.len());
            // The planner never does more work than the scan it replaces
            // (the scan stops early at `limit`, so only compare unlimited).
            if q.limit.is_none() {
                prop_assert!(istats.records_examined <= sstats.records_examined,
                    "indexed examined {} > scan {} for {:?}",
                    istats.records_examined, sstats.records_examined, q);
            }
        }
    }

    #[test]
    fn flow_query_equals_scan(
        specs in collection::vec((0u64..30_000, 0u64..5_000, 0u8..5, 0u8..4, any::<bool>()), 0..=120),
        qhost in 0u8..5,
        qport in 0u8..4,
        wstart in 0u64..30_000,
        wlen in 0u64..20_000,
        limit in 0usize..20,
    ) {
        let mut ds = DataStore::new();
        let flows: Vec<FlowRecord> = specs
            .iter()
            .map(|&(first, span, host, port, attack)| FlowRecord {
                key: FlowKey {
                    src: IpAddr::from([10, 0, 0, host]),
                    dst: IpAddr::from([203, 0, 113, 1]),
                    protocol: 6,
                    src_port: 40_000,
                    dst_port: u16::from(port) + 440,
                },
                first_ts_ns: first,
                last_ts_ns: first + span,
                fwd_packets: 2,
                fwd_bytes: 200 + u64::from(host) * 100,
                rev_packets: 1,
                rev_bytes: 100,
                syn_count: 1,
                fin_count: 1,
                rst_count: 0,
                mean_iat_ns: 10,
                min_len: 60,
                max_len: 1500,
                label_app: 1,
                label_attack: u16::from(attack),
            })
            .collect();
        // Two batches to exercise out-of-order chains.
        let mid = flows.len() / 2;
        ds.ingest_flows(flows[mid..].to_vec());
        ds.ingest_flows(flows[..mid].to_vec());
        let window = wstart..wstart.saturating_add(wlen);
        let shapes = vec![
            FlowQuery { host: Some(IpAddr::from([10, 0, 0, qhost])), ..Default::default() },
            FlowQuery { time_ns: Some(window.clone()), ..Default::default() },
            FlowQuery {
                time_ns: Some(window.clone()),
                port: Some(u16::from(qport) + 440),
                ..Default::default()
            },
            FlowQuery { malicious_only: true, time_ns: Some(window.clone()), ..Default::default() },
            FlowQuery { min_bytes: Some(400), ..Default::default() },
            // Inverted window.
            FlowQuery { time_ns: Some(window.end..window.start), ..Default::default() },
            FlowQuery { limit: Some(limit), time_ns: Some(window), ..Default::default() },
        ];
        for q in shapes {
            let pruned: Vec<(u64, u64, u16)> = ds
                .query_flows(&q)
                .iter()
                .map(|f| (f.first_ts_ns, f.last_ts_ns, f.key.dst_port))
                .collect();
            let scanned: Vec<(u64, u64, u16)> = ds
                .scan_flows(&q)
                .iter()
                .map(|f| (f.first_ts_ns, f.last_ts_ns, f.key.dst_port))
                .collect();
            prop_assert_eq!(pruned, scanned, "mismatch for {:?}", q);
        }
    }
}
