//! Determinism gate for parallel batch ingest, mirroring netsim's
//! `fastpath.rs` contract: worker count changes wall-clock time only.
//! Sequential (1 worker) and parallel (4, 7 workers) batch ingest must
//! produce byte-identical stores — same `StorageReport`, same segment
//! layout, same query results, same Observatory render.

use campuslab_capture::{Direction, PacketRecord, TcpFlags};
use campuslab_datastore::{DataStore, PacketQuery};
use proptest::{collection, proptest, ProptestConfig};
use std::net::IpAddr;

fn packet(ts: u64, tag: u32) -> PacketRecord {
    PacketRecord {
        ts_ns: ts,
        direction: if tag.is_multiple_of(2) { Direction::Inbound } else { Direction::Outbound },
        src: IpAddr::from([10, (tag >> 16) as u8, (tag >> 8) as u8, tag as u8]),
        dst: IpAddr::from([203, 0, 113, (tag % 20) as u8]),
        protocol: if tag.is_multiple_of(3) { 17 } else { 6 },
        src_port: (tag % 60_000) as u16,
        dst_port: [443, 80, 53][(tag % 3) as usize],
        wire_len: 60 + tag % 1200,
        ttl: 64,
        tcp_flags: TcpFlags::default(),
        flow_id: u64::from(tag) / 16,
        label_app: (tag % 5) as u16,
        label_attack: u16::from(tag.is_multiple_of(33)),
    }
}

fn build(batches: &[Vec<PacketRecord>], workers: usize) -> DataStore {
    let mut ds = DataStore::new();
    ds.ingest_packet_batches_with(batches.to_vec(), workers);
    ds
}

fn assert_identical(a: &DataStore, b: &DataStore, label: &str) {
    assert_eq!(a.storage(), b.storage(), "{label}: StorageReport differs");
    assert_eq!(
        a.packet_segment_stats(),
        b.packet_segment_stats(),
        "{label}: segment layout differs"
    );
    assert!(a.iter_packets().eq(b.iter_packets()), "{label}: record streams differ");
    assert_eq!(a.obs.render(), b.obs.render(), "{label}: Observatory renders differ");
    for q in [
        PacketQuery::for_host("10.0.1.7".parse().unwrap()),
        PacketQuery::default().port(53),
        PacketQuery::default().malicious(),
        PacketQuery::in_window(40_000, 900_000),
    ] {
        let ra: Vec<&PacketRecord> = a.query_packets(&q);
        let rb: Vec<&PacketRecord> = b.query_packets(&q);
        assert_eq!(ra, rb, "{label}: query results differ for {q:?}");
        let (_, sa) = a.query_packets_with_stats(&q);
        let (_, sb) = b.query_packets_with_stats(&q);
        assert_eq!(sa, sb, "{label}: query stats differ for {q:?}");
    }
}

#[test]
fn parallel_batch_ingest_is_byte_identical_to_sequential() {
    // Batches big enough to split into multiple segments each, with
    // interleaved time ranges so chains must merge on read.
    let batches: Vec<Vec<PacketRecord>> = (0..6u64)
        .map(|b| {
            (0..9_000u64)
                .map(|i| packet(b * 50_000 + i * 37 % 800_000, (b * 9_000 + i) as u32))
                .collect()
        })
        .collect();
    let seq = build(&batches, 1);
    for workers in [2, 4, 7] {
        let par = build(&batches, workers);
        assert_identical(&seq, &par, &format!("workers={workers}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_batches_are_worker_count_invariant(
        sizes in collection::vec(0usize..2_500, 1..=6),
        bases in collection::vec(0u64..500_000, 6),
        workers in 2usize..8,
    ) {
        let mut tag = 0u32;
        let batches: Vec<Vec<PacketRecord>> = sizes
            .iter()
            .enumerate()
            .map(|(bi, &sz)| {
                (0..sz)
                    .map(|i| {
                        tag = tag.wrapping_add(1);
                        packet(bases[bi % bases.len()] + (i as u64 * 13) % 40_000, tag)
                    })
                    .collect()
            })
            .collect();
        let seq = build(&batches, 1);
        let par = build(&batches, workers);
        assert_identical(&seq, &par, &format!("workers={workers}"));
    }
}
