//! # campuslab-datastore
//!
//! The campus data store of the paper's Part-1 proposal: every record the
//! monitoring plane produces — packets, flows, DNS metadata, sensor events
//! — "cleaned, curated, time-synchronized and (where possible) labelled,
//! but also linked and indexed to provide fast and flexible search
//! capabilities" (§5).
//!
//! * [`DataStore`] — time-ordered tables with host/port/attack secondary
//!   indexes, retention enforcement and storage accounting.
//! * [`PacketQuery`]/[`FlowQuery`] — composable predicates; every indexed
//!   query has an equivalent full-scan path so experiment E3 can measure
//!   the speedup honestly.
//! * [`stats`] — the mining layer: summaries, top talkers, volume series.
//!
//! ```
//! use campuslab_datastore::{DataStore, PacketQuery};
//!
//! let ds = DataStore::new();
//! let hits = ds.query_packets(&PacketQuery::default().port(53));
//! assert!(hits.is_empty()); // nothing ingested yet
//! ```

pub mod persist;
pub mod query;
pub mod stats;
pub mod store;

pub use persist::{load, save, PersistError};
pub use query::{FlowQuery, PacketQuery};
pub use stats::{summarize, top_talkers, volume_per_second, StoreSummary};
pub use store::{DataStore, StorageReport};
