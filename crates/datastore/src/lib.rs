//! # campuslab-datastore
//!
//! The campus data store of the paper's Part-1 proposal: every record the
//! monitoring plane produces — packets, flows, DNS metadata, sensor events
//! — "cleaned, curated, time-synchronized and (where possible) labelled,
//! but also linked and indexed to provide fast and flexible search
//! capabilities" (§5).
//!
//! * [`DataStore`] — time-partitioned segment chains with host/port/attack
//!   secondary indexes, Bloom membership summaries, O(segments) retention
//!   and storage accounting. Global order is `(timestamp, seq)`: equal
//!   timestamps keep capture order deterministically, and parallel batch
//!   ingest is byte-identical to sequential (DESIGN.md §9).
//! * [`PacketQuery`]/[`FlowQuery`] — composable predicates; every indexed
//!   query has an equivalent full-scan path so experiment E3 can measure
//!   the speedup honestly, and reports its work in [`QueryStats`].
//! * [`StoreObs`] — the store's Observatory surface: ingest/query
//!   counters, segment gauges, a deterministic query-cost histogram.
//! * [`stats`] — the mining layer: summaries, top talkers, volume series.
//!
//! ```
//! use campuslab_datastore::{DataStore, PacketQuery};
//!
//! let ds = DataStore::new();
//! let hits = ds.query_packets(&PacketQuery::default().port(53));
//! assert!(hits.is_empty()); // nothing ingested yet
//! ```

#![deny(rust_2018_idioms)]

pub mod observe;
pub mod persist;
pub mod query;
pub mod segment;
pub mod stats;
pub mod store;
pub mod wal;

pub use observe::StoreObs;
pub use persist::{load, save, PersistError};
pub use wal::{frame_len, RecoveryReport, SealedSegment, WalConfig, WalRecord, WalStore};
pub use query::{FlowQuery, PacketQuery, QueryStats};
pub use segment::{SegmentStats, SEGMENT_CAPACITY};
pub use stats::{summarize, top_talkers, volume_per_second, StoreSummary};
pub use store::{DataStore, StorageReport};
