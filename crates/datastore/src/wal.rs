//! Segment-granular durability: an append-only write-ahead log under the
//! in-memory [`DataStore`], superseding the all-or-nothing snapshot of
//! [`crate::persist`] (which stays as an export format — see
//! [`WalStore::export_snapshot`]).
//!
//! On-disk layout, one directory per store:
//!
//! ```text
//! wal-000000.seg   sealed: immutable, length + crc32 pinned by MANIFEST
//! wal-000001.seg   sealed
//! wal-000002.seg   tail: append-only, recovered frame by frame
//! MANIFEST         JSON, committed via MANIFEST.tmp + atomic rename
//! ```
//!
//! Each segment is a run of frames `[len u32 LE][crc32 u32 LE][payload]`,
//! where the payload is one JSON-encoded [`WalRecord`] batch. Appends go
//! to the tail segment only; when the tail outgrows the seal threshold it
//! is sealed — whole-file checksum recorded in the manifest, new empty
//! tail opened — so durability metadata grows per *segment*, not per
//! append.
//!
//! Recovery contract (the crash-fault half of experiment E19):
//!
//! * A sealed segment whose length or checksum disagrees with the
//!   manifest is **data loss**, reported as a typed
//!   [`PersistError::Corrupt`] carrying the segment id and byte offset —
//!   never a panic, and never a silent skip.
//! * The tail is expected to be torn after a crash mid-append. Recovery
//!   replays frames until the first bad one (short header, short body,
//!   checksum mismatch, undecodable payload), physically truncates the
//!   file back to the last good prefix, and reports what it cut in the
//!   [`RecoveryReport`] and on the store's `ds_persist_corrupt_total`
//!   counter.
//! * An interrupted manifest commit leaves a stray `MANIFEST.tmp` next to
//!   a valid old `MANIFEST`; the stray is removed and the old manifest
//!   wins — the rename either happened or it didn't.

use crate::persist::PersistError;
use crate::store::DataStore;
use campuslab_capture::{DnsMetaRecord, FlowRecord, PacketRecord, SensorRecord};
use campuslab_obs::crc32;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current WAL format version (frames and manifest).
const WAL_VERSION: u32 = 1;

/// Frame header size: payload length + payload crc32.
const FRAME_HEADER: u64 = 8;

/// One durable append: a batch for exactly one table. Batch granularity
/// matches the ingest API — a capture flush or a sensor feed lands as one
/// frame, so the log replays in the same batch order the store saw.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalRecord {
    Packets(Vec<PacketRecord>),
    Flows(Vec<FlowRecord>),
    Dns(Vec<DnsMetaRecord>),
    Sensors(Vec<SensorRecord>),
}

/// A sealed segment's manifest entry: everything needed to detect any
/// byte of drift before replaying it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SealedSegment {
    pub id: u64,
    pub frames: u64,
    pub bytes: u64,
    pub crc: u32,
}

/// The durable root: sealed segments (with checksums) plus the id of the
/// current tail. Only ever replaced whole, via tmp + atomic rename.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    sealed: Vec<SealedSegment>,
    tail: u64,
}

/// What [`WalStore::open`] found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sealed segments verified and replayed.
    pub sealed_segments: u64,
    /// Frames replayed across sealed segments and the tail.
    pub frames_replayed: u64,
    /// A torn tail, when one was cut: `(segment id, byte offset of the
    /// first bad frame, reason)`. Everything before the offset was kept.
    pub torn_tail: Option<(u64, u64, String)>,
}

impl RecoveryReport {
    /// True when recovery had to discard bytes.
    pub fn was_lossy(&self) -> bool {
        self.torn_tail.is_some()
    }
}

/// Tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Seal the tail once it reaches this many bytes. Small values make
    /// many small immutable files (cheap recovery verification, more
    /// manifest commits); large values the reverse.
    pub seal_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { seal_bytes: 4 << 20 }
    }
}

/// A [`DataStore`] backed by a write-ahead log: every ingest is appended
/// to the tail segment (and flushed) *before* it lands in memory, so a
/// process that dies mid-run reopens to exactly the batches it had
/// durably appended — minus, at worst, the single frame it was writing.
pub struct WalStore {
    dir: PathBuf,
    cfg: WalConfig,
    manifest: Manifest,
    tail_file: File,
    tail_bytes: u64,
    tail_frames: u64,
    store: DataStore,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:06}.seg"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn corrupt(what: impl Into<String>, segment: u64, offset: u64) -> PersistError {
    PersistError::Corrupt { what: what.into(), segment: Some(segment), offset: Some(offset) }
}

/// Split one segment's bytes into decoded records. Returns the records
/// decoded from the longest valid prefix, the byte length of that prefix,
/// and the reason the first bad frame was rejected (`None` when the whole
/// buffer parsed). Total: arbitrary bytes in, never a panic out.
fn scan_frames(bytes: &[u8]) -> (Vec<WalRecord>, u64, Option<String>) {
    let mut records = Vec::new();
    let mut off = 0u64;
    loop {
        let rest = &bytes[off as usize..];
        if rest.is_empty() {
            return (records, off, None);
        }
        if (rest.len() as u64) < FRAME_HEADER {
            return (records, off, Some(format!("torn frame header ({} bytes)", rest.len())));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("fixed slice")) as u64;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("fixed slice"));
        if (rest.len() as u64) < FRAME_HEADER + len {
            return (
                records,
                off,
                Some(format!(
                    "torn frame body (header promises {len} bytes, {} present)",
                    rest.len() as u64 - FRAME_HEADER
                )),
            );
        }
        let payload = &rest[FRAME_HEADER as usize..(FRAME_HEADER + len) as usize];
        let actual = crc32(payload);
        if actual != crc {
            return (
                records,
                off,
                Some(format!("frame checksum mismatch (header {crc:08x}, payload {actual:08x})")),
            );
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(e) => return (records, off, Some(format!("frame payload not utf-8: {e}"))),
        };
        match serde_json::from_str::<WalRecord>(text) {
            Ok(rec) => records.push(rec),
            Err(e) => return (records, off, Some(format!("frame payload undecodable: {e}"))),
        }
        off += FRAME_HEADER + len;
    }
}

fn replay(store: &mut DataStore, rec: WalRecord) {
    match rec {
        WalRecord::Packets(b) => store.ingest_packets(b),
        WalRecord::Flows(b) => store.ingest_flows(b),
        WalRecord::Dns(b) => store.ingest_dns(b),
        WalRecord::Sensors(b) => store.ingest_sensors(b),
    }
}

impl WalStore {
    /// Create or recover a WAL-backed store in `dir` (created if absent).
    /// Returns the store plus what recovery found. Errors are typed
    /// ([`PersistError`]) and carry segment/offset for corruption; this
    /// function never panics on any on-disk state.
    pub fn open(dir: impl Into<PathBuf>, cfg: WalConfig) -> Result<(Self, RecoveryReport), PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;

        // A stray tmp means a manifest commit died before the rename:
        // the old manifest is the truth, the tmp is garbage.
        let tmp = dir.join("MANIFEST.tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }

        let manifest = match std::fs::read(manifest_path(&dir)) {
            Ok(bytes) => {
                let text = std::str::from_utf8(&bytes).map_err(|e| PersistError::Corrupt {
                    what: format!("manifest not utf-8: {e}"),
                    segment: None,
                    offset: None,
                })?;
                let m: Manifest = serde_json::from_str(text).map_err(|e| PersistError::Corrupt {
                    what: format!("manifest undecodable: {e}"),
                    segment: None,
                    offset: None,
                })?;
                if m.version > WAL_VERSION {
                    return Err(PersistError::Version { found: m.version, supported: WAL_VERSION });
                }
                if m.version == 0 {
                    return Err(PersistError::Corrupt {
                        what: "manifest version 0 is never written".into(),
                        segment: None,
                        offset: None,
                    });
                }
                m
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Manifest { version: WAL_VERSION, sealed: Vec::new(), tail: 0 }
            }
            Err(e) => return Err(e.into()),
        };

        let mut store = DataStore::new();
        let mut report = RecoveryReport::default();

        // Sealed segments: immutable, so any disagreement with the
        // manifest is real data loss — a typed error, not a repair.
        for seg in &manifest.sealed {
            let bytes = std::fs::read(segment_path(&dir, seg.id)).map_err(|e| {
                corrupt(format!("sealed segment unreadable: {e}"), seg.id, 0)
            })?;
            if bytes.len() as u64 != seg.bytes {
                return Err(corrupt(
                    format!("sealed segment is {} bytes, manifest pins {}", bytes.len(), seg.bytes),
                    seg.id,
                    (bytes.len() as u64).min(seg.bytes),
                ));
            }
            let actual = crc32(&bytes);
            if actual != seg.crc {
                return Err(corrupt(
                    format!("sealed segment crc {actual:08x}, manifest pins {:08x}", seg.crc),
                    seg.id,
                    0,
                ));
            }
            let (records, good, bad) = scan_frames(&bytes);
            if let Some(reason) = bad {
                // Checksum matched but frames do not parse: the manifest
                // itself pinned garbage — an encoder bug, surfaced loudly.
                return Err(corrupt(reason, seg.id, good));
            }
            report.sealed_segments += 1;
            report.frames_replayed += records.len() as u64;
            for rec in records {
                replay(&mut store, rec);
            }
        }

        // The tail: torn frames are routine after a crash. Keep the good
        // prefix, truncate the rest, say so.
        let tail_path = segment_path(&dir, manifest.tail);
        let tail_bytes_on_disk = match std::fs::read(&tail_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (records, good, bad) = scan_frames(&tail_bytes_on_disk);
        let tail_frames = records.len() as u64;
        report.frames_replayed += tail_frames;
        for rec in records {
            replay(&mut store, rec);
        }
        if let Some(reason) = bad {
            report.torn_tail = Some((manifest.tail, good, reason));
        }

        let mut tail_file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&tail_path)?;
        if report.torn_tail.is_some() {
            tail_file.set_len(good)?;
            store.obs.on_persist_corrupt(1);
        }
        tail_file.seek(SeekFrom::Start(good))?;

        let wal = WalStore {
            dir,
            cfg,
            manifest,
            tail_file,
            tail_bytes: good,
            tail_frames,
            store,
        };
        Ok((wal, report))
    }

    /// The recovered/accumulated in-memory store. Mutating the store
    /// around the WAL would desynchronize log and memory, so only shared
    /// access is exposed; all writes go through the `append_*` methods.
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// The store's Observatory surface (mutable: rendering and query
    /// observation need it).
    pub fn obs_mut(&mut self) -> &mut crate::observe::StoreObs {
        &mut self.store.obs
    }

    /// Sealed segments currently pinned by the manifest.
    pub fn sealed_segments(&self) -> &[SealedSegment] {
        &self.manifest.sealed
    }

    /// The tail segment's id.
    pub fn tail_segment(&self) -> u64 {
        self.manifest.tail
    }

    /// Durably append one batch, then ingest it. The frame is flushed to
    /// the OS before memory changes: a crash after `append_*` returns
    /// replays the batch, a crash during it tears at most this frame.
    fn append(&mut self, rec: WalRecord) -> Result<(), PersistError> {
        let payload = serde_json::to_string(&rec)?.into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.tail_file.write_all(&frame)?;
        self.tail_file.flush()?;
        self.tail_bytes += frame.len() as u64;
        self.tail_frames += 1;
        replay(&mut self.store, rec);
        if self.tail_bytes >= self.cfg.seal_bytes {
            self.seal()?;
        }
        Ok(())
    }

    /// Append a packet batch (no-op for an empty batch, mirroring ingest).
    pub fn append_packets(&mut self, batch: Vec<PacketRecord>) -> Result<(), PersistError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.append(WalRecord::Packets(batch))
    }

    /// Append a flow batch.
    pub fn append_flows(&mut self, batch: Vec<FlowRecord>) -> Result<(), PersistError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.append(WalRecord::Flows(batch))
    }

    /// Append a DNS metadata batch.
    pub fn append_dns(&mut self, batch: Vec<DnsMetaRecord>) -> Result<(), PersistError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.append(WalRecord::Dns(batch))
    }

    /// Append a sensor batch.
    pub fn append_sensors(&mut self, batch: Vec<SensorRecord>) -> Result<(), PersistError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.append(WalRecord::Sensors(batch))
    }

    /// Seal the tail now: pin its length and checksum in the manifest
    /// (committed atomically) and open a fresh empty tail. Idempotent on
    /// an empty tail.
    pub fn seal(&mut self) -> Result<(), PersistError> {
        if self.tail_bytes == 0 {
            return Ok(());
        }
        self.tail_file.sync_all()?;
        let id = self.manifest.tail;
        let bytes = std::fs::read(segment_path(&self.dir, id))?;
        self.manifest.sealed.push(SealedSegment {
            id,
            frames: self.tail_frames,
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
        });
        self.manifest.tail = id + 1;
        // Truncate deliberately: a crash between creating the next tail
        // and committing the manifest leaves a stray file here, and a
        // fresh tail must start empty.
        let next = segment_path(&self.dir, self.manifest.tail);
        let tail_file =
            OpenOptions::new().create(true).truncate(true).read(true).write(true).open(&next)?;
        self.commit_manifest()?;
        self.tail_file = tail_file;
        self.tail_bytes = 0;
        self.tail_frames = 0;
        Ok(())
    }

    /// Write the manifest to `MANIFEST.tmp`, sync, atomically rename over
    /// `MANIFEST`. A crash on either side of the rename leaves a complete
    /// manifest — old or new, never a hybrid.
    fn commit_manifest(&mut self) -> Result<(), PersistError> {
        let tmp = self.dir.join("MANIFEST.tmp");
        let text = serde_json::to_string(&self.manifest)?;
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, manifest_path(&self.dir))?;
        Ok(())
    }

    /// Export the current contents as a single-document snapshot — the
    /// legacy all-or-nothing format of [`crate::persist`], kept as an
    /// interchange/export artifact now that the WAL owns durability.
    pub fn export_snapshot<W: Write>(&self, out: W) -> Result<(), PersistError> {
        crate::persist::save(&self.store, out)
    }
}

/// Byte length of the frame that would encode `rec` — the kill-point
/// grid for mid-append crash tests.
pub fn frame_len(rec: &WalRecord) -> Result<u64, PersistError> {
    Ok(FRAME_HEADER + serde_json::to_string(rec)?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};
    use std::net::IpAddr;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("campuslab-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn packet(ts: u64, tag: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from([10, 1, (tag >> 8) as u8, (tag & 0xFF) as u8]),
            dst: IpAddr::from([203, 0, 113, 1]),
            protocol: 17,
            src_port: 53,
            dst_port: 40_000,
            wire_len: 100 + u32::from(tag % 500),
            ttl: 60,
            tcp_flags: TcpFlags::default(),
            flow_id: u64::from(tag),
            label_app: 1,
            label_attack: u16::from(tag.is_multiple_of(9)),
        }
    }

    fn batch(base: u64, n: u16) -> Vec<PacketRecord> {
        (0..n).map(|i| packet(base + u64::from(i) * 1_000, i)).collect()
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = scratch("replay");
        {
            let (mut wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            wal.append_packets(batch(0, 40)).unwrap();
            wal.append_packets(batch(1_000_000, 25)).unwrap();
            wal.append_sensors(vec![SensorRecord::ConfigChange {
                ts_ns: 5,
                device: "border".into(),
                summary: "acl change".into(),
            }])
            .unwrap();
        } // process "dies" with the tail unsealed
        let (wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.frames_replayed, 3);
        assert!(!report.was_lossy());
        assert_eq!(wal.store().packet_count(), 65);
        assert_eq!(wal.store().sensor_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealing_rolls_the_tail_and_reopen_verifies_checksums() {
        let dir = scratch("seal");
        {
            // Tiny threshold: every batch seals its segment.
            let (mut wal, _) = WalStore::open(&dir, WalConfig { seal_bytes: 1 }).unwrap();
            wal.append_packets(batch(0, 10)).unwrap();
            wal.append_packets(batch(1_000_000, 10)).unwrap();
            wal.append_packets(batch(2_000_000, 10)).unwrap();
            assert_eq!(wal.sealed_segments().len(), 3);
            assert_eq!(wal.tail_segment(), 3);
        }
        let (wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.sealed_segments, 3);
        assert_eq!(report.frames_replayed, 3);
        assert_eq!(wal.store().packet_count(), 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The mid-append kill sweep: truncate the on-disk image at *every*
    /// byte boundary inside the final frame and reopen. Each cut must
    /// recover exactly the fully written frames, report the torn tail,
    /// and bump the corruption counter — and never panic.
    #[test]
    fn kill_mid_append_recovers_last_good_prefix_at_every_cut() {
        let dir = scratch("midappend");
        let (mut wal, _) = WalStore::open(&dir, WalConfig::default()).unwrap();
        wal.append_packets(batch(0, 12)).unwrap();
        let keep_bytes = wal.tail_bytes;
        wal.append_packets(batch(1_000_000, 7)).unwrap();
        let full_bytes = wal.tail_bytes;
        drop(wal);
        let tail = segment_path(&dir, 0);
        let image = std::fs::read(&tail).unwrap();
        assert_eq!(image.len() as u64, full_bytes);

        for cut in keep_bytes..full_bytes {
            std::fs::write(&tail, &image[..cut as usize]).unwrap();
            let (wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
            if cut == keep_bytes {
                // Clean boundary: nothing torn, nothing to report.
                assert!(!report.was_lossy(), "cut at {cut} is a frame boundary");
            } else {
                let (seg, off, _) = report.torn_tail.clone().expect("torn tail reported");
                assert_eq!((seg, off), (0, keep_bytes), "cut at {cut}");
                assert_eq!(wal.store().obs.persist_corrupt(), 1);
                // The file was physically truncated to the good prefix.
                assert_eq!(
                    std::fs::metadata(&tail).unwrap().len(),
                    keep_bytes,
                    "cut at {cut}"
                );
            }
            assert_eq!(wal.store().packet_count(), 12, "cut at {cut}");
            assert_eq!(report.frames_replayed, 1, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Appending after a torn-tail recovery extends the good prefix: the
    /// overwritten garbage never resurfaces.
    #[test]
    fn appends_after_recovery_extend_the_good_prefix() {
        let dir = scratch("extend");
        let (mut wal, _) = WalStore::open(&dir, WalConfig::default()).unwrap();
        wal.append_packets(batch(0, 5)).unwrap();
        let keep = wal.tail_bytes;
        wal.append_packets(batch(1_000_000, 5)).unwrap();
        drop(wal);
        let tail = segment_path(&dir, 0);
        let image = std::fs::read(&tail).unwrap();
        std::fs::write(&tail, &image[..(keep + 3) as usize]).unwrap();

        let (mut wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
        assert!(report.was_lossy());
        wal.append_packets(batch(2_000_000, 4)).unwrap();
        drop(wal);
        let (wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
        assert!(!report.was_lossy(), "the repaired tail reopens clean");
        assert_eq!(wal.store().packet_count(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_segment_corruption_is_a_typed_error_with_location() {
        let dir = scratch("sealedbad");
        {
            let (mut wal, _) = WalStore::open(&dir, WalConfig { seal_bytes: 1 }).unwrap();
            wal.append_packets(batch(0, 10)).unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        match WalStore::open(&dir, WalConfig::default()).map(|_| ()) {
            Err(PersistError::Corrupt { segment: Some(0), offset: Some(_), what }) => {
                assert!(what.contains("crc"), "{what}");
            }
            other => panic!("expected located corruption, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_manifest_tmp_is_discarded_and_old_manifest_wins() {
        let dir = scratch("straytmp");
        {
            let (mut wal, _) = WalStore::open(&dir, WalConfig { seal_bytes: 1 }).unwrap();
            wal.append_packets(batch(0, 6)).unwrap();
        }
        std::fs::write(dir.join("MANIFEST.tmp"), b"{half a man").unwrap();
        let (wal, report) = WalStore::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.sealed_segments, 1);
        assert_eq!(wal.store().packet_count(), 6);
        assert!(!dir.join("MANIFEST.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error_never_a_panic() {
        let dir = scratch("manifestbad");
        {
            let (mut wal, _) = WalStore::open(&dir, WalConfig::default()).unwrap();
            wal.append_packets(batch(0, 3)).unwrap();
            wal.seal().unwrap();
        }
        std::fs::write(manifest_path(&dir), b"\xff\xfe not a manifest").unwrap();
        assert!(matches!(
            WalStore::open(&dir, WalConfig::default()),
            Err(PersistError::Corrupt { segment: None, .. })
        ));
        std::fs::write(manifest_path(&dir), b"{\"version\":99,\"sealed\":[],\"tail\":0}").unwrap();
        assert!(matches!(
            WalStore::open(&dir, WalConfig::default()),
            Err(PersistError::Version { found: 99, supported: 1 })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Never-panic fuzz over the tail scanner, `CAMPUSLAB_FUZZ_CASES`
    /// scaled: random cuts and single-bit flips over a real multi-frame
    /// tail image must recover a prefix (possibly empty), never panic,
    /// and never accept a frame whose checksum lies.
    #[test]
    fn tail_scanner_never_panics_on_corrupt_images() {
        let dir = scratch("fuzz");
        let (mut wal, _) = WalStore::open(&dir, WalConfig::default()).unwrap();
        for k in 0..6u16 {
            wal.append_packets(batch(u64::from(k) * 1_000_000, 8)).unwrap();
        }
        drop(wal);
        let image = std::fs::read(segment_path(&dir, 0)).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        let cases: u64 = std::env::var("CAMPUSLAB_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);

        // Every truncation point: the recovered prefix must be a whole
        // number of frames no longer than the cut.
        let stride = (image.len() as u64 / cases.max(1)).max(1);
        for cut in (0..image.len() as u64).step_by(stride as usize) {
            let (_, good, _) = scan_frames(&image[..cut as usize]);
            assert!(good <= cut);
        }

        // Deterministic single-bit flips (splitmix-style stream).
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..cases {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let pos = (r as usize) % image.len();
            let bit = (r >> 40) as u8 & 7;
            let mut flipped = image.clone();
            flipped[pos] ^= 1 << bit;
            let (records, good, bad) = scan_frames(&flipped);
            assert!(good <= image.len() as u64);
            // A flip anywhere must cut the scan at or before that byte's
            // frame — records past the flip would mean a checksum lied.
            if bad.is_some() {
                assert!(records.len() <= 6);
            }
        }
    }

    #[test]
    fn export_snapshot_matches_the_legacy_format() {
        let dir = scratch("export");
        let (mut wal, _) = WalStore::open(&dir, WalConfig::default()).unwrap();
        wal.append_packets(batch(0, 9)).unwrap();
        let mut via_wal = Vec::new();
        wal.export_snapshot(&mut via_wal).unwrap();
        let loaded = crate::persist::load(&via_wal[..]).unwrap();
        assert_eq!(loaded.packet_count(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
