//! Observatory schema for the data store: one [`StoreObs`] per
//! [`crate::DataStore`], bumped by ingest, query, and retention paths.
//!
//! Query "latency" is the deterministic work metric `records_examined`
//! (see [`crate::QueryStats`]), recorded into `ds_query_cost_records` —
//! a histogram in units of records, not wall time. Wall clocks would make
//! golden-replay bundles machine-dependent; examined-record counts are a
//! faithful, reproducible proxy for query cost in the simulated world.

use crate::query::QueryStats;
use campuslab_obs::{CounterId, GaugeId, HistogramId, ObsSink, Registry};

/// Metrics registry + sink for one data store.
#[derive(Debug, Clone)]
pub struct StoreObs {
    registry: Registry,
    /// Value store; bumped by the store, read back through typed ids.
    pub sink: ObsSink,
    ingested_packets: CounterId,
    ingested_flows: CounterId,
    ingested_dns: CounterId,
    ingested_sensors: CounterId,
    ingest_batches: CounterId,
    queries_indexed: CounterId,
    queries_scan: CounterId,
    segments_pruned: CounterId,
    segments_scanned: CounterId,
    retired_records: CounterId,
    packet_segments: GaugeId,
    flow_segments: GaugeId,
    query_cost: HistogramId,
    persist_corrupt: CounterId,
}

impl Default for StoreObs {
    fn default() -> Self {
        StoreObs::new()
    }
}

impl StoreObs {
    /// Build the datastore schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let ingested = "records ingested, by table";
        let ingested_packets =
            reg.counter_with_label("ds_ingested_records_total", Some("table=\"packets\""), ingested);
        let ingested_flows =
            reg.counter_with_label("ds_ingested_records_total", Some("table=\"flows\""), ingested);
        let ingested_dns =
            reg.counter_with_label("ds_ingested_records_total", Some("table=\"dns\""), ingested);
        let ingested_sensors =
            reg.counter_with_label("ds_ingested_records_total", Some("table=\"sensors\""), ingested);
        let ingest_batches =
            reg.counter("ds_ingest_batches_total", "ingest calls that landed at least one record");
        let queries = "packet/flow queries served, by plan";
        let queries_indexed =
            reg.counter_with_label("ds_queries_total", Some("path=\"indexed\""), queries);
        let queries_scan =
            reg.counter_with_label("ds_queries_total", Some("path=\"scan\""), queries);
        let segs = "segments a query planner visited, by outcome";
        let segments_pruned =
            reg.counter_with_label("ds_query_segments_total", Some("outcome=\"pruned\""), segs);
        let segments_scanned =
            reg.counter_with_label("ds_query_segments_total", Some("outcome=\"scanned\""), segs);
        let retired_records =
            reg.counter("ds_retired_records_total", "records dropped by retention enforcement");
        let packet_segments = reg.gauge("ds_packet_segments", "live segments in the packet chain");
        let flow_segments = reg.gauge("ds_flow_segments", "live segments in the flow chain");
        let query_cost = reg.histogram(
            "ds_query_cost_records",
            "records examined per query (deterministic sim-time cost proxy)",
            &[1, 8, 64, 512, 4096, 32768, 262144],
        );
        // Registered last: ids are positional, and appending keeps every
        // previously committed golden bundle's counter layout intact.
        let persist_corrupt = reg.counter(
            "ds_persist_corrupt_total",
            "corruption events detected while recovering persisted state (WAL frames, sealed segments, snapshots)",
        );
        let sink = reg.sink();
        StoreObs {
            registry: reg,
            sink,
            ingested_packets,
            ingested_flows,
            ingested_dns,
            ingested_sensors,
            ingest_batches,
            queries_indexed,
            queries_scan,
            segments_pruned,
            segments_scanned,
            retired_records,
            packet_segments,
            flow_segments,
            query_cost,
            persist_corrupt,
        }
    }

    #[inline]
    pub(crate) fn on_ingest_packets(&mut self, n: u64) {
        self.sink.add(self.ingested_packets, n);
        self.sink.inc(self.ingest_batches);
    }

    #[inline]
    pub(crate) fn on_ingest_flows(&mut self, n: u64) {
        self.sink.add(self.ingested_flows, n);
        self.sink.inc(self.ingest_batches);
    }

    #[inline]
    pub(crate) fn on_ingest_dns(&mut self, n: u64) {
        self.sink.add(self.ingested_dns, n);
        self.sink.inc(self.ingest_batches);
    }

    #[inline]
    pub(crate) fn on_ingest_sensors(&mut self, n: u64) {
        self.sink.add(self.ingested_sensors, n);
        self.sink.inc(self.ingest_batches);
    }

    /// Record one served query: plan kind plus its [`QueryStats`].
    #[inline]
    pub(crate) fn on_query(&mut self, indexed: bool, stats: &QueryStats) {
        self.sink.inc(if indexed { self.queries_indexed } else { self.queries_scan });
        self.sink.add(self.segments_pruned, stats.segments_pruned as u64);
        self.sink
            .add(self.segments_scanned, (stats.segments_total - stats.segments_pruned) as u64);
        self.sink.observe(self.query_cost, stats.records_examined as u64);
    }

    #[inline]
    pub(crate) fn on_retired(&mut self, n: u64) {
        self.sink.add(self.retired_records, n);
    }

    /// Record `n` corruption events found while recovering persisted
    /// state (a torn WAL tail, a bad sealed-segment checksum, a rejected
    /// snapshot). Bumped by [`crate::wal::WalStore::open`] after a lossy
    /// recovery so the damage is visible on the metrics surface, not just
    /// in a return value somebody may have dropped.
    #[inline]
    pub(crate) fn on_persist_corrupt(&mut self, n: u64) {
        self.sink.add(self.persist_corrupt, n);
    }

    #[inline]
    pub(crate) fn set_segments(&mut self, packets: usize, flows: usize) {
        self.sink.set(self.packet_segments, packets as i64);
        self.sink.set(self.flow_segments, flows as i64);
    }

    /// Records ingested into the packet table.
    pub fn ingested_packets(&self) -> u64 {
        self.sink.counter(self.ingested_packets)
    }

    /// Records ingested into the flow table.
    pub fn ingested_flows(&self) -> u64 {
        self.sink.counter(self.ingested_flows)
    }

    /// Non-empty ingest batches across all tables.
    pub fn ingest_batches(&self) -> u64 {
        self.sink.counter(self.ingest_batches)
    }

    /// Queries served by the indexed planner.
    pub fn queries_indexed(&self) -> u64 {
        self.sink.counter(self.queries_indexed)
    }

    /// Queries served by the full-scan baseline.
    pub fn queries_scan(&self) -> u64 {
        self.sink.counter(self.queries_scan)
    }

    /// Segments skipped wholesale by query planning.
    pub fn segments_pruned(&self) -> u64 {
        self.sink.counter(self.segments_pruned)
    }

    /// Segments a query actually examined records in.
    pub fn segments_scanned(&self) -> u64 {
        self.sink.counter(self.segments_scanned)
    }

    /// Records dropped by retention.
    pub fn retired_records(&self) -> u64 {
        self.sink.counter(self.retired_records)
    }

    /// Corruption events detected while recovering persisted state.
    pub fn persist_corrupt(&self) -> u64 {
        self.sink.counter(self.persist_corrupt)
    }

    /// Live packet-chain segments (last published value).
    pub fn packet_segments(&self) -> i64 {
        self.sink.gauge(self.packet_segments)
    }

    /// Total records examined across all queries (histogram sum).
    pub fn query_cost_total(&self) -> u128 {
        self.sink.histogram(self.query_cost).sum()
    }

    /// Render this store's metrics as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_bookkeeping_lands_in_all_three_families() {
        let mut obs = StoreObs::new();
        obs.on_ingest_packets(100);
        obs.on_query(
            true,
            &QueryStats { segments_total: 8, segments_pruned: 6, records_examined: 42, hits: 5 },
        );
        obs.on_query(
            false,
            &QueryStats { segments_total: 8, segments_pruned: 0, records_examined: 100, hits: 5 },
        );
        obs.set_segments(8, 2);
        assert_eq!(obs.queries_indexed(), 1);
        assert_eq!(obs.queries_scan(), 1);
        assert_eq!(obs.segments_pruned(), 6);
        assert_eq!(obs.segments_scanned(), 10);
        assert_eq!(obs.query_cost_total(), 142);
        let text = obs.render();
        assert!(text.contains("ds_ingested_records_total{table=\"packets\"} 100"));
        assert!(text.contains("ds_queries_total{path=\"indexed\"} 1"));
        assert!(text.contains("ds_packet_segments 8"));
        assert!(text.contains("ds_query_cost_records_count 2"));
    }
}
