//! The data store: time-ordered tables with secondary indexes, retention
//! and storage accounting — "a single platform for collecting, storing,
//! indexing, mining, and visualizing network data" (paper §5).

use crate::query::{FlowQuery, PacketQuery};
use campuslab_capture::{DnsMetaRecord, FlowRecord, FxHashMap, PacketRecord, SensorRecord};
use std::net::IpAddr;

/// Approximate serialized sizes for storage accounting.
const PACKET_RECORD_BYTES: u64 = 96;
const FLOW_RECORD_BYTES: u64 = 144;
const DNS_RECORD_BYTES: u64 = 120;
const SENSOR_RECORD_BYTES: u64 = 96;

/// Storage accounting per table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct StorageReport {
    pub packet_records: u64,
    pub flow_records: u64,
    pub dns_records: u64,
    pub sensor_records: u64,
    pub approx_bytes: u64,
}

/// The campus data store.
///
/// Packets keep three secondary indexes — by host (either endpoint), by
/// destination port, and by attack label — all storing positions into the
/// time-sorted packet table, so index hits come back in time order and
/// range predicates stay cheap.
#[derive(Debug, Default)]
pub struct DataStore {
    packets: Vec<PacketRecord>,
    flows: Vec<FlowRecord>,
    dns: Vec<DnsMetaRecord>,
    sensors: Vec<SensorRecord>,
    by_host: FxHashMap<IpAddr, Vec<u32>>,
    by_port: FxHashMap<u16, Vec<u32>>,
    by_attack: Vec<u32>,
    /// Packet-table positions `< indexed_upto` are covered by the indexes.
    indexed_upto: usize,
}

impl DataStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a batch of packet records. Batches may arrive unsorted; the
    /// table is re-sorted and indexes rebuilt when needed.
    pub fn ingest_packets(&mut self, mut batch: Vec<PacketRecord>) {
        if batch.is_empty() {
            return;
        }
        batch.sort_by_key(|r| r.ts_ns);
        let in_order = self
            .packets
            .last()
            .map(|last| batch[0].ts_ns >= last.ts_ns)
            .unwrap_or(true);
        self.packets.extend(batch);
        if !in_order {
            self.packets.sort_by_key(|r| r.ts_ns);
            self.rebuild_indexes();
        } else {
            for i in self.indexed_upto..self.packets.len() {
                Self::index_one(
                    &mut self.by_host,
                    &mut self.by_port,
                    &mut self.by_attack,
                    &self.packets[i],
                    i as u32,
                );
            }
            self.indexed_upto = self.packets.len();
        }
    }

    fn index_one(
        by_host: &mut FxHashMap<IpAddr, Vec<u32>>,
        by_port: &mut FxHashMap<u16, Vec<u32>>,
        by_attack: &mut Vec<u32>,
        rec: &PacketRecord,
        pos: u32,
    ) {
        by_host.entry(rec.src).or_default().push(pos);
        if rec.dst != rec.src {
            by_host.entry(rec.dst).or_default().push(pos);
        }
        by_port.entry(rec.dst_port).or_default().push(pos);
        if rec.is_malicious() {
            by_attack.push(pos);
        }
    }

    fn rebuild_indexes(&mut self) {
        self.by_host.clear();
        self.by_port.clear();
        self.by_attack.clear();
        for (i, rec) in self.packets.iter().enumerate() {
            Self::index_one(
                &mut self.by_host,
                &mut self.by_port,
                &mut self.by_attack,
                rec,
                i as u32,
            );
        }
        self.indexed_upto = self.packets.len();
    }

    /// Ingest flow records.
    pub fn ingest_flows(&mut self, mut batch: Vec<FlowRecord>) {
        self.flows.append(&mut batch);
        self.flows.sort_by_key(|f| f.first_ts_ns);
    }

    /// Ingest DNS metadata records.
    pub fn ingest_dns(&mut self, mut batch: Vec<DnsMetaRecord>) {
        self.dns.append(&mut batch);
        self.dns.sort_by_key(|d| d.ts_ns);
    }

    /// Ingest sensor events.
    pub fn ingest_sensors(&mut self, mut batch: Vec<SensorRecord>) {
        self.sensors.append(&mut batch);
        self.sensors.sort_by_key(|s| s.ts_ns());
    }

    /// All packet records, time-ordered.
    pub fn packets(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// All flow records, ordered by start time.
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// All DNS metadata records, time-ordered.
    pub fn dns(&self) -> &[DnsMetaRecord] {
        &self.dns
    }

    /// All sensor events, time-ordered.
    pub fn sensors(&self) -> &[SensorRecord] {
        &self.sensors
    }

    /// Index-accelerated packet query.
    pub fn query_packets(&self, q: &PacketQuery) -> Vec<&PacketRecord> {
        // An inverted or empty window matches nothing; bail before the
        // binary-search slicing below, which would otherwise compute
        // lo > hi and panic on the slice. Queries are untrusted input.
        if q.time_ns.as_ref().is_some_and(|r| r.start >= r.end) {
            return Vec::new();
        }
        let limit = q.limit.unwrap_or(usize::MAX);
        // Plan: prefer the most selective available index.
        let candidates: Option<&[u32]> = if let Some(h) = q.host.or(q.src).or(q.dst) {
            Some(self.by_host.get(&h).map(|v| v.as_slice()).unwrap_or(&[]))
        } else if let Some(p) = q.dst_port {
            Some(self.by_port.get(&p).map(|v| v.as_slice()).unwrap_or(&[]))
        } else if q.malicious_only {
            Some(&self.by_attack)
        } else {
            None
        };
        match candidates {
            Some(idx) => {
                // Index vectors are position-sorted = time-sorted, so a
                // time range can prune with binary search.
                let slice = match &q.time_ns {
                    Some(range) => {
                        let lo = idx.partition_point(|&i| {
                            self.packets[i as usize].ts_ns < range.start
                        });
                        let hi = idx.partition_point(|&i| {
                            self.packets[i as usize].ts_ns < range.end
                        });
                        &idx[lo..hi]
                    }
                    None => idx,
                };
                slice
                    .iter()
                    .map(|&i| &self.packets[i as usize])
                    .filter(|r| q.matches(r))
                    .take(limit)
                    .collect()
            }
            None => {
                let slice = match &q.time_ns {
                    Some(range) => {
                        let lo = self.packets.partition_point(|r| r.ts_ns < range.start);
                        let hi = self.packets.partition_point(|r| r.ts_ns < range.end);
                        &self.packets[lo..hi]
                    }
                    None => &self.packets[..],
                };
                slice.iter().filter(|r| q.matches(r)).take(limit).collect()
            }
        }
    }

    /// Full-scan packet query — the baseline experiment E3 compares the
    /// indexes against.
    pub fn scan_packets(&self, q: &PacketQuery) -> Vec<&PacketRecord> {
        let limit = q.limit.unwrap_or(usize::MAX);
        self.packets.iter().filter(|r| q.matches(r)).take(limit).collect()
    }

    /// Flow query (scan with time pruning).
    pub fn query_flows(&self, q: &FlowQuery) -> Vec<&FlowRecord> {
        let limit = q.limit.unwrap_or(usize::MAX);
        self.flows.iter().filter(|f| q.matches(f)).take(limit).collect()
    }

    /// Drop all records older than `cutoff_ns` (retention enforcement).
    pub fn retain_since(&mut self, cutoff_ns: u64) {
        let cut = self.packets.partition_point(|r| r.ts_ns < cutoff_ns);
        if cut > 0 {
            self.packets.drain(..cut);
            self.rebuild_indexes();
        }
        self.flows.retain(|f| f.last_ts_ns >= cutoff_ns);
        self.dns.retain(|d| d.ts_ns >= cutoff_ns);
        self.sensors.retain(|s| s.ts_ns() >= cutoff_ns);
    }

    /// Approximate storage footprint.
    pub fn storage(&self) -> StorageReport {
        let packet_records = self.packets.len() as u64;
        let flow_records = self.flows.len() as u64;
        let dns_records = self.dns.len() as u64;
        let sensor_records = self.sensors.len() as u64;
        StorageReport {
            packet_records,
            flow_records,
            dns_records,
            sensor_records,
            approx_bytes: packet_records * PACKET_RECORD_BYTES
                + flow_records * FLOW_RECORD_BYTES
                + dns_records * DNS_RECORD_BYTES
                + sensor_records * SENSOR_RECORD_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};

    fn rec(ts: u64, src: [u8; 4], dst: [u8; 4], dport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from(src),
            dst: IpAddr::from(dst),
            protocol: 17,
            src_port: 53,
            dst_port: dport,
            wire_len: 100,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    fn populated() -> DataStore {
        let mut ds = DataStore::new();
        let mut batch = Vec::new();
        for i in 0..1000u64 {
            batch.push(rec(
                i * 1000,
                [10, 1, 1, (i % 50) as u8],
                [203, 0, 113, (i % 10) as u8],
                (i % 5) as u16 + 440,
                u16::from(i % 20 == 0),
            ));
        }
        ds.ingest_packets(batch);
        ds
    }

    #[test]
    fn query_equals_scan_on_every_shape() {
        let ds = populated();
        let queries = vec![
            PacketQuery::for_host("10.1.1.7".parse().unwrap()),
            PacketQuery::in_window(100_000, 500_000),
            PacketQuery::default().port(441),
            PacketQuery::default().malicious(),
            PacketQuery::for_host("10.1.1.7".parse().unwrap()).window(0, 400_000),
            PacketQuery::default().port(442).malicious(),
        ];
        for q in queries {
            let via_index: Vec<u64> = ds.query_packets(&q).iter().map(|r| r.ts_ns).collect();
            let via_scan: Vec<u64> = ds.scan_packets(&q).iter().map(|r| r.ts_ns).collect();
            assert_eq!(via_index, via_scan, "mismatch for {q:?}");
        }
    }

    #[test]
    fn out_of_order_batches_are_merged() {
        let mut ds = DataStore::new();
        ds.ingest_packets(vec![rec(5_000, [1, 1, 1, 1], [2, 2, 2, 2], 80, 0)]);
        ds.ingest_packets(vec![rec(1_000, [1, 1, 1, 1], [2, 2, 2, 2], 80, 0)]);
        let ts: Vec<u64> = ds.packets().iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![1_000, 5_000]);
        // Indexes still agree with a scan after the reorder.
        let q = PacketQuery::for_host("1.1.1.1".parse().unwrap());
        assert_eq!(ds.query_packets(&q).len(), ds.scan_packets(&q).len());
    }

    #[test]
    fn limit_caps_results() {
        let ds = populated();
        let q = PacketQuery { limit: Some(7), ..Default::default() };
        assert_eq!(ds.query_packets(&q).len(), 7);
    }

    #[test]
    fn retention_drops_old_records_and_reindexes() {
        let mut ds = populated();
        let before = ds.storage();
        ds.retain_since(500_000);
        let after = ds.storage();
        assert!(after.packet_records < before.packet_records);
        assert_eq!(after.packet_records, 500);
        // Queries remain consistent post-retention.
        let q = PacketQuery::default().malicious();
        let idx: Vec<u64> = ds.query_packets(&q).iter().map(|r| r.ts_ns).collect();
        let scan: Vec<u64> = ds.scan_packets(&q).iter().map(|r| r.ts_ns).collect();
        assert_eq!(idx, scan);
        assert!(idx.iter().all(|&t| t >= 500_000));
    }

    #[test]
    fn storage_report_accounts_all_tables() {
        let mut ds = populated();
        ds.ingest_sensors(vec![SensorRecord::ConfigChange {
            ts_ns: 1,
            device: "border".into(),
            summary: "acl".into(),
        }]);
        let s = ds.storage();
        assert_eq!(s.packet_records, 1000);
        assert_eq!(s.sensor_records, 1);
        assert!(s.approx_bytes > 96 * 1000);
    }

    #[test]
    fn inverted_or_empty_time_window_returns_empty_not_panic() {
        let ds = populated();
        // start > end (inverted) used to slice with lo > hi and abort.
        for q in [
            PacketQuery::in_window(500_000, 100_000),
            PacketQuery::in_window(100_000, 100_000),
            PacketQuery::for_host("10.1.1.7".parse().unwrap()).window(500_000, 100_000),
            PacketQuery::default().malicious().window(u64::MAX, 0),
        ] {
            assert!(ds.query_packets(&q).is_empty(), "{q:?}");
            assert!(ds.scan_packets(&q).is_empty(), "{q:?}");
        }
    }

    #[test]
    fn time_window_uses_sorted_order() {
        let ds = populated();
        let q = PacketQuery::in_window(10_000, 20_000);
        let hits = ds.query_packets(&q);
        assert_eq!(hits.len(), 10);
        assert!(hits.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
