//! The data store: time-partitioned segment chains with secondary
//! indexes, retention and storage accounting — "a single platform for
//! collecting, storing, indexing, mining, and visualizing network data"
//! (paper §5).
//!
//! Physical layout lives in [`crate::segment`]; this module is the policy
//! layer: which chain a record lands in, which plan a query takes, and the
//! Observatory bookkeeping ([`crate::StoreObs`]) around both.
//!
//! ## Ordering contract
//!
//! Every table is globally ordered by `(timestamp, seq)` where `seq` is
//! the ingest sequence number. Records with equal timestamps therefore
//! keep capture order, deterministically — ingest never silently reorders
//! ties (pinned by `tests/segments.rs`). Parallel batch ingest
//! ([`DataStore::ingest_packet_batches`]) pre-assigns each batch its seq
//! range before fanning out, so the store it builds is byte-identical to
//! the sequential one (pinned by `tests/par_ingest.rs`).

use crate::observe::StoreObs;
use crate::query::{FlowQuery, PacketQuery, QueryStats};
use crate::segment::{OrderedIter, PacketChain, SegmentStats, TimeChain};
use campuslab_capture::{DnsMetaRecord, FlowRecord, PacketRecord, SensorRecord};
use campuslab_netsim::par;

/// Approximate serialized sizes for storage accounting.
const PACKET_RECORD_BYTES: u64 = 96;
const FLOW_RECORD_BYTES: u64 = 144;
const DNS_RECORD_BYTES: u64 = 120;
const SENSOR_RECORD_BYTES: u64 = 96;

/// Storage accounting per table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct StorageReport {
    pub packet_records: u64,
    pub flow_records: u64,
    pub dns_records: u64,
    pub sensor_records: u64,
    pub approx_bytes: u64,
}

/// The campus data store.
///
/// Each table is a chain of time-partitioned segments. Packet segments
/// carry per-host and per-port Bloom membership summaries plus exact
/// postings, so an indexed query plans as *prune segments → binary-search
/// window → filter* and reports its work in [`QueryStats`]. Retention
/// truncates whole segments instead of compacting flat tables.
#[derive(Debug, Default)]
pub struct DataStore {
    packets: PacketChain,
    flows: TimeChain<FlowRecord>,
    dns: TimeChain<DnsMetaRecord>,
    sensors: TimeChain<SensorRecord>,
    /// Observatory surface; public so runs can merge or render it.
    pub obs: StoreObs,
}

impl DataStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn publish_segment_gauges(&mut self) {
        self.obs.set_segments(self.packets.segment_count(), self.flows.segment_count());
    }

    /// Ingest a batch of packet records. Batches may arrive unsorted; the
    /// batch is sorted by `(ts_ns, seq)` — equal timestamps keep their
    /// in-batch (capture) order — and lands as segment appends, never by
    /// re-sorting the whole table.
    pub fn ingest_packets(&mut self, batch: Vec<PacketRecord>) {
        if batch.is_empty() {
            return;
        }
        self.obs.on_ingest_packets(batch.len() as u64);
        self.packets.ingest(batch);
        self.publish_segment_gauges();
    }

    /// Ingest many packet batches, sharding segment construction across
    /// worker threads (see [`par::worker_count`]). The resulting store —
    /// reports, query results, segment layout — is byte-identical at any
    /// worker count.
    pub fn ingest_packet_batches(&mut self, batches: Vec<Vec<PacketRecord>>) {
        let workers = par::worker_count(batches.len());
        self.ingest_packet_batches_with(batches, workers);
    }

    /// [`DataStore::ingest_packet_batches`] with an explicit worker count.
    pub fn ingest_packet_batches_with(&mut self, batches: Vec<Vec<PacketRecord>>, workers: usize) {
        for b in &batches {
            if !b.is_empty() {
                self.obs.on_ingest_packets(b.len() as u64);
            }
        }
        self.packets.ingest_batches(batches, workers);
        self.publish_segment_gauges();
    }

    /// Ingest flow records.
    pub fn ingest_flows(&mut self, batch: Vec<FlowRecord>) {
        if batch.is_empty() {
            return;
        }
        self.obs.on_ingest_flows(batch.len() as u64);
        self.flows.ingest(batch);
        self.publish_segment_gauges();
    }

    /// Ingest DNS metadata records.
    pub fn ingest_dns(&mut self, batch: Vec<DnsMetaRecord>) {
        if batch.is_empty() {
            return;
        }
        self.obs.on_ingest_dns(batch.len() as u64);
        self.dns.ingest(batch);
    }

    /// Ingest sensor events.
    pub fn ingest_sensors(&mut self, batch: Vec<SensorRecord>) {
        if batch.is_empty() {
            return;
        }
        self.obs.on_ingest_sensors(batch.len() as u64);
        self.sensors.ingest(batch);
    }

    /// Packet records in the store.
    pub fn packet_count(&self) -> usize {
        self.packets.count()
    }

    /// Flow records in the store.
    pub fn flow_count(&self) -> usize {
        self.flows.count()
    }

    /// DNS metadata records in the store.
    pub fn dns_count(&self) -> usize {
        self.dns.count()
    }

    /// Sensor events in the store.
    pub fn sensor_count(&self) -> usize {
        self.sensors.count()
    }

    /// Live segments in the packet chain.
    pub fn packet_segment_count(&self) -> usize {
        self.packets.segment_count()
    }

    /// Shape of every packet segment, in chain order.
    pub fn packet_segment_stats(&self) -> Vec<SegmentStats> {
        self.packets.segment_stats()
    }

    /// All packet records in global `(ts_ns, seq)` order.
    pub fn iter_packets(&self) -> impl Iterator<Item = &PacketRecord> {
        self.packets.iter_seq().map(|(_, r)| r)
    }

    /// Like [`DataStore::iter_packets`] but yielding `(seq, record)`, for
    /// callers that need the tie-breaking sequence number.
    pub fn iter_packets_seq(&self) -> OrderedIter<'_, PacketRecord> {
        self.packets.iter_seq()
    }

    /// All flow records in `(first_ts_ns, seq)` order.
    pub fn iter_flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter_seq().map(|(_, r)| r)
    }

    /// All DNS metadata records in `(ts_ns, seq)` order.
    pub fn iter_dns(&self) -> impl Iterator<Item = &DnsMetaRecord> {
        self.dns.iter_seq().map(|(_, r)| r)
    }

    /// All sensor events in `(ts_ns, seq)` order.
    pub fn iter_sensors(&self) -> impl Iterator<Item = &SensorRecord> {
        self.sensors.iter_seq().map(|(_, r)| r)
    }

    /// Index-accelerated packet query.
    pub fn query_packets(&self, q: &PacketQuery) -> Vec<&PacketRecord> {
        self.packets.query(q).0
    }

    /// [`DataStore::query_packets`] plus its [`QueryStats`].
    pub fn query_packets_with_stats(&self, q: &PacketQuery) -> (Vec<&PacketRecord>, QueryStats) {
        self.packets.query(q)
    }

    /// Indexed query that also records itself in the store's Observatory.
    pub fn query_packets_observed(&mut self, q: &PacketQuery) -> (Vec<&PacketRecord>, QueryStats) {
        // Split-borrow: run the query on the chain field, book-keep on the
        // obs field, then hand out the borrows.
        let (hits, stats) = self.packets.query(q);
        // `hits` borrows `self.packets`; `self.obs` is a disjoint field.
        self.obs.on_query(true, &stats);
        (hits, stats)
    }

    /// Full-scan packet query — the baseline experiment E3 and the
    /// differential test suite compare the indexes against.
    pub fn scan_packets(&self, q: &PacketQuery) -> Vec<&PacketRecord> {
        self.packets.scan(q).0
    }

    /// [`DataStore::scan_packets`] plus its [`QueryStats`].
    pub fn scan_packets_with_stats(&self, q: &PacketQuery) -> (Vec<&PacketRecord>, QueryStats) {
        self.packets.scan(q)
    }

    /// Full-scan query that also records itself in the store's Observatory.
    pub fn scan_packets_observed(&mut self, q: &PacketQuery) -> (Vec<&PacketRecord>, QueryStats) {
        let (hits, stats) = self.packets.scan(q);
        self.obs.on_query(false, &stats);
        (hits, stats)
    }

    /// Flow query with segment-level overlap pruning.
    pub fn query_flows(&self, q: &FlowQuery) -> Vec<&FlowRecord> {
        self.query_flows_with_stats(q).0
    }

    /// [`DataStore::query_flows`] plus its [`QueryStats`].
    pub fn query_flows_with_stats(&self, q: &FlowQuery) -> (Vec<&FlowRecord>, QueryStats) {
        let limit = q.limit.unwrap_or(usize::MAX);
        self.flows.query_overlap(q.time_ns.as_ref(), |f| q.matches(f), limit, true)
    }

    /// Full-scan flow query — the differential baseline for
    /// [`DataStore::query_flows`].
    pub fn scan_flows(&self, q: &FlowQuery) -> Vec<&FlowRecord> {
        let limit = q.limit.unwrap_or(usize::MAX);
        self.flows.query_overlap(q.time_ns.as_ref(), |f| q.matches(f), limit, false).0
    }

    /// Drop all records older than `cutoff_ns` (retention enforcement).
    /// Whole segments fall off the chain in O(1) each; only segments
    /// straddling the cutoff pay a rebuild — O(segments), not O(records).
    pub fn retain_since(&mut self, cutoff_ns: u64) {
        let mut dropped = self.packets.retain_since(cutoff_ns);
        dropped += self.flows.retain_end_since(cutoff_ns);
        dropped += self.dns.retain_end_since(cutoff_ns);
        dropped += self.sensors.retain_end_since(cutoff_ns);
        self.obs.on_retired(dropped);
        self.publish_segment_gauges();
    }

    /// Approximate storage footprint.
    pub fn storage(&self) -> StorageReport {
        let packet_records = self.packet_count() as u64;
        let flow_records = self.flow_count() as u64;
        let dns_records = self.dns_count() as u64;
        let sensor_records = self.sensor_count() as u64;
        StorageReport {
            packet_records,
            flow_records,
            dns_records,
            sensor_records,
            approx_bytes: packet_records * PACKET_RECORD_BYTES
                + flow_records * FLOW_RECORD_BYTES
                + dns_records * DNS_RECORD_BYTES
                + sensor_records * SENSOR_RECORD_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};
    use std::net::IpAddr;

    fn rec(ts: u64, src: [u8; 4], dst: [u8; 4], dport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from(src),
            dst: IpAddr::from(dst),
            protocol: 17,
            src_port: 53,
            dst_port: dport,
            wire_len: 100,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    fn populated() -> DataStore {
        let mut ds = DataStore::new();
        let mut batch = Vec::new();
        for i in 0..1000u64 {
            batch.push(rec(
                i * 1000,
                [10, 1, 1, (i % 50) as u8],
                [203, 0, 113, (i % 10) as u8],
                (i % 5) as u16 + 440,
                u16::from(i % 20 == 0),
            ));
        }
        ds.ingest_packets(batch);
        ds
    }

    #[test]
    fn query_equals_scan_on_every_shape() {
        let ds = populated();
        let queries = vec![
            PacketQuery::for_host("10.1.1.7".parse().unwrap()),
            PacketQuery::in_window(100_000, 500_000),
            PacketQuery::default().port(441),
            PacketQuery::default().malicious(),
            PacketQuery::for_host("10.1.1.7".parse().unwrap()).window(0, 400_000),
            PacketQuery::default().port(442).malicious(),
        ];
        for q in queries {
            let via_index: Vec<u64> = ds.query_packets(&q).iter().map(|r| r.ts_ns).collect();
            let via_scan: Vec<u64> = ds.scan_packets(&q).iter().map(|r| r.ts_ns).collect();
            assert_eq!(via_index, via_scan, "mismatch for {q:?}");
        }
    }

    #[test]
    fn out_of_order_batches_are_merged() {
        let mut ds = DataStore::new();
        ds.ingest_packets(vec![rec(5_000, [1, 1, 1, 1], [2, 2, 2, 2], 80, 0)]);
        ds.ingest_packets(vec![rec(1_000, [1, 1, 1, 1], [2, 2, 2, 2], 80, 0)]);
        let ts: Vec<u64> = ds.iter_packets().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![1_000, 5_000]);
        // Indexes still agree with a scan after the reorder.
        let q = PacketQuery::for_host("1.1.1.1".parse().unwrap());
        assert_eq!(ds.query_packets(&q).len(), ds.scan_packets(&q).len());
    }

    #[test]
    fn limit_caps_results() {
        let ds = populated();
        let q = PacketQuery { limit: Some(7), ..Default::default() };
        assert_eq!(ds.query_packets(&q).len(), 7);
    }

    #[test]
    fn retention_drops_old_records_and_stays_consistent() {
        let mut ds = populated();
        let before = ds.storage();
        ds.retain_since(500_000);
        let after = ds.storage();
        assert!(after.packet_records < before.packet_records);
        assert_eq!(after.packet_records, 500);
        assert_eq!(ds.obs.retired_records(), 500);
        // Queries remain consistent post-retention.
        let q = PacketQuery::default().malicious();
        let idx: Vec<u64> = ds.query_packets(&q).iter().map(|r| r.ts_ns).collect();
        let scan: Vec<u64> = ds.scan_packets(&q).iter().map(|r| r.ts_ns).collect();
        assert_eq!(idx, scan);
        assert!(idx.iter().all(|&t| t >= 500_000));
    }

    #[test]
    fn storage_report_accounts_all_tables() {
        let mut ds = populated();
        ds.ingest_sensors(vec![SensorRecord::ConfigChange {
            ts_ns: 1,
            device: "border".into(),
            summary: "acl".into(),
        }]);
        let s = ds.storage();
        assert_eq!(s.packet_records, 1000);
        assert_eq!(s.sensor_records, 1);
        assert!(s.approx_bytes > 96 * 1000);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted windows are the point
    fn inverted_or_empty_time_window_returns_empty_not_panic() {
        let ds = populated();
        // start > end (inverted) used to slice with lo > hi and abort.
        for q in [
            PacketQuery::in_window(500_000, 100_000),
            PacketQuery::in_window(100_000, 100_000),
            PacketQuery::for_host("10.1.1.7".parse().unwrap()).window(500_000, 100_000),
            PacketQuery::default().malicious().window(u64::MAX, 0),
        ] {
            assert!(ds.query_packets(&q).is_empty(), "{q:?}");
            assert!(ds.scan_packets(&q).is_empty(), "{q:?}");
        }
        let inverted = FlowQuery { time_ns: Some(10..5), ..Default::default() };
        assert!(ds.query_flows(&inverted).is_empty());
    }

    #[test]
    fn time_window_uses_sorted_order() {
        let ds = populated();
        let q = PacketQuery::in_window(10_000, 20_000);
        let hits = ds.query_packets(&q);
        assert_eq!(hits.len(), 10);
        assert!(hits.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn observed_queries_book_into_obs() {
        let mut ds = populated();
        let q = PacketQuery::for_host("10.1.1.7".parse().unwrap());
        let (hits, stats) = ds.query_packets_observed(&q);
        assert_eq!(stats.hits, hits.len());
        let (_, scan_stats) = ds.scan_packets_observed(&q);
        assert_eq!(ds.obs.queries_indexed(), 1);
        assert_eq!(ds.obs.queries_scan(), 1);
        assert!(stats.records_examined <= scan_stats.records_examined);
        assert_eq!(ds.obs.ingested_packets(), 1000);
        assert_eq!(ds.obs.packet_segments(), ds.packet_segment_count() as i64);
    }

    #[test]
    fn batch_ingest_matches_sequential_ingest() {
        let batches: Vec<Vec<PacketRecord>> = (0..8u64)
            .map(|b| {
                (0..300u64)
                    .map(|i| {
                        rec(
                            b * 300_000 + i * 1000,
                            [10, 1, 1, (i % 40) as u8],
                            [203, 0, 113, 1],
                            443,
                            0,
                        )
                    })
                    .collect()
            })
            .collect();
        let mut seq = DataStore::new();
        for b in batches.clone() {
            seq.ingest_packets(b);
        }
        let mut par = DataStore::new();
        par.ingest_packet_batches_with(batches, 4);
        assert_eq!(seq.storage(), par.storage());
        let a: Vec<&PacketRecord> = seq.iter_packets().collect();
        let b: Vec<&PacketRecord> = par.iter_packets().collect();
        assert_eq!(a, b);
    }
}
