//! Persistence: the data store survives process restarts (a week of
//! retention is the paper's example sizing; a store you can't reload is a
//! cache, not a store). JSON-lines-free single-document format, versioned.

use crate::store::DataStore;
use campuslab_capture::{DnsMetaRecord, FlowRecord, PacketRecord, SensorRecord};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Current on-disk format version.
const FORMAT_VERSION: u32 = 1;

/// The serialized snapshot.
#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    packets: Vec<PacketRecord>,
    flows: Vec<FlowRecord>,
    dns: Vec<DnsMetaRecord>,
    sensors: Vec<SensorRecord>,
}

/// Errors while saving/loading a store.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Format(serde_json::Error),
    /// The file is a future (or corrupt) version.
    Version { found: u32, supported: u32 },
    /// The bytes violate the format or the records violate store
    /// invariants. Corruption must come back as `Err`, never abort the
    /// process. `segment`/`offset` locate the damage when the source is
    /// the segment-granular WAL (`None` for the single-document snapshot):
    /// the segment file id and the byte offset of the first bad frame.
    Corrupt { what: String, segment: Option<u64>, offset: Option<u64> },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(e) => write!(f, "format error: {e}"),
            PersistError::Version { found, supported } => {
                write!(f, "unsupported store version {found} (supported {supported})")
            }
            PersistError::Corrupt { what, segment: Some(seg), offset: Some(off) } => {
                write!(f, "corrupt segment {seg} at byte {off}: {what}")
            }
            PersistError::Corrupt { what, .. } => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serialize a store to a writer.
pub fn save<W: Write>(ds: &DataStore, mut out: W) -> Result<(), PersistError> {
    let snapshot = Snapshot {
        version: FORMAT_VERSION,
        packets: ds.iter_packets().cloned().collect(),
        flows: ds.iter_flows().cloned().collect(),
        dns: ds.iter_dns().cloned().collect(),
        sensors: ds.iter_sensors().cloned().collect(),
    };
    serde_json::to_writer(&mut out, &snapshot)?;
    out.flush()?;
    Ok(())
}

/// Reject snapshots whose records violate invariants the store (and every
/// consumer downstream of it) relies on. The input is untrusted bytes off
/// a disk: a bit flip must surface as `Err`, not as a panic three crates
/// later.
fn validate(snapshot: &Snapshot) -> Result<(), PersistError> {
    if snapshot.version == 0 {
        return Err(PersistError::Corrupt {
            what: "version 0 is never written".into(),
            segment: None,
            offset: None,
        });
    }
    for (i, f) in snapshot.flows.iter().enumerate() {
        if f.last_ts_ns < f.first_ts_ns {
            return Err(PersistError::Corrupt {
                what: format!(
                    "flow {i} ends before it starts ({} < {})",
                    f.last_ts_ns, f.first_ts_ns
                ),
                segment: None,
                offset: None,
            });
        }
        if f.total_packets() == 0 {
            return Err(PersistError::Corrupt {
                what: format!("flow {i} carries no packets"),
                segment: None,
                offset: None,
            });
        }
        if f.min_len > f.max_len {
            return Err(PersistError::Corrupt {
                what: format!("flow {i} min_len {} > max_len {}", f.min_len, f.max_len),
                segment: None,
                offset: None,
            });
        }
    }
    Ok(())
}

/// Load a store from a reader, rebuilding all indexes.
pub fn load<R: Read>(input: R) -> Result<DataStore, PersistError> {
    let snapshot: Snapshot = serde_json::from_reader(input)?;
    if snapshot.version > FORMAT_VERSION {
        return Err(PersistError::Version {
            found: snapshot.version,
            supported: FORMAT_VERSION,
        });
    }
    validate(&snapshot)?;
    let mut ds = DataStore::new();
    ds.ingest_packets(snapshot.packets);
    ds.ingest_flows(snapshot.flows);
    ds.ingest_dns(snapshot.dns);
    ds.ingest_sensors(snapshot.sensors);
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PacketQuery;
    use campuslab_capture::{Direction, TcpFlags};
    use std::net::IpAddr;

    fn store_with(n: u64) -> DataStore {
        let mut ds = DataStore::new();
        ds.ingest_packets(
            (0..n)
                .map(|i| PacketRecord {
                    ts_ns: i * 1_000,
                    direction: Direction::Inbound,
                    src: IpAddr::from([10, 1, 1, (i % 200) as u8]),
                    dst: IpAddr::from([203, 0, 113, 1]),
                    protocol: 17,
                    src_port: 53,
                    dst_port: 40_000,
                    wire_len: 100 + (i % 500) as u32,
                    ttl: 60,
                    tcp_flags: TcpFlags::default(),
                    flow_id: i,
                    label_app: 1,
                    label_attack: u16::from(i % 9 == 0),
                })
                .collect(),
        );
        ds.ingest_sensors(vec![SensorRecord::ConfigChange {
            ts_ns: 5,
            device: "border".into(),
            summary: "acl change".into(),
        }]);
        ds
    }

    #[test]
    fn round_trip_preserves_everything_and_indexes() {
        let ds = store_with(500);
        let mut buf = Vec::new();
        save(&ds, &mut buf).unwrap();
        let loaded = load(&buf[..]).unwrap();
        let a: Vec<&PacketRecord> = loaded.iter_packets().collect();
        let b: Vec<&PacketRecord> = ds.iter_packets().collect();
        assert_eq!(a, b);
        let sa: Vec<&SensorRecord> = loaded.iter_sensors().collect();
        let sb: Vec<&SensorRecord> = ds.iter_sensors().collect();
        assert_eq!(sa, sb);
        // Indexes were rebuilt: queries agree with scans.
        let q = PacketQuery::for_host("10.1.1.7".parse().unwrap()).malicious();
        let idx: Vec<u64> = loaded.query_packets(&q).iter().map(|r| r.ts_ns).collect();
        let scan: Vec<u64> = loaded.scan_packets(&q).iter().map(|r| r.ts_ns).collect();
        assert_eq!(idx, scan);
    }

    #[test]
    fn future_version_is_rejected() {
        let ds = store_with(3);
        let mut buf = Vec::new();
        save(&ds, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace("\"version\":1", "\"version\":999");
        match load(text.as_bytes()) {
            Err(PersistError::Version { found: 999, supported: 1 }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_a_format_error() {
        assert!(matches!(
            load(&b"not json"[..]),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn corrupt_flow_records_return_err_not_abort() {
        let mut ds = store_with(2);
        ds.ingest_flows(vec![campuslab_capture::FlowRecord {
            key: campuslab_capture::FlowKey {
                src: "10.1.1.1".parse().unwrap(),
                dst: "203.0.113.1".parse().unwrap(),
                protocol: 17,
                src_port: 53,
                dst_port: 40_000,
            },
            first_ts_ns: 9_000,
            last_ts_ns: 9_500,
            fwd_packets: 3,
            fwd_bytes: 300,
            rev_packets: 0,
            rev_bytes: 0,
            syn_count: 0,
            fin_count: 0,
            rst_count: 0,
            mean_iat_ns: 10,
            min_len: 60,
            max_len: 100,
            label_app: 1,
            label_attack: 0,
        }]);
        let mut buf = Vec::new();
        save(&ds, &mut buf).unwrap();
        // Flip the flow's timestamps so it ends before it starts.
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("\"first_ts_ns\":9000", "\"first_ts_ns\":9999999");
        match load(text.as_bytes()) {
            Err(PersistError::Corrupt { what, segment: None, offset: None }) => {
                assert!(what.contains("ends before it starts"), "{what}");
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
    }

    #[test]
    fn version_zero_is_corrupt() {
        let ds = store_with(1);
        let mut buf = Vec::new();
        save(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replace("\"version\":1", "\"version\":0");
        assert!(matches!(load(text.as_bytes()), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn empty_store_round_trips() {
        let ds = DataStore::new();
        let mut buf = Vec::new();
        save(&ds, &mut buf).unwrap();
        let loaded = load(&buf[..]).unwrap();
        assert_eq!(loaded.packet_count(), 0);
    }
}
