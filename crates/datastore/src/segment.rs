//! Time-partitioned storage segments: the store's physical layout.
//!
//! Ingest lands records in per-record-type chains of **segments**. Each
//! segment is internally sorted by `(ts_ns, seq)` — `seq` being the global
//! ingest sequence number, so records captured at the same nanosecond keep
//! their capture order deterministically — and carries its time bounds.
//! Packet segments additionally carry per-host and per-port Bloom-style
//! membership summaries plus exact in-segment postings, so a query plans
//! as *prune segments → binary-search the window → filter*, and retention
//! truncates whole segments instead of compacting one flat table.
//!
//! Batch ingest shards segment construction across worker threads with
//! [`campuslab_netsim::par::parallel_map_vec`]: each worker *owns* its
//! batch, sorts it in place and moves the records into segments, so the
//! parallel path allocates no more than the sequential one. Construction
//! of one segment depends only on its own chunk and the pre-assigned
//! sequence range, so the resulting store is byte-identical at any worker
//! count (the same contract the experiment runner keeps, pinned by
//! `tests/par_ingest.rs`).

use crate::query::{PacketQuery, QueryStats};
use campuslab_capture::{DnsMetaRecord, FlowRecord, FxHashMap, PacketRecord, SensorRecord};
use campuslab_netsim::fxhash::FxHasher;
use campuslab_netsim::par;
use std::hash::{Hash, Hasher as _};
use std::net::IpAddr;
use std::ops::Range;

/// Records per sealed packet segment. Small enough that a boundary
/// truncation or a single-segment scan stays cheap, large enough that
/// segment metadata (bounds, blooms, postings) amortizes.
pub const SEGMENT_CAPACITY: usize = 4096;

/// Global ordering key: capture timestamp, then ingest sequence.
type Key = (u64, u64);

/// Deterministic Fx hash of any hashable key (addresses, ports). The
/// store must never use SipHash's per-process randomness: segment
/// summaries have to come out identical across runs and machines.
fn fx_key<T: Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Bloom-style membership summary
// ---------------------------------------------------------------------------

const BLOOM_BITS: u64 = 4096;
const BLOOM_WORDS: usize = (BLOOM_BITS / 64) as usize;

/// A fixed-size, two-probe Bloom membership summary. False positives only
/// cost a postings lookup; false negatives are impossible, so pruning on
/// `may_contain == false` is always sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Bloom {
    words: [u64; BLOOM_WORDS],
}

impl Bloom {
    fn new() -> Self {
        Bloom { words: [0; BLOOM_WORDS] }
    }

    /// Two probe bit positions from independent halves of the 64-bit key.
    fn probes(key: u64) -> (u64, u64) {
        (key % BLOOM_BITS, (key >> 32) % BLOOM_BITS)
    }

    fn insert(&mut self, key: u64) {
        let (a, b) = Self::probes(key);
        self.words[(a / 64) as usize] |= 1 << (a % 64);
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    fn may_contain(&self, key: u64) -> bool {
        let (a, b) = Self::probes(key);
        self.words[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

// ---------------------------------------------------------------------------
// Packet segments
// ---------------------------------------------------------------------------

/// Read-only shape of one packet segment, for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    pub records: usize,
    pub min_ts_ns: u64,
    pub max_ts_ns: u64,
}

/// One sealed (or still-filling) run of packet records, sorted by
/// `(ts_ns, seq)`, with membership summaries and exact postings.
#[derive(Debug, Clone)]
pub(crate) struct PacketSegment {
    recs: Vec<PacketRecord>,
    seqs: Vec<u64>,
    hosts: Bloom,
    ports: Bloom,
    by_host: FxHashMap<IpAddr, Vec<u32>>,
    by_port: FxHashMap<u16, Vec<u32>>,
    attack: Vec<u32>,
}

/// What a segment offers a query after pruning: exact postings positions
/// (already window-sliced) or a contiguous record range.
enum Candidates<'a> {
    Positions(&'a [u32]),
    Range(Range<usize>),
}

impl PacketSegment {
    fn empty() -> Self {
        PacketSegment {
            recs: Vec::new(),
            seqs: Vec::new(),
            hosts: Bloom::new(),
            ports: Bloom::new(),
            by_host: FxHashMap::default(),
            by_port: FxHashMap::default(),
            attack: Vec::new(),
        }
    }

    /// Build a segment from owned `(record, seq)` pairs already sorted by
    /// `(ts_ns, seq)`; records move straight into the segment.
    fn build_from_pairs(pairs: Vec<(PacketRecord, u64)>) -> Self {
        let mut seg = PacketSegment::empty();
        seg.recs.reserve(pairs.len());
        seg.seqs.reserve(pairs.len());
        for (rec, seq) in pairs {
            seg.push(rec, seq);
        }
        seg
    }

    /// Append one record; the caller guarantees `(rec.ts_ns, seq)` is
    /// greater than every key already present.
    fn push(&mut self, rec: PacketRecord, seq: u64) {
        debug_assert!(
            self.recs.last().map(|l| (l.ts_ns, *self.seqs.last().unwrap()) < (rec.ts_ns, seq)).unwrap_or(true),
            "segment append out of (ts, seq) order"
        );
        let pos = self.recs.len() as u32;
        self.hosts.insert(fx_key(&rec.src));
        self.by_host.entry(rec.src).or_default().push(pos);
        if rec.dst != rec.src {
            self.hosts.insert(fx_key(&rec.dst));
            self.by_host.entry(rec.dst).or_default().push(pos);
        }
        self.ports.insert(fx_key(&rec.dst_port));
        self.by_port.entry(rec.dst_port).or_default().push(pos);
        if rec.is_malicious() {
            self.attack.push(pos);
        }
        self.recs.push(rec);
        self.seqs.push(seq);
    }

    pub(crate) fn len(&self) -> usize {
        self.recs.len()
    }

    fn min_ts(&self) -> u64 {
        self.recs.first().map(|r| r.ts_ns).unwrap_or(0)
    }

    fn max_ts(&self) -> u64 {
        self.recs.last().map(|r| r.ts_ns).unwrap_or(0)
    }

    pub(crate) fn stats(&self) -> SegmentStats {
        SegmentStats { records: self.len(), min_ts_ns: self.min_ts(), max_ts_ns: self.max_ts() }
    }

    /// Slice sorted postings positions down to the query window (postings
    /// follow record order, so their timestamps are non-decreasing).
    fn window_positions<'a>(&self, pos: &'a [u32], time: Option<&Range<u64>>) -> &'a [u32] {
        match time {
            None => pos,
            Some(r) => {
                let lo = pos.partition_point(|&i| self.recs[i as usize].ts_ns < r.start);
                let hi = pos.partition_point(|&i| self.recs[i as usize].ts_ns < r.end);
                &pos[lo..hi]
            }
        }
    }

    /// Plan this segment's contribution to `q`: `None` means the whole
    /// segment is pruned (time bounds, Bloom summary, or empty postings).
    /// The caller guarantees a non-inverted time window.
    fn candidates(&self, q: &PacketQuery) -> Option<Candidates<'_>> {
        let time = q.time_ns.as_ref();
        if let Some(r) = time {
            if self.max_ts() < r.start || self.min_ts() >= r.end {
                return None;
            }
        }
        if let Some(h) = q.host.or(q.src).or(q.dst) {
            if !self.hosts.may_contain(fx_key(&h)) {
                return None;
            }
            let pos = self.window_positions(self.by_host.get(&h)?.as_slice(), time);
            return (!pos.is_empty()).then_some(Candidates::Positions(pos));
        }
        if let Some(p) = q.dst_port {
            if !self.ports.may_contain(fx_key(&p)) {
                return None;
            }
            let pos = self.window_positions(self.by_port.get(&p)?.as_slice(), time);
            return (!pos.is_empty()).then_some(Candidates::Positions(pos));
        }
        if q.malicious_only {
            let pos = self.window_positions(&self.attack, time);
            return (!pos.is_empty()).then_some(Candidates::Positions(pos));
        }
        let range = match time {
            Some(r) => {
                let lo = self.recs.partition_point(|rec| rec.ts_ns < r.start);
                let hi = self.recs.partition_point(|rec| rec.ts_ns < r.end);
                lo..hi
            }
            None => 0..self.recs.len(),
        };
        (!range.is_empty()).then_some(Candidates::Range(range))
    }

    /// Drop every record with `ts_ns < cutoff`; rebuilds the segment's
    /// postings and summaries. Returns how many records went.
    fn truncate_before(&mut self, cutoff_ns: u64) -> usize {
        let cut = self.recs.partition_point(|r| r.ts_ns < cutoff_ns);
        if cut == 0 {
            return 0;
        }
        let recs = self.recs.split_off(cut);
        let seqs = self.seqs.split_off(cut);
        *self = PacketSegment::empty();
        for (rec, seq) in recs.into_iter().zip(seqs) {
            self.push(rec, seq);
        }
        cut
    }
}

// ---------------------------------------------------------------------------
// The packet chain
// ---------------------------------------------------------------------------

/// The packet table: a chain of segments plus the global sequence counter.
#[derive(Debug, Clone, Default)]
pub(crate) struct PacketChain {
    segs: Vec<PacketSegment>,
    next_seq: u64,
}

/// Pair a batch with fresh sequence numbers (capture order), then sort by
/// `(ts_ns, seq)`. The sort is stable in effect: equal timestamps keep
/// ingest-arrival order because their seqs are already ascending.
fn sort_pairs(batch: Vec<PacketRecord>, start_seq: u64) -> Vec<(PacketRecord, u64)> {
    let mut pairs: Vec<(PacketRecord, u64)> =
        batch.into_iter().zip(start_seq..).collect();
    pairs.sort_by_key(|(r, s)| (r.ts_ns, *s));
    pairs
}

/// Build the sealed segments for one sorted batch, chunked at capacity.
/// The batch is consumed: chunks are split off and moved into segments.
fn build_segments(mut pairs: Vec<(PacketRecord, u64)>, workers: usize) -> Vec<PacketSegment> {
    let mut chunks: Vec<Vec<(PacketRecord, u64)>> = Vec::new();
    while pairs.len() > SEGMENT_CAPACITY {
        let tail = pairs.split_off(SEGMENT_CAPACITY);
        chunks.push(std::mem::replace(&mut pairs, tail));
    }
    chunks.push(pairs);
    let workers = workers.min(chunks.len());
    par::parallel_map_vec(chunks, workers, |_, c| PacketSegment::build_from_pairs(c))
}

impl PacketChain {
    /// Ingest one batch. Batches may arrive unsorted; the batch is sorted
    /// by `(ts_ns, seq)` and either appended to the trailing segment (when
    /// it fits and does not travel back in time) or landed as fresh
    /// segments — never by re-sorting the whole table.
    pub fn ingest(&mut self, batch: Vec<PacketRecord>) {
        if batch.is_empty() {
            return;
        }
        let start = self.next_seq;
        self.next_seq += batch.len() as u64;
        let pairs = sort_pairs(batch, start);
        if let Some(last) = self.segs.last_mut() {
            if last.len() + pairs.len() <= SEGMENT_CAPACITY && pairs[0].0.ts_ns >= last.max_ts() {
                for (rec, seq) in pairs {
                    last.push(rec, seq);
                }
                return;
            }
        }
        let workers = par::worker_count(pairs.len() / SEGMENT_CAPACITY + 1);
        self.segs.extend(build_segments(pairs, workers));
    }

    /// Ingest many batches, sharding segment construction across `workers`
    /// threads. Each batch owns a pre-assigned sequence range and builds
    /// its segments independently, so the chain is byte-identical at any
    /// worker count and appends in batch order.
    pub fn ingest_batches(&mut self, batches: Vec<Vec<PacketRecord>>, workers: usize) {
        let mut items: Vec<(Vec<PacketRecord>, u64)> = Vec::with_capacity(batches.len());
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            let start = self.next_seq;
            self.next_seq += batch.len() as u64;
            items.push((batch, start));
        }
        let built: Vec<Vec<PacketSegment>> =
            par::parallel_map_vec(items, workers, |_, (batch, start)| {
                build_segments(sort_pairs(batch, start), 1)
            });
        for segs in built {
            self.segs.extend(segs);
        }
    }

    pub fn count(&self) -> usize {
        self.segs.iter().map(|s| s.len()).sum()
    }

    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        self.segs.iter().map(|s| s.stats()).collect()
    }

    /// All records in global `(ts_ns, seq)` order.
    pub fn iter_seq(&self) -> OrderedIter<'_, PacketRecord> {
        ordered_iter(self.segs.iter().map(|s| (s.recs.as_slice(), s.seqs.as_slice())).collect())
    }

    /// Indexed query: prune segments, binary-search windows, filter.
    pub fn query(&self, q: &PacketQuery) -> (Vec<&PacketRecord>, QueryStats) {
        let mut stats = QueryStats { segments_total: self.segs.len(), ..QueryStats::default() };
        // An inverted or empty window matches nothing; prune everything
        // before the binary-search slicing below would slice lo > hi.
        // Queries are untrusted input.
        if q.time_ns.as_ref().is_some_and(|r| r.start >= r.end) {
            stats.segments_pruned = stats.segments_total;
            return (Vec::new(), stats);
        }
        let limit = q.limit.unwrap_or(usize::MAX);
        let mut lists: Vec<Vec<(Key, &PacketRecord)>> = Vec::new();
        for seg in &self.segs {
            let Some(cand) = seg.candidates(q) else {
                stats.segments_pruned += 1;
                continue;
            };
            let mut hits: Vec<(Key, &PacketRecord)> = Vec::new();
            // Positions and ranges walk the same examine-filter loop; the
            // iterator erases which plan fed it.
            let positions: Box<dyn Iterator<Item = usize>> = match cand {
                Candidates::Positions(ps) => Box::new(ps.iter().map(|&p| p as usize)),
                Candidates::Range(range) => Box::new(range),
            };
            for i in positions {
                if hits.len() >= limit {
                    break;
                }
                stats.records_examined += 1;
                let r = &seg.recs[i];
                if q.matches(r) {
                    hits.push(((r.ts_ns, seg.seqs[i]), r));
                }
            }
            if !hits.is_empty() {
                lists.push(hits);
            }
        }
        let merged = merge_lists(lists, limit);
        stats.hits = merged.len();
        (merged, stats)
    }

    /// Full linear scan in global order — the honest baseline every
    /// indexed query is differential-tested (and benchmarked) against.
    pub fn scan(&self, q: &PacketQuery) -> (Vec<&PacketRecord>, QueryStats) {
        let mut stats = QueryStats { segments_total: self.segs.len(), ..QueryStats::default() };
        let limit = q.limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        for (_, r) in self.iter_seq() {
            if out.len() >= limit {
                break;
            }
            stats.records_examined += 1;
            if q.matches(r) {
                out.push(r);
            }
        }
        stats.hits = out.len();
        (out, stats)
    }

    /// Retention: whole segments older than the cutoff drop in O(1) each;
    /// at most the boundary segments pay a rebuild. Returns records dropped.
    pub fn retain_since(&mut self, cutoff_ns: u64) -> u64 {
        let mut dropped = 0u64;
        self.segs.retain_mut(|seg| {
            if seg.max_ts() < cutoff_ns {
                dropped += seg.len() as u64;
                false
            } else if seg.min_ts() >= cutoff_ns {
                true
            } else {
                dropped += seg.truncate_before(cutoff_ns) as u64;
                seg.len() > 0
            }
        });
        dropped
    }
}

// ---------------------------------------------------------------------------
// Generic time chains (flows, DNS metadata, sensor events)
// ---------------------------------------------------------------------------

/// Record types the chains can order and prune by: a start timestamp
/// (the sort key) and an end timestamp (the retention key). Point records
/// report the same value for both.
pub trait TimeSpan {
    fn start_ns(&self) -> u64;
    fn end_ns(&self) -> u64;
}

impl TimeSpan for PacketRecord {
    fn start_ns(&self) -> u64 {
        self.ts_ns
    }
    fn end_ns(&self) -> u64 {
        self.ts_ns
    }
}

impl TimeSpan for FlowRecord {
    fn start_ns(&self) -> u64 {
        self.first_ts_ns
    }
    fn end_ns(&self) -> u64 {
        self.last_ts_ns
    }
}

impl TimeSpan for DnsMetaRecord {
    fn start_ns(&self) -> u64 {
        self.ts_ns
    }
    fn end_ns(&self) -> u64 {
        self.ts_ns
    }
}

impl TimeSpan for SensorRecord {
    fn start_ns(&self) -> u64 {
        self.ts_ns()
    }
    fn end_ns(&self) -> u64 {
        self.ts_ns()
    }
}

/// One run of records sorted by `(start_ns, seq)` with cached span bounds.
#[derive(Debug, Clone)]
struct ChainSegment<T> {
    recs: Vec<T>,
    seqs: Vec<u64>,
    /// Smallest `end_ns` in the segment (retention fast path).
    min_end_ns: u64,
    /// Largest `end_ns` in the segment (retention / overlap pruning).
    max_end_ns: u64,
}

impl<T: TimeSpan> ChainSegment<T> {
    fn from_pairs(pairs: Vec<(T, u64)>) -> Self {
        let mut seg = ChainSegment {
            recs: Vec::with_capacity(pairs.len()),
            seqs: Vec::with_capacity(pairs.len()),
            min_end_ns: u64::MAX,
            max_end_ns: 0,
        };
        for (rec, seq) in pairs {
            seg.push(rec, seq);
        }
        seg
    }

    fn push(&mut self, rec: T, seq: u64) {
        self.min_end_ns = self.min_end_ns.min(rec.end_ns());
        self.max_end_ns = self.max_end_ns.max(rec.end_ns());
        self.recs.push(rec);
        self.seqs.push(seq);
    }

    fn min_start(&self) -> u64 {
        self.recs.first().map(|r| r.start_ns()).unwrap_or(0)
    }

    fn max_start(&self) -> u64 {
        self.recs.last().map(|r| r.start_ns()).unwrap_or(0)
    }
}

/// A chain of time-ordered segments for one record type.
#[derive(Debug, Clone)]
pub(crate) struct TimeChain<T> {
    segs: Vec<ChainSegment<T>>,
    next_seq: u64,
    capacity: usize,
}

impl<T: TimeSpan> Default for TimeChain<T> {
    fn default() -> Self {
        TimeChain { segs: Vec::new(), next_seq: 0, capacity: SEGMENT_CAPACITY }
    }
}

impl<T: TimeSpan> TimeChain<T> {
    pub fn ingest(&mut self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let start = self.next_seq;
        self.next_seq += batch.len() as u64;
        let mut pairs: Vec<(T, u64)> = batch.into_iter().zip(start..).collect();
        pairs.sort_by_key(|(r, s)| (r.start_ns(), *s));
        if let Some(last) = self.segs.last_mut() {
            if last.recs.len() + pairs.len() <= self.capacity
                && pairs[0].0.start_ns() >= last.max_start()
            {
                for (rec, seq) in pairs {
                    last.push(rec, seq);
                }
                return;
            }
        }
        let mut pairs = pairs;
        while !pairs.is_empty() {
            let rest = pairs.split_off(pairs.len().min(self.capacity));
            self.segs.push(ChainSegment::from_pairs(pairs));
            pairs = rest;
        }
    }

    pub fn count(&self) -> usize {
        self.segs.iter().map(|s| s.recs.len()).sum()
    }

    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// All records in global `(start_ns, seq)` order.
    pub fn iter_seq(&self) -> OrderedIter<'_, T> {
        ordered_iter(self.segs.iter().map(|s| (s.recs.as_slice(), s.seqs.as_slice())).collect())
    }

    /// Run `matches` over the chain in global order. With `prune` set,
    /// segments outside the overlap window are skipped wholesale and each
    /// candidate segment stops at the first record starting past the
    /// window's end (records are start-sorted); without it, this is the
    /// full-scan baseline.
    pub fn query_overlap<F>(
        &self,
        time: Option<&Range<u64>>,
        matches: F,
        limit: usize,
        prune: bool,
    ) -> (Vec<&T>, QueryStats)
    where
        F: Fn(&T) -> bool,
    {
        // No inverted-window special case here: overlap matching is
        // `last >= start && first < end`, which a long-lived span can
        // satisfy even when start > end, and both prune checks below stay
        // sound for such ranges (pinned by the flow differential test).
        let mut stats = QueryStats { segments_total: self.segs.len(), ..QueryStats::default() };
        let mut lists: Vec<Vec<(Key, &T)>> = Vec::new();
        for seg in &self.segs {
            let hi = match (prune, time) {
                (true, Some(r)) => {
                    if seg.max_end_ns < r.start || seg.min_start() >= r.end {
                        stats.segments_pruned += 1;
                        continue;
                    }
                    seg.recs.partition_point(|rec| rec.start_ns() < r.end)
                }
                _ => seg.recs.len(),
            };
            let mut hits: Vec<(Key, &T)> = Vec::new();
            for i in 0..hi {
                if hits.len() >= limit {
                    break;
                }
                stats.records_examined += 1;
                let r = &seg.recs[i];
                if matches(r) {
                    hits.push(((r.start_ns(), seg.seqs[i]), r));
                }
            }
            if !hits.is_empty() {
                lists.push(hits);
            }
        }
        let merged = merge_lists(lists, limit);
        stats.hits = merged.len();
        (merged, stats)
    }

    /// Retention by end timestamp: whole segments drop in O(1) each;
    /// straddling segments filter in place. Returns records dropped.
    pub fn retain_end_since(&mut self, cutoff_ns: u64) -> u64 {
        let mut dropped = 0u64;
        self.segs.retain_mut(|seg| {
            if seg.max_end_ns < cutoff_ns {
                dropped += seg.recs.len() as u64;
                false
            } else if seg.min_end_ns >= cutoff_ns {
                true
            } else {
                let before = seg.recs.len();
                let mut kept_recs = Vec::with_capacity(before);
                let mut kept_seqs = Vec::with_capacity(before);
                let mut min_end = u64::MAX;
                let mut max_end = 0u64;
                for (rec, seq) in seg.recs.drain(..).zip(seg.seqs.drain(..)) {
                    if rec.end_ns() >= cutoff_ns {
                        min_end = min_end.min(rec.end_ns());
                        max_end = max_end.max(rec.end_ns());
                        kept_recs.push(rec);
                        kept_seqs.push(seq);
                    }
                }
                dropped += (before - kept_recs.len()) as u64;
                seg.recs = kept_recs;
                seg.seqs = kept_seqs;
                seg.min_end_ns = min_end;
                seg.max_end_ns = max_end;
                !seg.recs.is_empty()
            }
        });
        dropped
    }
}

// ---------------------------------------------------------------------------
// Ordered merge machinery
// ---------------------------------------------------------------------------

/// Merge per-segment hit lists (each sorted by key) into one key-ordered
/// result. Disjoint lists — the overwhelmingly common case, since the
/// chain seals segments in time order — concatenate; overlapping lists
/// (out-of-order ingest) take a k-way merge.
fn merge_lists<'a, T>(mut lists: Vec<Vec<(Key, &'a T)>>, limit: usize) -> Vec<&'a T> {
    lists.retain(|l| !l.is_empty());
    lists.sort_by_key(|l| l[0].0);
    let disjoint = lists.windows(2).all(|w| w[0].last().unwrap().0 < w[1][0].0);
    let mut out: Vec<&'a T> = if disjoint {
        lists.into_iter().flatten().map(|(_, r)| r).collect()
    } else {
        let mut cursors = vec![0usize; lists.len()];
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut merged = Vec::with_capacity(total.min(limit));
        while merged.len() < limit {
            let mut best: Option<(Key, usize)> = None;
            for (i, l) in lists.iter().enumerate() {
                if cursors[i] < l.len() {
                    let k = l[cursors[i]].0;
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            merged.push(lists[i][cursors[i]].1);
            cursors[i] += 1;
        }
        merged
    };
    out.truncate(limit);
    out
}

/// Iterator over many sorted `(records, seqs)` parts in global
/// `(start_ns, seq)` order. Disjoint parts stream with two cursors; the
/// overlapping case falls back to a per-item minimum scan.
pub struct OrderedIter<'a, T> {
    parts: Vec<(&'a [T], &'a [u64])>,
    disjoint: bool,
    part: usize,
    pos: usize,
    cursors: Vec<usize>,
}

fn ordered_iter<'a, T: TimeSpan>(parts: Vec<(&'a [T], &'a [u64])>) -> OrderedIter<'a, T> {
    let mut parts: Vec<(&[T], &[u64])> =
        parts.into_iter().filter(|(r, _)| !r.is_empty()).collect();
    parts.sort_by_key(|(r, s)| (r[0].start_ns(), s[0]));
    let disjoint = parts.windows(2).all(|w| {
        let (ar, aseq) = w[0];
        let (br, bseq) = w[1];
        (ar.last().unwrap().start_ns(), *aseq.last().unwrap()) < (br[0].start_ns(), bseq[0])
    });
    OrderedIter { cursors: vec![0; parts.len()], parts, disjoint, part: 0, pos: 0 }
}

impl<'a, T: TimeSpan> Iterator for OrderedIter<'a, T> {
    /// `(seq, record)` — the sequence number that breaks timestamp ties.
    type Item = (u64, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.disjoint {
            while self.part < self.parts.len() {
                let (recs, seqs) = self.parts[self.part];
                if self.pos < recs.len() {
                    let i = self.pos;
                    self.pos += 1;
                    return Some((seqs[i], &recs[i]));
                }
                self.part += 1;
                self.pos = 0;
            }
            None
        } else {
            let mut best: Option<(Key, usize)> = None;
            for (i, (recs, seqs)) in self.parts.iter().enumerate() {
                let c = self.cursors[i];
                if c < recs.len() {
                    let k = (recs[c].start_ns(), seqs[c]);
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, i));
                    }
                }
            }
            let (_, i) = best?;
            let c = self.cursors[i];
            self.cursors[i] += 1;
            Some((self.parts[i].1[c], &self.parts[i].0[c]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};

    fn rec(ts: u64, host: u8, dport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from([10, 0, 0, host]),
            dst: IpAddr::from([203, 0, 113, 1]),
            protocol: 17,
            src_port: 53,
            dst_port: dport,
            wire_len: 100,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    #[test]
    fn bloom_never_false_negative() {
        let mut b = Bloom::new();
        for k in 0..500u64 {
            b.insert(fx_key(&k));
        }
        for k in 0..500u64 {
            assert!(b.may_contain(fx_key(&k)));
        }
    }

    #[test]
    fn batches_chunk_at_capacity() {
        let mut chain = PacketChain::default();
        let n = SEGMENT_CAPACITY * 2 + 100;
        chain.ingest((0..n as u64).map(|i| rec(i, 1, 80, 0)).collect());
        assert_eq!(chain.segment_count(), 3);
        assert_eq!(chain.count(), n);
        let stats = chain.segment_stats();
        assert_eq!(stats[0].records, SEGMENT_CAPACITY);
        assert_eq!(stats[2].records, 100);
        // Bounds tile the time axis without overlap.
        assert!(stats.windows(2).all(|w| w[0].max_ts_ns < w[1].min_ts_ns));
    }

    #[test]
    fn small_in_order_batches_share_the_open_segment() {
        let mut chain = PacketChain::default();
        for i in 0..10u64 {
            chain.ingest(vec![rec(i * 100, 1, 80, 0)]);
        }
        assert_eq!(chain.segment_count(), 1);
        assert_eq!(chain.count(), 10);
    }

    #[test]
    fn out_of_order_batch_opens_its_own_segment_and_merges_on_read() {
        let mut chain = PacketChain::default();
        chain.ingest(vec![rec(5_000, 1, 80, 0), rec(6_000, 2, 80, 0)]);
        chain.ingest(vec![rec(1_000, 3, 80, 0)]);
        assert_eq!(chain.segment_count(), 2);
        let ts: Vec<u64> = chain.iter_seq().map(|(_, r)| r.ts_ns).collect();
        assert_eq!(ts, vec![1_000, 5_000, 6_000]);
    }

    #[test]
    fn equal_timestamps_keep_capture_order() {
        let mut chain = PacketChain::default();
        // Two batches, all at ts=7: arrival (seq) order must survive.
        chain.ingest(vec![rec(7, 1, 80, 0), rec(7, 2, 80, 0)]);
        chain.ingest(vec![rec(7, 3, 80, 0)]);
        let hosts: Vec<u8> = chain
            .iter_seq()
            .map(|(_, r)| match r.src {
                IpAddr::V4(v) => v.octets()[3],
                IpAddr::V6(_) => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, vec![1, 2, 3]);
        let seqs: Vec<u64> = chain.iter_seq().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn retention_drops_whole_segments_cheaply() {
        let mut chain = PacketChain::default();
        let n = SEGMENT_CAPACITY as u64 * 3;
        chain.ingest((0..n).map(|i| rec(i, 1, 80, 0)).collect());
        // Cut in the middle of segment 1: segment 0 drops whole, segment 1
        // truncates, segment 2 is untouched.
        let cutoff = SEGMENT_CAPACITY as u64 + SEGMENT_CAPACITY as u64 / 2;
        let dropped = chain.retain_since(cutoff);
        assert_eq!(dropped, cutoff);
        assert_eq!(chain.count() as u64, n - cutoff);
        assert_eq!(chain.segment_count(), 2);
        assert!(chain.iter_seq().all(|(_, r)| r.ts_ns >= cutoff));
    }

    #[test]
    fn chain_query_prunes_and_agrees_with_scan() {
        let mut chain = PacketChain::default();
        let n = SEGMENT_CAPACITY as u64 * 4;
        chain.ingest((0..n).map(|i| rec(i, (i % 50) as u8, (i % 7) as u16 + 440, u16::from(i % 90 == 0))).collect());
        let q = PacketQuery::for_host("10.0.0.13".parse().unwrap())
            .window(100, SEGMENT_CAPACITY as u64 + 200);
        let (hits, stats) = chain.query(&q);
        let (scan, scan_stats) = chain.scan(&q);
        let a: Vec<u64> = hits.iter().map(|r| r.ts_ns).collect();
        let b: Vec<u64> = scan.iter().map(|r| r.ts_ns).collect();
        assert_eq!(a, b);
        assert!(stats.segments_pruned >= 2, "{stats:?}");
        assert!(stats.records_examined < scan_stats.records_examined / 10, "{stats:?} vs {scan_stats:?}");
    }

    #[test]
    fn time_chain_prunes_by_overlap() {
        let mut chain: TimeChain<FlowRecord> = TimeChain::default();
        let mk = |first: u64, last: u64| FlowRecord {
            key: campuslab_capture::FlowKey {
                src: "10.1.1.1".parse().unwrap(),
                dst: "203.0.113.1".parse().unwrap(),
                protocol: 6,
                src_port: 40_000,
                dst_port: 443,
            },
            first_ts_ns: first,
            last_ts_ns: last,
            fwd_packets: 1,
            fwd_bytes: 100,
            rev_packets: 0,
            rev_bytes: 0,
            syn_count: 1,
            fin_count: 0,
            rst_count: 0,
            mean_iat_ns: 0,
            min_len: 60,
            max_len: 60,
            label_app: 1,
            label_attack: 0,
        };
        chain.ingest((0..100).map(|i| mk(i * 1_000, i * 1_000 + 500)).collect());
        let window = 10_000..20_000;
        let (hits, _) = chain.query_overlap(Some(&window), |f| f.last_ts_ns >= window.start && f.first_ts_ns < window.end, usize::MAX, true);
        let (scan, _) = chain.query_overlap(Some(&window), |f| f.last_ts_ns >= window.start && f.first_ts_ns < window.end, usize::MAX, false);
        assert_eq!(hits.len(), scan.len());
        assert!(!hits.is_empty());
    }
}
