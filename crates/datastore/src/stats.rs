//! Mining helpers: the summary views an operator dashboard (or an
//! experiment report) pulls from the store.

use crate::store::DataStore;
use std::collections::HashMap;
use std::net::IpAddr;

/// Aggregate traffic summary.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct StoreSummary {
    pub packets: u64,
    pub bytes: u64,
    pub malicious_packets: u64,
    /// Packet counts per application label.
    pub by_app: HashMap<u16, u64>,
    /// Packet counts per attack label (0 excluded).
    pub by_attack: HashMap<u16, u64>,
    pub first_ts_ns: u64,
    pub last_ts_ns: u64,
}

impl StoreSummary {
    /// Mean offered rate over the captured span, bits per second.
    pub fn mean_bps(&self) -> f64 {
        let span = self.last_ts_ns.saturating_sub(self.first_ts_ns);
        if span == 0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / (span as f64 / 1e9)
    }
}

/// Compute the summary of everything in the store.
pub fn summarize(ds: &DataStore) -> StoreSummary {
    let mut s = StoreSummary {
        first_ts_ns: u64::MAX,
        ..Default::default()
    };
    for r in ds.iter_packets() {
        s.packets += 1;
        s.bytes += u64::from(r.wire_len);
        if r.is_malicious() {
            s.malicious_packets += 1;
            *s.by_attack.entry(r.label_attack).or_insert(0) += 1;
        }
        *s.by_app.entry(r.label_app).or_insert(0) += 1;
        s.first_ts_ns = s.first_ts_ns.min(r.ts_ns);
        s.last_ts_ns = s.last_ts_ns.max(r.ts_ns);
    }
    if s.packets == 0 {
        s.first_ts_ns = 0;
    }
    s
}

/// The `n` hosts moving the most bytes (either direction), descending.
pub fn top_talkers(ds: &DataStore, n: usize) -> Vec<(IpAddr, u64)> {
    let mut bytes: HashMap<IpAddr, u64> = HashMap::new();
    for r in ds.iter_packets() {
        *bytes.entry(r.src).or_insert(0) += u64::from(r.wire_len);
        *bytes.entry(r.dst).or_insert(0) += u64::from(r.wire_len);
    }
    let mut v: Vec<(IpAddr, u64)> = bytes.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

/// Per-second byte volume histogram over the captured span.
pub fn volume_per_second(ds: &DataStore) -> Vec<(u64, u64)> {
    let mut buckets: HashMap<u64, u64> = HashMap::new();
    for r in ds.iter_packets() {
        *buckets.entry(r.ts_ns / 1_000_000_000).or_insert(0) += u64::from(r.wire_len);
    }
    let mut v: Vec<(u64, u64)> = buckets.into_iter().collect();
    v.sort_by_key(|&(sec, _)| sec);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, PacketRecord, TcpFlags};

    fn rec(ts: u64, src_last: u8, len: u32, app: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from([10, 0, 0, src_last]),
            dst: IpAddr::from([203, 0, 113, 1]),
            protocol: 6,
            src_port: 1,
            dst_port: 2,
            wire_len: len,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: app,
            label_attack: attack,
        }
    }

    #[test]
    fn summary_counts_and_rate() {
        let mut ds = DataStore::new();
        ds.ingest_packets(vec![
            rec(0, 1, 1000, 2, 0),
            rec(500_000_000, 2, 1000, 2, 0),
            rec(1_000_000_000, 3, 1000, 1, 4),
        ]);
        let s = summarize(&ds);
        assert_eq!(s.packets, 3);
        assert_eq!(s.bytes, 3000);
        assert_eq!(s.malicious_packets, 1);
        assert_eq!(s.by_app[&2], 2);
        assert_eq!(s.by_attack[&4], 1);
        // 3000 bytes over 1 second = 24 kbps.
        assert!((s.mean_bps() - 24_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_summary_is_sane() {
        let ds = DataStore::new();
        let s = summarize(&ds);
        assert_eq!(s.packets, 0);
        assert_eq!(s.first_ts_ns, 0);
        assert_eq!(s.mean_bps(), 0.0);
    }

    #[test]
    fn top_talkers_order() {
        let mut ds = DataStore::new();
        ds.ingest_packets(vec![
            rec(0, 1, 100, 1, 0),
            rec(1, 2, 5000, 1, 0),
            rec(2, 2, 5000, 1, 0),
            rec(3, 3, 300, 1, 0),
        ]);
        let top = top_talkers(&ds, 2);
        assert_eq!(top.len(), 2);
        // The shared destination sees everything.
        assert_eq!(top[0].0, IpAddr::from([203, 0, 113, 1]));
        assert_eq!(top[1].0, IpAddr::from([10, 0, 0, 2]));
        assert_eq!(top[1].1, 10_000);
    }

    #[test]
    fn volume_histogram_buckets_by_second() {
        let mut ds = DataStore::new();
        ds.ingest_packets(vec![
            rec(100, 1, 10, 1, 0),
            rec(999_999_999, 1, 10, 1, 0),
            rec(1_000_000_000, 1, 7, 1, 0),
        ]);
        let v = volume_per_second(&ds);
        assert_eq!(v, vec![(0, 20), (1, 7)]);
    }
}
