//! Query descriptions for the data store's "fast and flexible search".

use campuslab_capture::{Direction, FlowRecord, PacketRecord};
use std::net::IpAddr;
use std::ops::Range;

/// A packet-table query. Every field is optional; unset means "any".
#[derive(Debug, Clone, Default)]
pub struct PacketQuery {
    /// Half-open time range in nanoseconds.
    pub time_ns: Option<Range<u64>>,
    /// Either endpoint equals this address.
    pub host: Option<IpAddr>,
    /// Source address equals.
    pub src: Option<IpAddr>,
    /// Destination address equals.
    pub dst: Option<IpAddr>,
    /// Destination port equals.
    pub dst_port: Option<u16>,
    /// IP protocol number equals.
    pub protocol: Option<u8>,
    pub direction: Option<Direction>,
    /// Only generator-labeled attack packets.
    pub malicious_only: bool,
    /// Stop after this many matches.
    pub limit: Option<usize>,
}

impl PacketQuery {
    /// Query everything in a time window.
    pub fn in_window(start_ns: u64, end_ns: u64) -> Self {
        PacketQuery { time_ns: Some(start_ns..end_ns), ..Default::default() }
    }

    /// Query everything touching one host.
    pub fn for_host(host: IpAddr) -> Self {
        PacketQuery { host: Some(host), ..Default::default() }
    }

    /// Restrict to a time window (builder style).
    pub fn window(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.time_ns = Some(start_ns..end_ns);
        self
    }

    /// Restrict to a destination port (builder style).
    pub fn port(mut self, dst_port: u16) -> Self {
        self.dst_port = Some(dst_port);
        self
    }

    /// Restrict to attack-labeled packets (builder style).
    pub fn malicious(mut self) -> Self {
        self.malicious_only = true;
        self
    }

    /// Whether `rec` satisfies every set predicate.
    pub fn matches(&self, rec: &PacketRecord) -> bool {
        if let Some(range) = &self.time_ns {
            if !range.contains(&rec.ts_ns) {
                return false;
            }
        }
        if let Some(h) = self.host {
            if rec.src != h && rec.dst != h {
                return false;
            }
        }
        if let Some(s) = self.src {
            if rec.src != s {
                return false;
            }
        }
        if let Some(d) = self.dst {
            if rec.dst != d {
                return false;
            }
        }
        if let Some(p) = self.dst_port {
            if rec.dst_port != p {
                return false;
            }
        }
        if let Some(proto) = self.protocol {
            if rec.protocol != proto {
                return false;
            }
        }
        if let Some(dir) = self.direction {
            if rec.direction != dir {
                return false;
            }
        }
        if self.malicious_only && !rec.is_malicious() {
            return false;
        }
        true
    }
}

/// Deterministic per-query cost accounting.
///
/// These are work counts, not wall times: replayed on any machine at any
/// worker count they come out identical, which is what lets experiment E3
/// pin its query-cost table with a golden file. `records_examined` is the
/// store's latency proxy — every record a plan touches, whether or not it
/// matched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Segments in the chain when the query ran.
    pub segments_total: usize,
    /// Segments planning skipped wholesale (time bounds, Bloom summary,
    /// or empty postings).
    pub segments_pruned: usize,
    /// Records the plan actually looked at.
    pub records_examined: usize,
    /// Records returned.
    pub hits: usize,
}

impl QueryStats {
    /// `examined(scan) / examined(self)` — how much work pruning saved,
    /// floored at 1× when the plan examined nothing.
    pub fn work_reduction_vs(&self, scan: &QueryStats) -> f64 {
        if self.records_examined == 0 {
            return scan.records_examined.max(1) as f64;
        }
        scan.records_examined as f64 / self.records_examined as f64
    }
}

/// A flow-table query.
#[derive(Debug, Clone, Default)]
pub struct FlowQuery {
    /// Overlaps this half-open time range.
    pub time_ns: Option<Range<u64>>,
    /// Either endpoint equals this address.
    pub host: Option<IpAddr>,
    /// Either port equals.
    pub port: Option<u16>,
    pub malicious_only: bool,
    pub min_bytes: Option<u64>,
    pub limit: Option<usize>,
}

impl FlowQuery {
    /// Whether `f` satisfies every set predicate.
    pub fn matches(&self, f: &FlowRecord) -> bool {
        if let Some(range) = &self.time_ns {
            // Overlap test for an interval record.
            if f.last_ts_ns < range.start || f.first_ts_ns >= range.end {
                return false;
            }
        }
        if let Some(h) = self.host {
            if f.key.src != h && f.key.dst != h {
                return false;
            }
        }
        if let Some(p) = self.port {
            if f.key.src_port != p && f.key.dst_port != p {
                return false;
            }
        }
        if self.malicious_only && !f.is_malicious() {
            return false;
        }
        if let Some(min) = self.min_bytes {
            if f.total_bytes() < min {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::TcpFlags;

    fn rec(ts: u64, src: [u8; 4], dst: [u8; 4], dport: u16, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from(src),
            dst: IpAddr::from(dst),
            protocol: 17,
            src_port: 53,
            dst_port: dport,
            wire_len: 100,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    #[test]
    fn window_and_port_predicates() {
        let r = rec(500, [203, 0, 113, 1], [10, 1, 1, 10], 40_000, 0);
        assert!(PacketQuery::in_window(0, 1000).matches(&r));
        assert!(!PacketQuery::in_window(501, 1000).matches(&r));
        assert!(PacketQuery::default().port(40_000).matches(&r));
        assert!(!PacketQuery::default().port(53).matches(&r));
    }

    #[test]
    fn host_matches_either_endpoint() {
        let r = rec(0, [203, 0, 113, 1], [10, 1, 1, 10], 1, 0);
        assert!(PacketQuery::for_host("10.1.1.10".parse().unwrap()).matches(&r));
        assert!(PacketQuery::for_host("203.0.113.1".parse().unwrap()).matches(&r));
        assert!(!PacketQuery::for_host("10.9.9.9".parse().unwrap()).matches(&r));
    }

    #[test]
    fn malicious_filter() {
        let benign = rec(0, [1, 1, 1, 1], [2, 2, 2, 2], 1, 0);
        let bad = rec(0, [1, 1, 1, 1], [2, 2, 2, 2], 1, 3);
        let q = PacketQuery::default().malicious();
        assert!(!q.matches(&benign));
        assert!(q.matches(&bad));
    }

    #[test]
    fn flow_query_overlap_semantics() {
        let f = FlowRecord {
            key: campuslab_capture::FlowKey {
                src: "10.1.1.1".parse().unwrap(),
                dst: "203.0.113.1".parse().unwrap(),
                protocol: 6,
                src_port: 40_000,
                dst_port: 443,
            },
            first_ts_ns: 1_000,
            last_ts_ns: 5_000,
            fwd_packets: 10,
            fwd_bytes: 1_000,
            rev_packets: 10,
            rev_bytes: 9_000,
            syn_count: 2,
            fin_count: 2,
            rst_count: 0,
            mean_iat_ns: 100,
            min_len: 60,
            max_len: 1500,
            label_app: 2,
            label_attack: 0,
        };
        let hit = FlowQuery { time_ns: Some(4_000..10_000), ..Default::default() };
        assert!(hit.matches(&f));
        let miss = FlowQuery { time_ns: Some(6_000..10_000), ..Default::default() };
        assert!(!miss.matches(&f));
        let port = FlowQuery { port: Some(443), ..Default::default() };
        assert!(port.matches(&f));
        let big = FlowQuery { min_bytes: Some(20_000), ..Default::default() };
        assert!(!big.matches(&f));
    }
}
