//! ResolverLab (experiment E16): the caching recursive resolver deployed
//! as a live campus service actor, composed with the rollout-guard and
//! mitigation-controller hook stack over one simulation.
//!
//! The load-bearing wiring is [`GuardedResolver::sync`]: every client the
//! resolver abandons (a ServFail with no stale fallback) is forwarded to
//! the [`RolloutGuard`] as [`GiveUpReason::ServiceFailure`] — the same
//! rollback-evidence channel [`crate::guarded_road_test`] feeds with
//! controller install give-ups. A rollout that starves the resolver is
//! rollback-eligible evidence, not an invisible outage.

use crate::hooks::Duo;
use crate::observe::RunObs;
use crate::roadtest::RoadTestConfig;
use crate::scenario::{build_schedule, Scenario};
use campuslab_control::{
    BankFilter, GiveUpReason, MitigationController, MitigationControllerConfig, MitigationEvent,
    RolloutConfig, RolloutGuard, SloPolicy,
};
use campuslab_dataplane::{FieldExtractor, PipelineProgram};
use campuslab_ml::Classifier;
use campuslab_netsim::{
    Campus, Commands, Dir, DropReason, LinkId, NetStats, NodeId, Packet, SimDuration, SimHooks,
    SimTime,
};
use campuslab_obs::Tracer;
use campuslab_resolver::{ResolverActor, ResolverService, WindowStat};
use std::net::Ipv4Addr;

/// Build the campus resolver actor at the DNS server node with the
/// default service tuning ([`ResolverService::campus_default`]).
pub fn resolver_actor(campus: &Campus) -> ResolverActor {
    let node = campus.servers.dns;
    ResolverActor::new(node, campus.addr_of(node), ResolverService::campus_default())
}

/// Resolver + rollout guard driven by one simulation. After every hook,
/// freshly abandoned resolver clients are drained and recorded against
/// the guard as service-failure give-ups.
pub struct GuardedResolver {
    pub resolver: ResolverActor,
    pub guard: RolloutGuard,
    surfaced: u64,
}

impl GuardedResolver {
    /// Compose a resolver actor and a rollout guard.
    pub fn new(resolver: ResolverActor, guard: RolloutGuard) -> Self {
        GuardedResolver { resolver, guard, surfaced: 0 }
    }

    /// Resolver give-ups forwarded to the guard so far.
    pub fn surfaced_giveups(&self) -> u64 {
        self.surfaced
    }

    /// Drain the resolver's give-up log into the guard's evidence window.
    fn sync(&mut self) {
        for _giveup in self.resolver.service_mut().take_giveups() {
            self.surfaced += 1;
            self.guard.record_giveup(GiveUpReason::ServiceFailure);
        }
    }
}

impl SimHooks for GuardedResolver {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        self.guard.on_tap(now, link, dir, packet, cmds);
        self.resolver.on_tap(now, link, dir, packet, cmds);
        self.sync();
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        cmds: &mut Commands,
    ) {
        self.guard.on_deliver(now, node, packet, latency, cmds);
        self.resolver.on_deliver(now, node, packet, latency, cmds);
        self.sync();
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, cmds: &mut Commands) {
        self.guard.on_drop(now, reason, packet, cmds);
        self.resolver.on_drop(now, reason, packet, cmds);
        self.sync();
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        self.guard.on_timer(now, token, cmds);
        self.resolver.on_timer(now, token, cmds);
        self.sync();
    }
}

/// Parameters of a resolver scenario run.
#[derive(Default)]
pub struct ResolverRunConfig {
    /// Road-test knobs (placement, gate, window, install channel) for the
    /// defended path.
    pub road: RoadTestConfig,
    /// Defend the campus with the mitigation controller: the developed
    /// pipeline program plus a window model. `None` runs undefended — the
    /// resolver rides out the flood on rate limiting and stale answers
    /// alone.
    pub defense: Option<(PipelineProgram, Box<dyn Classifier + Send>)>,
}

/// What a resolver scenario run measured.
pub struct ResolverRunOutcome {
    pub net: NetStats,
    /// Controller episodes that landed (defended runs).
    pub mitigations: Vec<MitigationEvent>,
    /// Resolver give-ups surfaced to the guard as rollback evidence.
    pub giveups_surfaced: u64,
    /// Per-sim-second resolver load windows, in time order.
    pub windows: Vec<(u64, WindowStat)>,
    /// The resolver's address (the flood's target).
    pub victim: Option<Ipv4Addr>,
    pub attack_start: Option<SimTime>,
    /// Observatory bundle, resolver section included.
    pub obs: RunObs,
}

impl ResolverRunOutcome {
    /// Cache-hit rate per window second (windows that saw no queries are
    /// skipped) — the collapse-and-recovery curve E16 plots.
    pub fn hit_rate_series(&self) -> Vec<(u64, f64)> {
        self.windows
            .iter()
            .filter(|(_, w)| w.queries > 0)
            .map(|(sec, w)| (*sec, w.cache_hits as f64 / w.queries as f64))
            .collect()
    }
}

/// Run a resolver scenario: the campus resolver serves live port-53
/// traffic while the rollout guard collects service-failure evidence and,
/// when a defense is supplied, the mitigation controller watches the
/// border tap and installs rules against the flood.
pub fn resolver_run(scenario: &Scenario, cfg: ResolverRunConfig) -> ResolverRunOutcome {
    let campus = Campus::build(scenario.campus.clone());
    let (mut schedule, victim, attack_start) = build_schedule(&campus, scenario);
    let actor = resolver_actor(&campus);
    let mut net = campus.net;
    schedule.apply_to(&mut net);

    let extractor = FieldExtractor::new(scenario.campus.campus_prefix());
    let (bank, handle) = BankFilter::new(extractor.clone());
    net.install_filter(campus.border, bank);

    let (known_good, model) = match cfg.defense {
        Some((program, model)) => (program, Some(model)),
        None => (PipelineProgram::new("resolver-undefended", vec![]), None),
    };
    let guard = RolloutGuard::new(
        RolloutConfig {
            tap: campus.border_link,
            extractor,
            slo: SloPolicy::default(),
            canary_hosts: Vec::new(),
            tap_blackouts: Vec::new(),
            submissions: Vec::new(),
        },
        known_good.clone(),
        handle.clone(),
    );
    let mut guarded = GuardedResolver::new(actor, guard);

    let mut mitigations = Vec::new();
    let mut controller_obs = None;
    let mut detector_obs = None;
    match model {
        Some(model) => {
            let controller = MitigationController::new(
                MitigationControllerConfig {
                    tap: campus.border_link,
                    placement: cfg.road.placement,
                    gate: cfg.road.gate,
                    window_ns: cfg.road.window_ns,
                    min_packets: cfg.road.min_packets,
                    program: known_good,
                    install: cfg.road.install.clone(),
                    tap_blackouts: cfg.road.tap_blackouts.clone(),
                },
                model,
                handle.clone(),
            );
            let mut hooks = Duo::new(guarded, controller);
            net.run(&mut hooks, None);
            let (cobs, dobs) = hooks.second.take_obs();
            controller_obs = Some(cobs);
            detector_obs = Some(dobs);
            mitigations = std::mem::take(&mut hooks.second.events);
            guarded = hooks.first;
        }
        None => net.run(&mut guarded, None),
    }

    let mut tracer = Tracer::new();
    let end_ns = net.now().as_nanos();
    tracer.record("resolverlab".to_string(), 0, end_ns);
    if let Some(cobs) = &controller_obs {
        tracer.merge_from(&cobs.tracer);
    }
    let rollout_obs = guarded.guard.take_obs();
    tracer.merge_from(&rollout_obs.tracer);

    let service = guarded.resolver.service();
    let windows = service.windows().iter().map(|(sec, w)| (*sec, *w)).collect();
    let filter = handle.stats();
    ResolverRunOutcome {
        net: net.stats,
        mitigations,
        giveups_surfaced: guarded.surfaced,
        windows,
        victim,
        attack_start,
        obs: RunObs {
            net: net.obs,
            capture: None,
            detector: detector_obs,
            controller: controller_obs,
            filter: Some(filter),
            tracer,
            rollout: Some(rollout_obs),
            resolver: Some(service.obs().clone()),
            drift: None,
            plaza: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_netsim::{CampusConfig, GroundTruth, PacketBuilder, Payload};
    use campuslab_resolver::{ResolverConfig, ResponseKind, ZoneDb};
    use campuslab_wire::{DnsMessage, DnsType};

    /// The satellite interaction contract: a resolver that abandons
    /// clients feeds the same rollback-evidence channel install give-ups
    /// use, and the guard's Observatory shows the failures.
    #[test]
    fn resolver_giveups_reach_the_guard_as_rollback_evidence() {
        let campus = Campus::build(CampusConfig {
            dist_count: 1,
            access_per_dist: 1,
            hosts_per_access: 2,
            external_hosts: 2,
            ..CampusConfig::default()
        });
        let client = campus.hosts[0];
        let client_ip = campus.addr_of(client);
        let resolver_ip = campus.addr_of(campus.servers.dns);
        let mut net = campus.net;

        // Five cold-cache queries against a resolver with zero upstream
        // slots: every one must end as a typed give-up, never a panic.
        let mut b = PacketBuilder::new();
        for i in 0..5u16 {
            let msg = DnsMessage::query(i, &format!("host{i}.example.com"), DnsType::A);
            let mut bytes = Vec::new();
            msg.emit(&mut bytes).expect("emit");
            net.inject(
                SimTime::from_millis(10 * u64::from(i)),
                client,
                b.udp_v4(
                    client_ip,
                    resolver_ip,
                    40_000 + i,
                    53,
                    Payload::from(bytes),
                    64,
                    GroundTruth::default(),
                ),
            );
        }

        let extractor = FieldExtractor::new(campus.config.campus_prefix());
        let (bank, handle) = BankFilter::new(extractor.clone());
        net.install_filter(campus.border, bank);
        let guard = RolloutGuard::new(
            RolloutConfig {
                tap: campus.border_link,
                extractor,
                slo: SloPolicy::default(),
                canary_hosts: Vec::new(),
                tap_blackouts: Vec::new(),
                submissions: Vec::new(),
            },
            PipelineProgram::new("known-good", vec![]),
            handle,
        );
        let starved = ResolverService::new(
            ResolverConfig { upstream_concurrency: 0, ..ResolverConfig::default() },
            ZoneDb::campus_default(),
        );
        let actor = ResolverActor::new(campus.servers.dns, resolver_ip, starved);
        let mut guarded = GuardedResolver::new(actor, guard);
        net.run(&mut guarded, None);

        assert_eq!(guarded.surfaced_giveups(), 5);
        let rsv = guarded.resolver.service().obs();
        assert_eq!(rsv.giveups(), 5);
        assert_eq!(rsv.responses(ResponseKind::ServFail), 5);
        // Same channel, same metric family guarded_road_test exercises.
        let robs = guarded.guard.take_obs();
        assert_eq!(robs.giveups_observed(), 5);
        assert!(robs.render().contains("rollout_giveups_observed_total 5"));
    }

    #[test]
    fn water_torture_degrades_the_undefended_resolver() {
        let outcome = resolver_run(&Scenario::resolver_lab(), ResolverRunConfig::default());
        let rsv = outcome.obs.resolver.as_ref().expect("resolver obs");
        assert!(rsv.queries() > 5_000, "queries {}", rsv.queries());
        // Per-client rate limiting sheds the bulk of the flood...
        assert!(rsv.rrl_dropped() > 1_000, "rrl dropped {}", rsv.rrl_dropped());
        // ...but what leaks through still starves the upstream path.
        assert!(rsv.upstream_timeouts() > 0, "no upstream starvation");
        assert!(
            rsv.responses(ResponseKind::Stale) + rsv.giveups() > 0,
            "flood never degraded service"
        );
        // Every abandoned client became guard evidence.
        assert_eq!(outcome.giveups_surfaced, rsv.giveups());
        assert_eq!(
            outcome.obs.rollout.as_ref().expect("rollout obs").giveups_observed(),
            rsv.giveups()
        );
        // The hit-rate curve collapses under the flood and recovers after.
        let series = outcome.hit_rate_series();
        let pre = series.iter().find(|(sec, _)| *sec == 2).map(|(_, r)| *r).unwrap_or(0.0);
        let during = series
            .iter()
            .filter(|(sec, _)| (4..=8).contains(sec))
            .map(|(_, r)| *r)
            .fold(f64::INFINITY, f64::min);
        let last = series.last().map(|(_, r)| *r).unwrap_or(0.0);
        assert!(pre > 0.5, "pre-flood hit rate {pre}");
        assert!(during < pre, "flood never dented the hit rate: {during} vs {pre}");
        assert!(last > during, "hit rate never recovered: {last} vs {during}");
        // And the dump carries the resolver section.
        assert!(outcome.obs.prom().contains("rsv_queries_total"));
    }

    #[test]
    fn resolver_run_is_deterministic() {
        let run = || {
            let outcome = resolver_run(&Scenario::resolver_lab(), ResolverRunConfig::default());
            (outcome.obs.prom(), outcome.obs.trace_json(), outcome.giveups_surfaced)
        };
        assert_eq!(run(), run(), "resolver run must be bit-identical across runs");
    }
}
