//! # campuslab-testbed
//!
//! The campus as testbed (the paper's Part-2 proposal): scenario
//! definitions, data collection into the store, road tests with
//! placement-dependent mitigation, the cross-campus reproducibility
//! protocol, operator trust reports, and the deployment gate that stands
//! in for the researcher↔IT "support contract".
//!
//! * [`scenario`] — describe + run a campus day (workload, attacks,
//!   monitoring), collect records, land them in a [`campuslab_datastore::DataStore`].
//! * [`roadtest`] — deploy a developed model against a fresh attack and
//!   measure time-to-mitigation, suppression, and collateral damage.
//! * [`crosscampus`] — train the shared algorithm privately at N campuses,
//!   evaluate every model everywhere (experiment E7).
//! * [`trust`] — evidence audits: does the model cite the features an
//!   analyst expects? (experiment E9)
//! * [`chaos_sweep`] — robustness under chaos: sweep a fault-intensity
//!   knob and measure how detection recall, mitigation latency and
//!   delivery degrade (experiment E14).
//! * [`rollout`] — SLO-guarded deployment: shadow → canary → full
//!   promotion of candidate programs with automatic rollback
//!   (experiment E15).
//! * [`resolverlab`] — the caching recursive resolver as a live campus
//!   service under a water-torture flood, its give-ups surfaced to the
//!   rollout guard as rollback evidence (experiment E16).
//! * [`hooks`] — hook composition for running monitor + controller
//!   together.

//!
//! ```no_run
//! use campuslab_testbed::{collect, Scenario};
//!
//! // One call runs the campus and captures everything at the border.
//! let data = collect(&Scenario::small());
//! assert!(data.packets.len() > 0);
//! ```

pub mod hooks;
pub mod observe;
pub mod scenario;
pub mod roadtest;
pub mod resolverlab;
pub mod rollout;
pub mod crosscampus;
pub mod trust;
pub mod chaos_sweep;
pub mod driftpilot;
pub mod phoenix;

pub use chaos_sweep::{
    chaos_road_test_config, chaos_sweep, chaos_sweep_observed, ChaosPoint, ChaosSweepConfig,
};
pub use crosscampus::{cross_campus, cross_campus_observed, CampusSite, CrossCampusResult};
pub use driftpilot::{
    drift_road_test, DriftHooks, DriftRunConfig, DriftRunOutcome, FrozenDriftHooks,
};
pub use hooks::Duo;
pub use phoenix::{
    decode_checkpoint, encode_checkpoint, fingerprint, CrashCart, DriftSession, Fingerprint,
    PhoenixCheckpoint, PhoenixError, PHOENIX_MAGIC, PHOENIX_VERSION,
};
pub use observe::RunObs;
pub use roadtest::{
    deployment_decision, road_test, DeploymentDecision, GateCriteria, RoadTestConfig,
    RoadTestOutcome,
};
pub use resolverlab::{
    resolver_actor, resolver_run, GuardedResolver, ResolverRunConfig, ResolverRunOutcome,
};
pub use rollout::{
    canary_hosts, guarded_road_test, FrozenGuardedHooks, GuardedHooks, GuardedRunConfig,
    GuardedRunOutcome,
};
pub use scenario::{build_schedule, build_store, collect, AttackScenario, CollectedData, Scenario};
pub use trust::{expected_features, trust_report, AuditedDecision, TrustReport};
