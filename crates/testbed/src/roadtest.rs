//! Road-testing (the paper's Part-2 proposal): deploy a developed model on
//! the live campus testbed under a fresh attack and measure what the
//! operator cares about — time to mitigation, attack suppression, and
//! collateral damage to benign traffic.

use crate::observe::RunObs;
use crate::scenario::{build_schedule, Scenario};
use campuslab_control::{
    BankFilter, FastLoopStatsSnapshot, InstallGiveUp, InstallPolicy, MitigationController,
    MitigationControllerConfig, MitigationEvent, Placement,
};
use campuslab_dataplane::{FieldExtractor, PipelineProgram};
use campuslab_ml::Classifier;
use campuslab_netsim::{
    Campus, ChaosPlan, NetStats, NullHooks, Outage, SimDuration, SimTime,
};
use campuslab_obs::Tracer;
use serde::Serialize;
use std::net::Ipv4Addr;

/// Road-test parameters.
pub struct RoadTestConfig {
    pub placement: Placement,
    /// Detector confidence gate (the paper's >= 0.9).
    pub gate: f64,
    pub window_ns: u64,
    pub min_packets: usize,
    /// Optional border-link outage, as (start, end) fractions of the
    /// workload duration — failure injection for resilience road tests.
    pub border_outage: Option<(f64, f64)>,
    /// Optional chaos campaign (link flaps, node crashes, brownouts,
    /// bursty loss) applied to the network before the run.
    pub chaos: Option<ChaosPlan>,
    /// Windows where the controller's tap is blind (monitor blackout).
    pub tap_blackouts: Vec<Outage>,
    /// Reliability of the controller→switch install channel.
    pub install: InstallPolicy,
}

impl Default for RoadTestConfig {
    fn default() -> Self {
        RoadTestConfig {
            placement: Placement::Controller,
            gate: 0.9,
            window_ns: 1_000_000_000,
            min_packets: 5,
            border_outage: None,
            chaos: None,
            tap_blackouts: Vec::new(),
            install: InstallPolicy::default(),
        }
    }
}

/// What a road test measured.
#[derive(Debug, Clone)]
pub struct RoadTestOutcome {
    pub placement: Placement,
    pub filter: FastLoopStatsSnapshot,
    pub net: NetStats,
    pub mitigations: Vec<MitigationEvent>,
    /// Detections abandoned because every install attempt flaked.
    pub giveups: Vec<InstallGiveUp>,
    pub victim: Option<Ipv4Addr>,
    pub attack_start: Option<SimTime>,
    /// Attack start → rule active. None when nothing was installed.
    pub time_to_mitigation: Option<SimDuration>,
    /// Attack packets that reached the victim before/despite mitigation.
    pub attack_packets_passed: u64,
    /// Benign packets dropped by the mitigation (collateral).
    pub benign_packets_dropped: u64,
    /// Observatory bundle: per-layer metric sinks + the run trace, moved
    /// out of the simulator and controller after the run.
    pub obs: RunObs,
}

impl RoadTestOutcome {
    /// Attack suppression: dropped / (dropped + passed).
    pub fn suppression(&self) -> f64 {
        self.filter.attack_recall()
    }

    /// Total install attempts spent across landed and abandoned episodes.
    pub fn install_attempts(&self) -> u32 {
        self.mitigations.iter().map(|m| m.attempts).sum::<u32>()
            + self.giveups.iter().map(|g| g.attempts).sum::<u32>()
    }

    /// Fraction of injected packets that were delivered end to end.
    pub fn delivery_ratio(&self) -> f64 {
        if self.net.injected == 0 {
            return 1.0;
        }
        self.net.delivered as f64 / self.net.injected as f64
    }
}

/// Run a road test: the scenario plays out on a fresh campus while the
/// deployed model (placement-dependent) defends it.
pub fn road_test(
    scenario: &Scenario,
    program: PipelineProgram,
    window_model: Option<Box<dyn Classifier + Send>>,
    cfg: RoadTestConfig,
) -> RoadTestOutcome {
    let campus = Campus::build(scenario.campus.clone());
    let (mut schedule, victim, attack_start) = build_schedule(&campus, scenario);
    let mut net = campus.net;
    schedule.apply_to(&mut net);
    if let Some((from_frac, until_frac)) = cfg.border_outage {
        let span = scenario.workload.duration.as_secs_f64();
        net.link_mut(campus.border_link).fault.outages.push(campuslab_netsim::Outage {
            from: SimTime::ZERO + SimDuration::from_secs_f64(span * from_frac),
            until: SimTime::ZERO + SimDuration::from_secs_f64(span * until_frac),
        });
    }
    if let Some(plan) = &cfg.chaos {
        plan.apply_to(&mut net);
    }

    let extractor = FieldExtractor::new(scenario.campus.campus_prefix());
    let (bank, handle) = BankFilter::new(extractor);
    net.install_filter(campus.border, bank);

    let mut mitigations = Vec::new();
    let mut giveups = Vec::new();
    let mut controller_obs = None;
    let mut detector_obs = None;
    match cfg.placement {
        Placement::Switch => {
            // Compiled rules are in the switch before the attack exists.
            handle.add_program(None, program);
            net.run(&mut NullHooks, None);
        }
        placement => {
            let model = window_model.expect("controller/cloud placement needs a window model");
            let controller_cfg = MitigationControllerConfig {
                tap: campus.border_link,
                placement,
                gate: cfg.gate,
                window_ns: cfg.window_ns,
                min_packets: cfg.min_packets,
                program,
                install: cfg.install.clone(),
                tap_blackouts: cfg.tap_blackouts.clone(),
            };
            let mut controller = MitigationController::new(controller_cfg, model, handle.clone());
            net.run(&mut controller, None);
            let (cobs, dobs) = controller.take_obs();
            controller_obs = Some(cobs);
            detector_obs = Some(dobs);
            mitigations = controller.events;
            giveups = controller.giveups;
        }
    }

    // The run-level span covers the whole simulation in sim-time; episode
    // spans (opened/closed by the controller) are merged in after it, so
    // span sequence numbers depend only on simulated history.
    let mut tracer = Tracer::new();
    let end_ns = net.now().as_nanos();
    tracer.record(format!("roadtest[{:?}]", cfg.placement), 0, end_ns);
    if let Some(cobs) = &controller_obs {
        tracer.merge_from(&cobs.tracer);
    }

    let filter = handle.stats();
    let time_to_mitigation = match cfg.placement {
        Placement::Switch => Some(SimDuration::ZERO),
        _ => match (attack_start, mitigations.first()) {
            (Some(start), Some(event)) => Some(event.installed_at - start),
            _ => None,
        },
    };
    RoadTestOutcome {
        placement: cfg.placement,
        filter,
        net: net.stats,
        mitigations,
        giveups,
        victim,
        attack_start,
        time_to_mitigation,
        attack_packets_passed: filter.passed_attack,
        benign_packets_dropped: filter.dropped_benign,
        obs: RunObs {
            net: net.obs,
            capture: None,
            detector: detector_obs,
            controller: controller_obs,
            filter: Some(filter),
            tracer,
            rollout: None,
            resolver: None,
            drift: None,
            plaza: None,
        },
    }
}

/// Go/no-go criteria for promoting a model from road test to production —
/// the "support contract" checklist between researcher and IT (paper §4).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GateCriteria {
    pub min_suppression: f64,
    /// Benign drops per benign packet crossing the filter.
    pub max_collateral_rate: f64,
    pub require_mitigation_within: Option<SimDuration>,
}

impl Default for GateCriteria {
    fn default() -> Self {
        GateCriteria {
            min_suppression: 0.8,
            max_collateral_rate: 0.01,
            require_mitigation_within: Some(SimDuration::from_secs(5)),
        }
    }
}

/// The gate's verdict with its reasoning.
#[derive(Debug, Clone, Serialize)]
pub struct DeploymentDecision {
    pub approved: bool,
    pub reasons: Vec<String>,
}

/// Evaluate the deployment gate over a road-test outcome.
pub fn deployment_decision(outcome: &RoadTestOutcome, criteria: GateCriteria) -> DeploymentDecision {
    let mut reasons = Vec::new();
    let suppression = outcome.suppression();
    if suppression < criteria.min_suppression {
        reasons.push(format!(
            "attack suppression {:.1}% below required {:.1}%",
            suppression * 100.0,
            criteria.min_suppression * 100.0
        ));
    }
    let benign_seen = outcome.filter.packets - outcome.filter.dropped_attack
        - outcome.filter.passed_attack;
    let collateral_rate = if benign_seen > 0 {
        outcome.filter.dropped_benign as f64 / benign_seen as f64
    } else {
        0.0
    };
    if collateral_rate > criteria.max_collateral_rate {
        reasons.push(format!(
            "collateral drop rate {:.3}% above allowed {:.3}%",
            collateral_rate * 100.0,
            criteria.max_collateral_rate * 100.0
        ));
    }
    if let Some(deadline) = criteria.require_mitigation_within {
        match outcome.time_to_mitigation {
            Some(t) if t <= deadline => {}
            Some(t) => reasons.push(format!(
                "mitigation took {t} (deadline {deadline})"
            )),
            None => reasons.push("attack was never mitigated".to_string()),
        }
    }
    DeploymentDecision { approved: reasons.is_empty(), reasons }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::collect;
    use campuslab_control::{run_development_loop, DevLoopConfig};
    use campuslab_features::{window_dataset, LabelMode, WindowConfig};
    use campuslab_ml::{DecisionTree, TreeConfig};

    /// Train models on one collection pass, then road-test on a fresh run.
    fn trained() -> (PipelineProgram, DecisionTree) {
        let data = collect(&Scenario::small());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        let window_model = DecisionTree::fit(&wd, TreeConfig::shallow(4));
        (dev.program, window_model)
    }

    #[test]
    fn switch_placement_suppresses_from_the_start() {
        let (program, _) = trained();
        let outcome = road_test(
            &Scenario::small(),
            program,
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        assert!(outcome.suppression() > 0.8, "suppression {}", outcome.suppression());
        assert_eq!(outcome.time_to_mitigation, Some(SimDuration::ZERO));
        // Collateral damage stays tiny.
        let decision = deployment_decision(&outcome, GateCriteria::default());
        assert!(decision.approved, "rejected: {:?}", decision.reasons);
    }

    #[test]
    fn controller_placement_detects_then_mitigates() {
        let (program, window_model) = trained();
        let outcome = road_test(
            &Scenario::small(),
            program,
            Some(Box::new(window_model)),
            RoadTestConfig { placement: Placement::Controller, ..Default::default() },
        );
        assert!(!outcome.mitigations.is_empty(), "controller never fired");
        let ttm = outcome.time_to_mitigation.expect("mitigated");
        assert!(ttm > SimDuration::ZERO);
        assert!(
            outcome.mitigations[0].victim == std::net::IpAddr::V4(outcome.victim.unwrap()),
            "mitigated the wrong host"
        );
        // Some attack passed before the window closed, then drops began.
        assert!(outcome.filter.dropped_attack > 0);
    }

    #[test]
    fn cloud_placement_is_slower_than_controller() {
        let (program, window_model) = trained();
        let (p2, w2) = (program.clone(), window_model.clone());
        let controller = road_test(
            &Scenario::small(),
            program,
            Some(Box::new(window_model)),
            RoadTestConfig { placement: Placement::Controller, ..Default::default() },
        );
        let cloud = road_test(
            &Scenario::small(),
            p2,
            Some(Box::new(w2)),
            RoadTestConfig { placement: Placement::Cloud, ..Default::default() },
        );
        let t_controller = controller.time_to_mitigation.expect("controller mitigated");
        let t_cloud = cloud.time_to_mitigation.expect("cloud mitigated");
        assert!(t_cloud > t_controller, "cloud {t_cloud} vs controller {t_controller}");
        // And the slower tier lets more attack through.
        assert!(cloud.attack_packets_passed >= controller.attack_packets_passed);
    }

    #[test]
    fn border_outage_is_survivable() {
        // Failure injection: the border link goes dark for 20% of the run.
        // The system must keep functioning (no panic, sane accounting) and
        // the switch-resident mitigation must still suppress what arrives.
        let (program, _) = trained();
        let outcome = road_test(
            &Scenario::small(),
            program,
            None,
            RoadTestConfig {
                placement: Placement::Switch,
                border_outage: Some((0.3, 0.5)),
                ..Default::default()
            },
        );
        assert!(outcome.net.dropped_fault > 0, "outage dropped nothing");
        // Everything that did arrive was still filtered correctly.
        assert!(outcome.suppression() > 0.9, "suppression {}", outcome.suppression());
        assert_eq!(
            outcome.net.injected,
            outcome.net.delivered + outcome.net.dropped_total()
        );
    }

    #[test]
    fn rate_limit_mitigation_is_gentler_than_drop() {
        let (program, _) = trained();
        let policed = program.with_drops_as_policers(500_000); // 0.5 Mbps
        let hard = road_test(
            &Scenario::small(),
            program,
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        let soft = road_test(
            &Scenario::small(),
            policed,
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        // The policer lets a trickle through (by design) but still removes
        // the bulk of the flood.
        assert!(soft.attack_packets_passed > hard.attack_packets_passed);
        assert!(
            soft.suppression() > 0.5,
            "policer suppressed too little: {}",
            soft.suppression()
        );
    }

    #[test]
    fn obs_bundle_mirrors_outcome_and_traces_the_run() {
        let (program, window_model) = trained();
        let outcome = road_test(
            &Scenario::small(),
            program,
            Some(Box::new(window_model)),
            RoadTestConfig { placement: Placement::Controller, ..Default::default() },
        );
        // Simulator counters mirror NetStats exactly.
        let net = &outcome.obs.net;
        assert_eq!(net.injected(), outcome.net.injected);
        assert_eq!(net.delivered(), outcome.net.delivered);
        assert_eq!(net.dropped_total(), outcome.net.dropped_total());
        // Controller counters mirror the event log.
        let ctl = outcome.obs.controller.as_ref().expect("controller obs");
        assert_eq!(ctl.installs() as usize, outcome.mitigations.len());
        assert_eq!(ctl.giveups() as usize, outcome.giveups.len());
        assert!(ctl.installs() > 0, "controller never fired");
        // The trace opens with the run-level span and carries one closed
        // episode span per mitigation.
        let spans = outcome.obs.tracer.spans();
        assert_eq!(spans[0].name, "roadtest[Controller]");
        assert_eq!(spans[0].start_ns, 0);
        let episodes = spans.iter().filter(|s| s.name.starts_with("mitigate[")).count();
        assert_eq!(episodes as u64, ctl.episodes());
        // The dump contains every section a controller road test produces.
        let prom = outcome.obs.prom();
        for family in
            ["sim_events_total", "flt_packets_total", "det_windows_closed_total", "ctl_installs_total"]
        {
            assert!(prom.contains(family), "dump missing {family}");
        }
        assert!(!prom.contains("cap_observed_packets_total"), "no monitor in a road test");
    }

    #[test]
    fn gate_rejects_a_useless_program() {
        // An empty program drops nothing: suppression 0.
        let outcome = road_test(
            &Scenario::small(),
            PipelineProgram::new("empty", vec![]),
            None,
            RoadTestConfig { placement: Placement::Switch, ..Default::default() },
        );
        let decision = deployment_decision(&outcome, GateCriteria::default());
        assert!(!decision.approved);
        assert!(decision.reasons.iter().any(|r| r.contains("suppression")));
    }
}
