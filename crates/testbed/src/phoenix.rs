//! PhoenixRun (experiment E19): crash-fault tolerance for the always-on
//! drift pipeline. A [`DriftSession`] is a resumable drift road test —
//! the same guard + controller + pilot stack as
//! [`crate::driftpilot::drift_road_test`], but advanced window by window
//! so a [`PhoenixCheckpoint`] can be taken at any quiescent barrier
//! (between two `run_until` calls no event is mid-dispatch and no shard
//! splice is live).
//!
//! The recovery contract, pinned by the CrashCart harness below and by
//! `tests/phoenix_diff.rs`: kill the process at *any* checkpoint
//! boundary, restore the checkpoint into a freshly built session, resume
//! over the remaining window grid — and the outcome fingerprint
//! (timeline, Prometheus dump, trace JSON) is byte-for-byte the
//! uninterrupted run's.
//!
//! What a checkpoint captures: the simulator's frozen mirror (event
//! queue, per-link RNG and Gilbert-Elliott fault streams, node/link
//! state, pending chaos), the three control hooks' frozen mirrors
//! (detector window, rollout ladder + cooldowns + shadow mirror, pilot
//! windows/sketches/outbox, circuit breaker, open trace spans, obs
//! sinks), the shared filter bank, and the evidence-sync cursors between
//! the hooks. What it deliberately does **not** capture: anything
//! rebuilt deterministically by [`DriftSession::new`] from the same
//! arguments — topology, schedules, configs, the trained window model,
//! metric registries (schema), and the packet clone-counter (a
//! process-global debugging statistic with no behavioral effect).

use crate::driftpilot::{DriftHooks, DriftRunConfig, DriftRunOutcome, FrozenDriftHooks};
use crate::observe::RunObs;
use crate::rollout::canary_hosts;
use crate::scenario::{build_schedule, Scenario};
use campuslab_control::{
    BankFilter, BankHandle, DriftPilot, DriftPilotConfig, FrozenBank, MitigationController,
    MitigationControllerConfig, RolloutConfig, RolloutGuard,
};
use campuslab_dataplane::{FieldExtractor, PipelineProgram};
use campuslab_ml::Classifier;
use campuslab_netsim::{FrozenNetwork, Network, SimDuration, SimTime};
use campuslab_obs::{crc32, Tracer};
use std::net::Ipv4Addr;

/// Checkpoint format version. Bumped on any change to the frozen-state
/// layout; a decoder seeing an unknown version reports
/// [`PhoenixError::VersionSkew`] instead of guessing.
pub const PHOENIX_VERSION: u32 = 1;

/// Envelope magic: the first four bytes of every encoded checkpoint.
pub const PHOENIX_MAGIC: [u8; 4] = *b"PHNX";

/// Fixed envelope header size: magic + version + payload length + crc32.
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// The outcome fingerprint the recovery contract is stated over: the
/// sim-ordered timeline, the Prometheus dump, and the trace JSON.
pub type Fingerprint = (String, String, String);

/// Fingerprint a finished run the way E17's determinism test does.
pub fn fingerprint(outcome: &DriftRunOutcome) -> Fingerprint {
    (outcome.timeline(), outcome.obs.prom(), outcome.obs.trace_json())
}

/// Everything a fresh process needs to resume a drift session, given the
/// same [`DriftSession::new`] arguments: the frozen simulator, the frozen
/// hook stack, and the shared filter bank.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct PhoenixCheckpoint {
    pub net: FrozenNetwork,
    pub hooks: FrozenDriftHooks,
    pub bank: FrozenBank,
}

/// Typed decode failures. Every malformed input maps to one of these —
/// the decoder never panics, whatever the bytes.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PhoenixError {
    /// Fewer bytes than the fixed header, or than the header promised.
    Truncated { expected: u64, got: u64 },
    /// The first four bytes are not `PHNX`.
    BadMagic { found: [u8; 4] },
    /// A version this decoder does not speak.
    VersionSkew { found: u32, supported: u32 },
    /// Payload bytes do not hash to the header's checksum: torn write or
    /// bit flip. Recovery: discard and fall back to an older checkpoint.
    Checksum { expected: u32, found: u32 },
    /// Checksum held but the payload is not a valid checkpoint document
    /// (an encoder bug, not storage corruption).
    Payload { detail: String },
}

impl std::fmt::Display for PhoenixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhoenixError::Truncated { expected, got } => {
                write!(f, "checkpoint truncated: expected {expected} bytes, got {got}")
            }
            PhoenixError::BadMagic { found } => write!(f, "bad checkpoint magic {found:02x?}"),
            PhoenixError::VersionSkew { found, supported } => {
                write!(f, "checkpoint version {found} (this build supports {supported})")
            }
            PhoenixError::Checksum { expected, found } => {
                write!(f, "checkpoint checksum mismatch: header {expected:08x}, payload {found:08x}")
            }
            PhoenixError::Payload { detail } => write!(f, "checkpoint payload invalid: {detail}"),
        }
    }
}

impl std::error::Error for PhoenixError {}

/// Serialize a checkpoint into its durable envelope:
/// `PHNX | version u32 LE | payload_len u64 LE | crc32 u32 LE | payload`.
pub fn encode_checkpoint(cp: &PhoenixCheckpoint) -> Vec<u8> {
    let payload = serde_json::to_string(cp).expect("in-memory serialization").into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&PHOENIX_MAGIC);
    out.extend_from_slice(&PHOENIX_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode an envelope produced by [`encode_checkpoint`]. Total function:
/// every byte string returns `Ok` or a typed [`PhoenixError`], never a
/// panic — truncation, bit flips and version skew are all routine inputs
/// after a crash.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<PhoenixCheckpoint, PhoenixError> {
    if bytes.len() < HEADER_LEN {
        return Err(PhoenixError::Truncated {
            expected: HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("fixed slice");
    if magic != PHOENIX_MAGIC {
        return Err(PhoenixError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("fixed slice"));
    if version != PHOENIX_VERSION {
        return Err(PhoenixError::VersionSkew { found: version, supported: PHOENIX_VERSION });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("fixed slice"));
    let expected_total = (HEADER_LEN as u64).saturating_add(payload_len);
    if (bytes.len() as u64) < expected_total {
        return Err(PhoenixError::Truncated { expected: expected_total, got: bytes.len() as u64 });
    }
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("fixed slice"));
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(PhoenixError::Checksum { expected: stored_crc, found: actual_crc });
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| PhoenixError::Payload { detail: e.to_string() })?;
    serde_json::from_str(text).map_err(|e| PhoenixError::Payload { detail: format!("{e:?}") })
}

/// A drift road test that can stop, checkpoint, and resume. Building one
/// runs nothing; drive it with [`DriftSession::run_until`] and tear it
/// down with [`DriftSession::finish`]. Two sessions built from equal
/// arguments are interchangeable restore targets: everything not in the
/// checkpoint is a deterministic function of the arguments.
pub struct DriftSession {
    net: Network,
    hooks: DriftHooks,
    handle: BankHandle,
    victim: Option<Ipv4Addr>,
    attack_start: Option<SimTime>,
    deadline: SimTime,
}

impl DriftSession {
    /// Build the campus, schedule, chaos plan, filter bank and the
    /// guard + controller + pilot stack — exactly the setup of
    /// [`crate::driftpilot::drift_road_test`], which is this constructor
    /// plus a single `run_until(deadline)`.
    pub fn new(
        scenario: &Scenario,
        known_good: PipelineProgram,
        window_model: Box<dyn Classifier + Send>,
        cfg: DriftRunConfig,
    ) -> Self {
        let campus = campuslab_netsim::Campus::build(scenario.campus.clone());
        let (mut schedule, victim, attack_start) = build_schedule(&campus, scenario);
        let cohort = canary_hosts(&campus, cfg.canary_fraction);
        let mut net = campus.net;
        schedule.apply_to(&mut net);
        if let Some(plan) = &cfg.road.chaos {
            plan.apply_to(&mut net);
        }

        let extractor = FieldExtractor::new(scenario.campus.campus_prefix());
        let (bank, handle) = BankFilter::new(extractor.clone());
        net.install_filter(campus.border, bank);

        let guard = RolloutGuard::new(
            RolloutConfig {
                tap: campus.border_link,
                extractor,
                slo: cfg.slo.clone(),
                canary_hosts: cohort,
                tap_blackouts: cfg.road.tap_blackouts.clone(),
                submissions: Vec::new(),
            },
            known_good.clone(),
            handle.clone(),
        );
        let controller = MitigationController::new(
            MitigationControllerConfig {
                tap: campus.border_link,
                placement: cfg.road.placement,
                gate: cfg.road.gate,
                window_ns: cfg.road.window_ns,
                min_packets: cfg.road.min_packets,
                program: known_good.clone(),
                install: cfg.road.install.clone(),
                tap_blackouts: cfg.road.tap_blackouts.clone(),
            },
            window_model,
            handle.clone(),
        );
        let pilot = DriftPilot::new(DriftPilotConfig {
            tap: campus.border_link,
            deployed_fingerprint: known_good.fingerprint(),
            ..cfg.pilot
        });

        // An always-on pipeline has no natural drain point: a candidate
        // submitted just before traffic ends would leave the guard
        // evaluating inconclusive empty windows forever. Cap the run at
        // the workload span plus the configured settling margin — a
        // deterministic sim-time bound, identical under every executor.
        let deadline = SimTime::ZERO + scenario.workload.duration + cfg.settle;

        DriftSession {
            net,
            hooks: DriftHooks::new(guard, controller, pilot),
            handle,
            victim,
            attack_start,
            deadline,
        }
    }

    /// The session's hard stop (workload end + settle).
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Process every event up to `min(until, deadline)`. Returning from
    /// this call is a quiescent barrier: no event is mid-dispatch, so a
    /// checkpoint taken here is consistent.
    pub fn run_until(&mut self, until: SimTime) {
        let cap = if until < self.deadline { until } else { self.deadline };
        self.net.run(&mut self.hooks, Some(cap));
    }

    /// Snapshot the full dynamic state at a quiescent barrier.
    pub fn checkpoint(&mut self) -> PhoenixCheckpoint {
        PhoenixCheckpoint {
            net: self.net.checkpoint(),
            hooks: self.hooks.freeze(),
            bank: self.handle.freeze(),
        }
    }

    /// Load a checkpoint into this (freshly built, not yet run) session.
    /// The session must have been built from the same arguments as the
    /// one that took the checkpoint — the simulator asserts topology and
    /// seed agreement; hook configs are the caller's contract.
    pub fn restore(&mut self, cp: PhoenixCheckpoint) {
        self.net.restore(cp.net);
        self.hooks.thaw_state(cp.hooks);
        self.handle.thaw(cp.bank);
    }

    /// Run any remaining events to the deadline, then tear the session
    /// down into the same [`DriftRunOutcome`] a drift road test produces.
    pub fn finish(mut self) -> DriftRunOutcome {
        self.run_until(self.deadline);

        let mut tracer = Tracer::new();
        let end_ns = self.net.now().as_nanos();
        tracer.record("drift-roadtest".to_string(), 0, end_ns);
        let (controller_obs, detector_obs) = self.hooks.controller.take_obs();
        tracer.merge_from(&controller_obs.tracer);
        let rollout_obs = self.hooks.guard.take_obs();
        tracer.merge_from(&rollout_obs.tracer);
        let drift_obs = self.hooks.pilot.take_obs();
        tracer.merge_from(&drift_obs.tracer);

        let filter = self.handle.stats();
        DriftRunOutcome {
            episodes: std::mem::take(&mut self.hooks.pilot.episodes),
            retrains: std::mem::take(&mut self.hooks.pilot.retrains),
            events: std::mem::take(&mut self.hooks.guard.events),
            final_deployed: self.hooks.pilot.deployed_fingerprint(),
            registry_len: self.hooks.guard.registry().len(),
            filter,
            net: self.net.stats,
            victim: self.victim,
            attack_start: self.attack_start,
            obs: RunObs {
                net: self.net.obs,
                capture: None,
                detector: Some(detector_obs),
                controller: Some(controller_obs),
                filter: Some(filter),
                tracer,
                rollout: Some(rollout_obs),
                resolver: None,
                drift: Some(drift_obs),
                plaza: None,
            },
        }
    }
}

/// The kill-point harness: a factory for identical sessions plus a
/// checkpoint grid, with one method per leg of the recovery contract.
pub struct CrashCart<F: Fn() -> DriftSession> {
    make: F,
    step: SimDuration,
}

impl<F: Fn() -> DriftSession> CrashCart<F> {
    /// Harness sessions from `make` (which must build from identical
    /// arguments every call), checkpointing every `step` of sim time.
    pub fn new(make: F, step: SimDuration) -> Self {
        assert!(step > SimDuration::ZERO, "checkpoint grid step must be positive");
        CrashCart { make, step }
    }

    /// Build one fresh session from the harness's factory — for probes
    /// (e.g. sizing a checkpoint) that want the exact sweep arguments.
    pub fn make_session(&self) -> DriftSession {
        (self.make)()
    }

    /// The checkpoint barriers: multiples of the grid step from the first
    /// window up to and including the first one at or past the deadline.
    /// Killing at the last barrier is legal (restore, resume zero events,
    /// finish) — crash-during-teardown is a real failure mode too.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let deadline = (self.make)().deadline();
        let step = self.step.as_nanos().max(1);
        let mut out = Vec::new();
        let mut k = 1u64;
        loop {
            let t = SimTime(step.saturating_mul(k));
            out.push(t);
            if t >= deadline {
                return out;
            }
            k += 1;
        }
    }

    /// The baseline leg: one session driven over the full grid with no
    /// kill. Window-by-window driving equals a single uncapped run — the
    /// event queue carries over between caps — so this fingerprint also
    /// equals `drift_road_test`'s.
    pub fn uninterrupted(&self) -> Fingerprint {
        let grid = self.boundaries();
        let mut session = (self.make)();
        for &t in &grid {
            session.run_until(t);
        }
        fingerprint(&session.finish())
    }

    /// The crash leg: run to boundary `kill` (an index into
    /// [`CrashCart::boundaries`]), checkpoint, push the checkpoint through
    /// the full encode → decode envelope (the bytes are all a dead
    /// process leaves behind), drop the session, restore into a freshly
    /// built one, and resume over the remaining grid.
    pub fn killed_at(&self, kill: usize) -> Result<Fingerprint, PhoenixError> {
        let grid = self.boundaries();
        assert!(kill < grid.len(), "kill index {kill} outside grid of {}", grid.len());
        let mut session = (self.make)();
        for &t in &grid[..=kill] {
            session.run_until(t);
        }
        let bytes = encode_checkpoint(&session.checkpoint());
        drop(session); // the crash: nothing survives but the bytes
        let cp = decode_checkpoint(&bytes)?;
        let mut revived = (self.make)();
        revived.restore(cp);
        for &t in &grid[kill + 1..] {
            revived.run_until(t);
        }
        Ok(fingerprint(&revived.finish()))
    }

    /// Kill at every boundary and diff each resumed fingerprint against
    /// the uninterrupted baseline. Returns the mismatching boundary
    /// indices — empty means the recovery contract holds everywhere.
    pub fn sweep(&self) -> Vec<usize> {
        let baseline = self.uninterrupted();
        let mut mismatches = Vec::new();
        for k in 0..self.boundaries().len() {
            match self.killed_at(k) {
                Ok(fp) if fp == baseline => {}
                _ => mismatches.push(k),
            }
        }
        mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driftpilot::drift_road_test;
    use crate::scenario::collect;
    use campuslab_control::{run_development_loop, DevLoopConfig, RolloutStage};
    use campuslab_features::{window_dataset, LabelMode, WindowConfig};
    use campuslab_ml::{DecisionTree, TreeConfig};

    /// Train once per process: the dev loop is the expensive part of
    /// every test here, and each test only needs its (deterministic)
    /// output.
    fn trained() -> &'static (PipelineProgram, DecisionTree) {
        static TRAINED: std::sync::OnceLock<(PipelineProgram, DecisionTree)> =
            std::sync::OnceLock::new();
        TRAINED.get_or_init(|| {
            let data = collect(&Scenario::small());
            let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
            let wd = window_dataset(
                &data.packets,
                WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
                LabelMode::BinaryAttack,
            );
            (dev.program, DecisionTree::fit(&wd, TreeConfig::shallow(4)))
        })
    }

    /// A deliberately small crash-test scenario: the amplification campus
    /// cut to a 5 s workload. Checkpoints stay small (the event queue
    /// carries every unplayed injection) and one run is cheap enough to
    /// sweep kill points over in debug CI — the full-size rotation drift
    /// sweep is E19's job, in a release binary.
    fn cheap_scenario() -> Scenario {
        let mut s = Scenario::small();
        s.workload.duration = SimDuration::from_secs(5);
        s
    }

    fn cheap_session() -> DriftSession {
        let (known_good, model) = trained();
        DriftSession::new(
            &cheap_scenario(),
            known_good.clone(),
            Box::new(model.clone()),
            DriftRunConfig { settle: SimDuration::ZERO, ..DriftRunConfig::default() },
        )
    }

    fn rotation_session() -> DriftSession {
        let (known_good, model) = trained();
        DriftSession::new(
            &Scenario::drift_rotation(),
            known_good.clone(),
            Box::new(model.clone()),
            DriftRunConfig::default(),
        )
    }

    #[test]
    fn windowed_session_equals_drift_road_test() {
        let (known_good, model) = trained();
        let road = drift_road_test(
            &cheap_scenario(),
            known_good.clone(),
            Box::new(model.clone()),
            DriftRunConfig { settle: SimDuration::ZERO, ..DriftRunConfig::default() },
        );
        let cart = CrashCart::new(cheap_session, SimDuration::from_secs(1));
        assert_eq!(cart.uninterrupted(), fingerprint(&road));
    }

    #[test]
    fn checkpoint_roundtrips_through_the_envelope() {
        let mut session = cheap_session();
        session.run_until(SimTime::from_millis(1_500));
        let cp = session.checkpoint();
        let bytes = encode_checkpoint(&cp);
        let back = decode_checkpoint(&bytes).expect("clean envelope decodes");
        assert_eq!(encode_checkpoint(&back), bytes, "re-encode is byte-identical");
    }

    /// The tentpole smoke: kill at every grid boundary (attack onset,
    /// mid-mitigation, retrains, settle) and demand resumed ==
    /// uninterrupted at each one. The randomized differential lives in
    /// `tests/phoenix_diff.rs`; the full-size drift sweep is E19's.
    #[test]
    fn kill_at_every_boundary_resumes_byte_identically() {
        let cart = CrashCart::new(cheap_session, SimDuration::from_secs(1));
        assert_eq!(cart.sweep(), Vec::<usize>::new());
    }

    /// Satellite: a checkpoint taken while the guard is mid-canary (the
    /// ladder's most state-laden stage: candidate mirror, cohort verdicts,
    /// baselines, cooldowns) restores and converges identically.
    #[test]
    fn restore_mid_canary_preserves_the_ladder() {
        // Walk the grid until a boundary catches the guard mid-ladder
        // (shadow or canary: candidate mirror live, cohort verdicts and
        // baselines accumulating — the ladder's most state-laden stages).
        let grid_step = SimDuration::from_secs(1);
        let mut live = rotation_session();
        let deadline = live.deadline();
        let mut found = false;
        let mut t = SimTime::ZERO;
        while t < deadline {
            t += grid_step;
            live.run_until(t);
            if matches!(live.hooks.guard.stage(), RolloutStage::Canary | RolloutStage::Shadow) {
                found = true;
                break;
            }
        }
        assert!(found, "rotation drift must put the guard mid-ladder at some 1s boundary");
        let mid_stage = live.hooks.guard.stage();
        let cp = live.checkpoint();

        let mut revived = rotation_session();
        revived.restore(decode_checkpoint(&encode_checkpoint(&cp)).expect("decodes"));
        assert_eq!(revived.hooks.guard.stage(), mid_stage, "ladder stage survives restore");

        live.run_until(deadline);
        revived.run_until(deadline);
        assert_eq!(fingerprint(&revived.finish()), fingerprint(&live.finish()));
    }

    /// Satellite: a checkpoint taken inside an open drift episode (onset
    /// stamped, not yet mitigated) restores with the episode still open
    /// and closes it on the same sim-time schedule.
    #[test]
    fn restore_mid_drift_episode_closes_on_schedule() {
        let grid_step = SimDuration::from_secs(1);
        let mut live = rotation_session();
        let deadline = live.deadline();
        let mut found = false;
        let mut t = SimTime::ZERO;
        while t < deadline {
            t += grid_step;
            live.run_until(t);
            if live.hooks.pilot.episodes.iter().any(|e| e.mitigated.is_none()) {
                found = true;
                break;
            }
        }
        assert!(found, "rotation drift must leave an episode open at some 1s boundary");
        let cp = live.checkpoint();

        let mut revived = rotation_session();
        revived.restore(cp);
        assert!(
            revived.hooks.pilot.episodes.iter().any(|e| e.mitigated.is_none()),
            "open episode survives restore"
        );

        live.run_until(deadline);
        revived.run_until(deadline);
        assert_eq!(fingerprint(&revived.finish()), fingerprint(&live.finish()));
    }

    #[test]
    fn decoder_rejects_bad_magic_version_skew_and_short_input() {
        let mut session = cheap_session();
        session.run_until(SimTime::from_millis(1_500));
        let bytes = encode_checkpoint(&session.checkpoint());

        assert!(matches!(
            decode_checkpoint(&[]),
            Err(PhoenixError::Truncated { got: 0, .. })
        ));
        assert!(matches!(
            decode_checkpoint(&bytes[..HEADER_LEN - 1]),
            Err(PhoenixError::Truncated { .. })
        ));

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Q';
        assert!(matches!(decode_checkpoint(&bad_magic), Err(PhoenixError::BadMagic { .. })));

        let mut skew = bytes.clone();
        skew[4..8].copy_from_slice(&(PHOENIX_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode_checkpoint(&skew).err(),
            Some(PhoenixError::VersionSkew {
                found: PHOENIX_VERSION + 1,
                supported: PHOENIX_VERSION
            })
        );
    }

    /// Never-panic fuzz over the envelope decoder, in the house style of
    /// the wire/pcap fuzzers: `CAMPUSLAB_FUZZ_CASES` scales the sweep.
    /// Truncations at every prefix length (torn write), single-bit flips
    /// across header and payload (storage corruption), and random byte
    /// soup must all return a typed error or a valid checkpoint — never
    /// panic, never a wrong-checksum accept.
    #[test]
    fn envelope_decoder_never_panics_on_corrupt_input() {
        let mut session = cheap_session();
        session.run_until(SimTime::from_millis(4_000));
        let bytes = encode_checkpoint(&session.checkpoint());

        let cases: u64 = std::env::var("CAMPUSLAB_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);

        // Torn writes: every prefix of the header and an env-scaled
        // sample of payload prefixes must decode to a typed error.
        for len in 0..HEADER_LEN.min(bytes.len()) {
            assert!(decode_checkpoint(&bytes[..len]).is_err());
        }
        let stride = (bytes.len() / cases.max(1) as usize).max(1);
        for len in (HEADER_LEN..bytes.len()).step_by(stride) {
            assert!(
                decode_checkpoint(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded clean"
            );
        }

        // Bit flips: one flipped bit anywhere must surface as a typed
        // error (magic/version/length/checksum), or — only when the flip
        // lands in the crc field's own representation — still checksum.
        let mut x = 0x9E3779B97F4A7C15u64; // splitmix stream, deterministic
        for _ in 0..cases {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let r = x.wrapping_mul(0x2545F4914F6CDD1D);
            let pos = (r as usize) % bytes.len();
            let bit = (r >> 48) as u8 & 7;
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            assert!(
                decode_checkpoint(&flipped).is_err(),
                "single-bit flip at byte {pos} bit {bit} decoded clean"
            );
        }

        // Byte soup: random garbage of assorted lengths.
        for i in 0..cases {
            x = x.wrapping_add(0x9E3779B97F4A7C15).wrapping_mul(i | 1);
            let len = (x % 256) as usize;
            let soup: Vec<u8> = (0..len)
                .map(|j| (x.rotate_left(j as u32 % 63) >> 13) as u8)
                .collect();
            let _ = decode_checkpoint(&soup); // must not panic
        }
    }
}
