//! Drift road tests (experiment E17): the always-on learn → distill →
//! compile → deploy loop under traffic drift. A [`DriftPilot`] streams
//! features off the border tap, retrains on fresh windows when its drift
//! score fires (or on the periodic schedule), and hands candidate
//! programs to the [`RolloutGuard`]'s shadow → canary → full machinery —
//! while the [`MitigationController`] keeps defending the campus with
//! whatever program is currently deployed. All three hooks share one
//! simulation; every coupling between them happens inside hook callbacks
//! on sim-time state only, so the whole pipeline replays byte-identically
//! under sequential, parallel and sharded executors.

use crate::observe::RunObs;
use crate::roadtest::RoadTestConfig;
use crate::scenario::Scenario;
use campuslab_control::{
    DriftEpisode, DriftPilot, DriftPilotConfig, FrozenController, FrozenDriftPilot, FrozenGuard,
    MitigationController, RetrainRecord, RolloutEvent, RolloutGuard, SloPolicy, TeacherKind,
};
use campuslab_dataplane::PipelineProgram;
use campuslab_ml::{Classifier, ForestConfig};
use campuslab_netsim::{
    Commands, Dir, DropReason, LinkId, NodeId, Packet, SimDuration, SimHooks, SimTime,
};
use std::net::Ipv4Addr;

/// Parameters of a drift road test.
pub struct DriftRunConfig {
    /// Base road-test knobs (placement, chaos, blackouts, install channel).
    pub road: RoadTestConfig,
    /// SLO windows, gates and hysteresis for the guard. The default uses
    /// `promote_after: 1` so a healthy candidate climbs the full ladder in
    /// three SLO windows — drift mitigation is racing live damage, and the
    /// shadow/canary gates still veto a bad program before it spreads.
    pub slo: SloPolicy,
    /// Fraction of access switches whose hosts form the canary cohort.
    pub canary_fraction: f64,
    /// Pilot knobs. `tap` and `deployed_fingerprint` are overwritten by
    /// the runner (border link, known-good program's fingerprint).
    pub pilot: DriftPilotConfig,
    /// Settling margin past the workload's end before the run's hard
    /// deadline. The default (4 s) gives in-flight candidates time to
    /// finish the ladder; `SimDuration::ZERO` cuts the run at the last
    /// workload packet — the early-termination edge a plaza slice hits.
    pub settle: SimDuration,
}

impl Default for DriftRunConfig {
    fn default() -> Self {
        // The always-on pilot retrains every couple of sim seconds, so its
        // teacher is a deliberately small forest: the distilled student is
        // what deploys anyway, and an 8-tree teacher keeps a full drift
        // road test fast enough to replay in CI at several shard counts.
        let mut pilot = DriftPilotConfig::new(LinkId(0), 0);
        pilot.devloop.teacher =
            TeacherKind::Forest(ForestConfig { n_trees: 8, ..ForestConfig::default() });
        DriftRunConfig {
            road: RoadTestConfig::default(),
            slo: SloPolicy { promote_after: 1, ..SloPolicy::default() },
            canary_fraction: 0.25,
            pilot,
            settle: SimDuration::from_secs(4),
        }
    }
}

/// Guard + controller + pilot composed over one simulation. Per event the
/// order is: guard first (mirroring must observe traffic the way the bank
/// does), controller second (defense reaction), pilot third (feature
/// ingest), then [`DriftHooks::sync`] moves evidence between them.
pub struct DriftHooks {
    pub guard: RolloutGuard,
    pub controller: MitigationController,
    pub pilot: DriftPilot,
    seen_ctl_events: usize,
    seen_ctl_giveups: usize,
    seen_guard_events: usize,
}

impl DriftHooks {
    /// Compose the three layers.
    pub fn new(guard: RolloutGuard, controller: MitigationController, pilot: DriftPilot) -> Self {
        DriftHooks {
            guard,
            controller,
            pilot,
            seen_ctl_events: 0,
            seen_ctl_giveups: 0,
            seen_guard_events: 0,
        }
    }

    /// Forward freshly produced guard events to the pilot (so verdicts on
    /// its candidates land before it decides what to queue next).
    fn forward_guard_events(&mut self) {
        while self.seen_guard_events < self.guard.events.len() {
            let e = self.guard.events[self.seen_guard_events].clone();
            self.seen_guard_events += 1;
            self.pilot.on_guard_event(&e);
        }
    }

    /// One evidence pass after each hook: controller episodes become guard
    /// SLO samples and guard verdicts reach the pilot.
    fn sync(&mut self) {
        for e in &self.controller.events[self.seen_ctl_events..] {
            let ttm_ms = (e.installed_at - e.detected_at).as_nanos() / 1_000_000;
            self.guard.record_ttm_sample(ttm_ms);
        }
        self.seen_ctl_events = self.controller.events.len();
        for g in &self.controller.giveups[self.seen_ctl_giveups..] {
            self.guard.record_giveup(g.reason);
        }
        self.seen_ctl_giveups = self.controller.giveups.len();
        self.forward_guard_events();
    }

    /// Submit the pilot's queued candidates — on timer events only, so a
    /// candidate refused while the guard is busy retries at timer cadence
    /// (a handful per sim second) instead of on every packet, which would
    /// flood the decision log with rejections. Candidates are produced by
    /// the pilot's own window timer, so submission latency is zero; the
    /// drain runs once, never to quiescence, because a refused candidate
    /// re-queues itself and a loop would spin.
    fn drain_candidates(&mut self, now: SimTime, cmds: &mut Commands) {
        for program in self.pilot.take_candidates() {
            match self.guard.submit_candidate(now, program.clone(), cmds) {
                Ok(version) => self.pilot.on_guard_accepted(&version),
                Err(_) => self.pilot.on_guard_refused(program),
            }
        }
        // The submissions themselves appended Submitted/Rejected events.
        self.forward_guard_events();
    }

    /// Snapshot the three layers' dynamic state plus the evidence-sync
    /// cursors between them, for a [`crate::phoenix`] checkpoint. The
    /// cursors matter: a restored stack must neither replay controller
    /// episodes the guard already counted as TTM samples nor re-deliver
    /// guard verdicts the pilot already acted on.
    pub fn freeze(&self) -> FrozenDriftHooks {
        FrozenDriftHooks {
            guard: self.guard.freeze(),
            controller: self.controller.freeze(),
            pilot: self.pilot.freeze(),
            seen_ctl_events: self.seen_ctl_events,
            seen_ctl_giveups: self.seen_ctl_giveups,
            seen_guard_events: self.seen_guard_events,
        }
    }

    /// Apply a frozen snapshot onto a freshly built stack (same scenario,
    /// same configs, same bank handle). Counterpart of
    /// [`DriftHooks::freeze`].
    pub fn thaw_state(&mut self, frozen: FrozenDriftHooks) {
        self.guard.thaw_state(frozen.guard);
        self.controller.thaw_state(frozen.controller);
        self.pilot.thaw_state(frozen.pilot);
        self.seen_ctl_events = frozen.seen_ctl_events;
        self.seen_ctl_giveups = frozen.seen_ctl_giveups;
        self.seen_guard_events = frozen.seen_guard_events;
    }
}

/// Checkpoint mirror of [`DriftHooks`]: guard, controller and pilot frozen
/// state plus the three evidence-sync cursors.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenDriftHooks {
    pub guard: FrozenGuard,
    pub controller: FrozenController,
    pub pilot: FrozenDriftPilot,
    pub seen_ctl_events: usize,
    pub seen_ctl_giveups: usize,
    pub seen_guard_events: usize,
}

impl SimHooks for DriftHooks {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        self.guard.on_tap(now, link, dir, packet, cmds);
        self.controller.on_tap(now, link, dir, packet, cmds);
        self.pilot.on_tap(now, link, dir, packet, cmds);
        self.sync();
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        cmds: &mut Commands,
    ) {
        self.guard.on_deliver(now, node, packet, latency, cmds);
        self.controller.on_deliver(now, node, packet, latency, cmds);
        self.pilot.on_deliver(now, node, packet, latency, cmds);
        self.sync();
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, cmds: &mut Commands) {
        self.guard.on_drop(now, reason, packet, cmds);
        self.controller.on_drop(now, reason, packet, cmds);
        self.pilot.on_drop(now, reason, packet, cmds);
        self.sync();
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        self.guard.on_timer(now, token, cmds);
        self.controller.on_timer(now, token, cmds);
        self.pilot.on_timer(now, token, cmds);
        self.sync();
        self.drain_candidates(now, cmds);
    }
}

/// What a drift road test measured.
pub struct DriftRunOutcome {
    /// Drift episodes the pilot opened, in onset order.
    pub episodes: Vec<DriftEpisode>,
    /// Every retraining run: trigger, window hash, fingerprints, fate.
    pub retrains: Vec<RetrainRecord>,
    /// The guard's decision log, in sim order.
    pub events: Vec<RolloutEvent>,
    /// Fingerprint the pilot believes is deployed at run end.
    pub final_deployed: u64,
    /// Known-good versions committed by the end of the run.
    pub registry_len: usize,
    pub filter: campuslab_control::FastLoopStatsSnapshot,
    pub net: campuslab_netsim::NetStats,
    /// The amplification victim's address, when the scenario has one.
    pub victim: Option<Ipv4Addr>,
    /// When the (first) attack campaign started.
    pub attack_start: Option<SimTime>,
    /// Observatory bundle, drift section included.
    pub obs: RunObs,
}

impl DriftRunOutcome {
    /// Sim time from the first drift onset to its mitigated-with-SLOs-green
    /// close, when the run got that far.
    pub fn first_mitigated_ttm(&self) -> Option<SimDuration> {
        self.episodes.iter().find_map(|e| e.mitigated.map(|m| m - e.onset))
    }

    /// Retrains and guard decisions merged into one sim-ordered log — the
    /// always-on pipeline's story an operator reads after an incident.
    pub fn timeline(&self) -> String {
        let mut lines: Vec<(SimTime, String)> = Vec::new();
        for r in &self.retrains {
            lines.push((
                r.at,
                format!(
                    "{} retrain[{:?}] records={} fp={:016x} -> {:?}\n",
                    r.at, r.trigger, r.records, r.program_fingerprint, r.outcome
                ),
            ));
        }
        for e in &self.events {
            lines.push((e.at, format!("{} {} {:?}\n", e.at, e.program, e.kind)));
        }
        for ep in &self.episodes {
            lines.push((ep.onset, format!("{} drift[#{}] onset\n", ep.onset, ep.ordinal)));
            if let Some(m) = ep.mitigated {
                lines.push((m, format!("{} drift[#{}] mitigated\n", m, ep.ordinal)));
            }
        }
        lines.sort_by_key(|(at, _)| *at);
        lines.into_iter().map(|(_, l)| l).collect()
    }
}

/// Run a drift road test: the scenario plays out while the controller
/// defends the campus with the known-good program, the pilot retrains on
/// fresh tap windows, and the guard walks each pilot candidate through
/// shadow → canary → full.
pub fn drift_road_test(
    scenario: &Scenario,
    known_good: PipelineProgram,
    window_model: Box<dyn Classifier + Send>,
    cfg: DriftRunConfig,
) -> DriftRunOutcome {
    // The uninterrupted special case of a resumable session: build, one
    // capped run straight to the deadline inside `finish`. E19's CrashCart
    // pins the other cases (stop at any barrier, checkpoint, resume) to
    // this one's fingerprint.
    crate::phoenix::DriftSession::new(scenario, known_good, window_model, cfg).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::collect;
    use campuslab_control::{run_development_loop, DevLoopConfig, RetrainOutcome, RolloutEventKind};
    use campuslab_features::{window_dataset, LabelMode, WindowConfig};
    use campuslab_ml::{DecisionTree, TreeConfig};

    fn trained() -> (PipelineProgram, DecisionTree) {
        let data = collect(&Scenario::small());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        (dev.program, DecisionTree::fit(&wd, TreeConfig::shallow(4)))
    }

    #[test]
    fn pilot_retrains_and_commits_under_rotation_drift() {
        let (known_good, model) = trained();
        let outcome = drift_road_test(
            &Scenario::drift_rotation(),
            known_good.clone(),
            Box::new(model),
            DriftRunConfig::default(),
        );
        let dobs = outcome.obs.drift.as_ref().expect("drift obs");
        // The pilot lived: windows sealed, records streamed, retrains ran.
        assert!(dobs.windows() >= 10, "windows {}", dobs.windows());
        assert!(dobs.records() > 1_000, "records {}", dobs.records());
        assert!(dobs.retrains() >= 2, "timeline:\n{}", outcome.timeline());
        // At least one candidate was handed to the guard and at least one
        // pilot candidate was committed as the new known-good.
        assert!(dobs.submitted() >= 1, "timeline:\n{}", outcome.timeline());
        let committed = outcome
            .events
            .iter()
            .filter(|e| matches!(e.kind, RolloutEventKind::Committed))
            .count();
        assert!(committed >= 1, "timeline:\n{}", outcome.timeline());
        assert!(outcome.registry_len >= 2, "registry {}", outcome.registry_len);
        // The pilot's deployed fingerprint moved off the stale program.
        assert_ne!(outcome.final_deployed, known_good.fingerprint());
        // Every retrain is on the record with a fate.
        assert_eq!(outcome.retrains.len() as u64, dobs.retrains());
        // The prom dump carries the drift section.
        assert!(outcome.obs.prom().contains("dp_retrains_total"));
    }

    #[test]
    fn benign_drift_never_bars_or_breaks_the_pipeline() {
        let (known_good, model) = trained();
        let outcome = drift_road_test(
            &Scenario::drift_app_rollout(),
            known_good,
            Box::new(model),
            DriftRunConfig::default(),
        );
        // Single-class (all-benign) windows retrain safely: no panic, and
        // every retrain lands one of the sanctioned fates.
        assert!(outcome.retrains.iter().all(|r| matches!(
            r.outcome,
            RetrainOutcome::Queued | RetrainOutcome::Unchanged | RetrainOutcome::Barred
        )));
        // No attack, so the deployed filter never dropped benign traffic
        // wholesale — the campus stays functional under model churn.
        let total = outcome.filter.packets.max(1);
        assert!(
            outcome.filter.dropped_benign * 10 < total,
            "benign drops {} of {}",
            outcome.filter.dropped_benign,
            total
        );
    }

    #[test]
    fn zero_settle_cuts_the_run_at_workload_end_without_breaking_anything() {
        let (known_good, model) = trained();
        let scenario = Scenario::drift_rotation();
        let outcome = drift_road_test(
            &scenario,
            known_good,
            Box::new(model),
            DriftRunConfig { settle: SimDuration::ZERO, ..DriftRunConfig::default() },
        );
        // The hard deadline with no settling margin: nothing — retrains,
        // guard decisions, episode onsets — may be stamped after it.
        let deadline = SimTime::ZERO + scenario.workload.duration;
        assert!(outcome.retrains.iter().all(|r| r.at <= deadline));
        assert!(outcome.events.iter().all(|e| e.at <= deadline));
        assert!(outcome.episodes.iter().all(|ep| ep.onset <= deadline));
        // The pilot still lived through the workload itself...
        let dobs = outcome.obs.drift.as_ref().expect("drift obs");
        assert!(dobs.windows() >= 1, "no windows sealed before the deadline");
        assert!(dobs.retrains() >= 1, "timeline:\n{}", outcome.timeline());
        // ...and an episode the deadline caught mid-flight is simply left
        // open (typed as unmitigated), never a panic or a phantom close.
        for ep in &outcome.episodes {
            if let Some(m) = ep.mitigated {
                assert!(m <= deadline);
            }
        }
        // The truncated bundle still renders coherently.
        let prom = outcome.obs.prom();
        assert!(prom.contains("dp_windows_total"));
        assert!(prom.contains("rollout_submissions_total"));
    }

    #[test]
    fn drift_run_is_deterministic() {
        let (known_good, model) = trained();
        let run = || {
            let outcome = drift_road_test(
                &Scenario::drift_rotation(),
                known_good.clone(),
                Box::new(model.clone()),
                DriftRunConfig::default(),
            );
            (outcome.timeline(), outcome.obs.prom(), outcome.obs.trace_json())
        };
        assert_eq!(run(), run(), "drift run must be bit-identical across runs");
    }
}
