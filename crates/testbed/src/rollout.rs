//! Guarded road tests (experiment E15): the rollout guard supervises a
//! candidate program's shadow → canary → full promotion on a live campus
//! while the mitigation controller defends it, and the two hooks share
//! one simulation. The guard reads the controller's latency samples and
//! install give-ups each event, so a flaky control channel is
//! rollback-eligible evidence, not an invisible failure.

use crate::observe::RunObs;
use crate::roadtest::RoadTestConfig;
use crate::scenario::{build_schedule, Scenario};
use campuslab_control::{
    BankFilter, FrozenController, FrozenGuard, MitigationController, MitigationControllerConfig,
    RolloutConfig, RolloutEvent, RolloutGuard, RolloutStage, SloPolicy,
};
use campuslab_dataplane::{FieldExtractor, PipelineProgram};
use campuslab_ml::Classifier;
use campuslab_netsim::{
    Campus, Commands, Dir, DropReason, LinkId, NodeId, Packet, SimDuration, SimHooks, SimTime,
};
use campuslab_obs::Tracer;
use std::net::IpAddr;

/// Parameters of a guarded road test, over and above the road-test ones.
pub struct GuardedRunConfig {
    /// Base road-test knobs (placement, chaos, blackouts, install channel).
    pub road: RoadTestConfig,
    /// SLO windows, gates and hysteresis for the guard.
    pub slo: SloPolicy,
    /// Fraction of access switches whose hosts form the canary cohort.
    pub canary_fraction: f64,
    /// Candidates submitted to the guard at scheduled sim times.
    pub submissions: Vec<(SimTime, PipelineProgram)>,
    /// Hard stop for the simulation. `None` (the default) runs until the
    /// event queue drains; a plaza slice or an operator-imposed budget
    /// caps the run, possibly mid-ladder — the guard simply freezes in
    /// whatever stage the deadline caught it.
    pub deadline: Option<SimTime>,
}

impl Default for GuardedRunConfig {
    fn default() -> Self {
        GuardedRunConfig {
            road: RoadTestConfig::default(),
            slo: SloPolicy::default(),
            canary_fraction: 0.25,
            submissions: Vec::new(),
            deadline: None,
        }
    }
}

/// The hosts behind the first `ceil(fraction * n_access)` access switches,
/// in topology order. `Campus::build` pushes hosts grouped by access
/// switch, so the chunks below are exactly the per-switch cohorts.
pub fn canary_hosts(campus: &Campus, fraction: f64) -> Vec<IpAddr> {
    let per_access = campus.config.hosts_per_access.max(1);
    let n_access = campus.config.dist_count * campus.config.access_per_dist;
    let take = ((fraction.clamp(0.0, 1.0) * n_access as f64).ceil() as usize).min(n_access);
    campus
        .hosts
        .chunks(per_access)
        .take(take)
        .flatten()
        .map(|&h| IpAddr::V4(campus.addr_of(h)))
        .collect()
}

/// Guard + controller composed over one simulation. Order matters: the
/// guard sees each tap packet first (mirroring must observe traffic the
/// way the bank does, before any controller reaction lands this event),
/// and after every hook the controller's freshly resolved episodes are
/// forwarded to the guard as SLO evidence.
pub struct GuardedHooks {
    pub guard: RolloutGuard,
    pub controller: MitigationController,
    seen_events: usize,
    seen_giveups: usize,
}

impl GuardedHooks {
    /// Compose a guard and a controller.
    pub fn new(guard: RolloutGuard, controller: MitigationController) -> Self {
        GuardedHooks { guard, controller, seen_events: 0, seen_giveups: 0 }
    }

    /// Forward newly resolved controller episodes to the guard: landed
    /// installs become latency samples against the TTM budget, give-ups
    /// become rollback-eligible failures (never silently dropped).
    fn sync(&mut self) {
        for e in &self.controller.events[self.seen_events..] {
            let ttm_ms = (e.installed_at - e.detected_at).as_nanos() / 1_000_000;
            self.guard.record_ttm_sample(ttm_ms);
        }
        self.seen_events = self.controller.events.len();
        for g in &self.controller.giveups[self.seen_giveups..] {
            self.guard.record_giveup(g.reason);
        }
        self.seen_giveups = self.controller.giveups.len();
    }

    /// Snapshot the composed pair's dynamic state for a checkpoint: both
    /// layers' frozen mirrors plus the sync cursors, so a restored pair
    /// neither re-forwards evidence the guard already saw nor skips
    /// evidence produced after the snapshot.
    pub fn freeze(&self) -> FrozenGuardedHooks {
        FrozenGuardedHooks {
            guard: self.guard.freeze(),
            controller: self.controller.freeze(),
            seen_events: self.seen_events,
            seen_giveups: self.seen_giveups,
        }
    }

    /// Apply a frozen snapshot onto a freshly built pair (same configs,
    /// same bank handle). Counterpart of [`GuardedHooks::freeze`].
    pub fn thaw_state(&mut self, frozen: FrozenGuardedHooks) {
        self.guard.thaw_state(frozen.guard);
        self.controller.thaw_state(frozen.controller);
        self.seen_events = frozen.seen_events;
        self.seen_giveups = frozen.seen_giveups;
    }
}

/// Checkpoint mirror of [`GuardedHooks`]: the guard's and controller's
/// frozen state plus the evidence-sync cursors between them.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenGuardedHooks {
    pub guard: FrozenGuard,
    pub controller: FrozenController,
    pub seen_events: usize,
    pub seen_giveups: usize,
}

impl SimHooks for GuardedHooks {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        self.guard.on_tap(now, link, dir, packet, cmds);
        self.controller.on_tap(now, link, dir, packet, cmds);
        self.sync();
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        cmds: &mut Commands,
    ) {
        self.guard.on_deliver(now, node, packet, latency, cmds);
        self.controller.on_deliver(now, node, packet, latency, cmds);
        self.sync();
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, cmds: &mut Commands) {
        self.guard.on_drop(now, reason, packet, cmds);
        self.controller.on_drop(now, reason, packet, cmds);
        self.sync();
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        self.guard.on_timer(now, token, cmds);
        self.controller.on_timer(now, token, cmds);
        self.sync();
    }
}

/// What a guarded road test measured.
pub struct GuardedRunOutcome {
    /// The guard's decision log, in sim order.
    pub events: Vec<RolloutEvent>,
    /// Stage when the run ended.
    pub final_stage: RolloutStage,
    /// Known-good versions committed by the end of the run.
    pub registry_len: usize,
    /// Rollback → first healthy window, when both happened.
    pub recovery_time: Option<SimDuration>,
    pub filter: campuslab_control::FastLoopStatsSnapshot,
    pub net: campuslab_netsim::NetStats,
    /// Observatory bundle, rollout section included.
    pub obs: RunObs,
}

impl GuardedRunOutcome {
    /// The decision log as one line per event (sim-time stamped) — the
    /// deployment timeline an operator reads after an incident.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{} {} {:?}\n", e.at, e.program, e.kind));
        }
        out
    }
}

/// Run a guarded road test: the scenario plays out while the controller
/// defends the campus and the guard walks each submitted candidate
/// through shadow → canary → full, vetoing or rolling back on SLO
/// violations.
pub fn guarded_road_test(
    scenario: &Scenario,
    known_good: PipelineProgram,
    window_model: Box<dyn Classifier + Send>,
    cfg: GuardedRunConfig,
) -> GuardedRunOutcome {
    let campus = Campus::build(scenario.campus.clone());
    let (mut schedule, _victim, _attack_start) = build_schedule(&campus, scenario);
    let cohort = canary_hosts(&campus, cfg.canary_fraction);
    let mut net = campus.net;
    schedule.apply_to(&mut net);
    if let Some(plan) = &cfg.road.chaos {
        plan.apply_to(&mut net);
    }

    let extractor = FieldExtractor::new(scenario.campus.campus_prefix());
    let (bank, handle) = BankFilter::new(extractor.clone());
    net.install_filter(campus.border, bank);

    let guard = RolloutGuard::new(
        RolloutConfig {
            tap: campus.border_link,
            extractor,
            slo: cfg.slo.clone(),
            canary_hosts: cohort,
            tap_blackouts: cfg.road.tap_blackouts.clone(),
            submissions: cfg.submissions,
        },
        known_good.clone(),
        handle.clone(),
    );
    let controller = MitigationController::new(
        MitigationControllerConfig {
            tap: campus.border_link,
            placement: cfg.road.placement,
            gate: cfg.road.gate,
            window_ns: cfg.road.window_ns,
            min_packets: cfg.road.min_packets,
            program: known_good,
            install: cfg.road.install.clone(),
            tap_blackouts: cfg.road.tap_blackouts.clone(),
        },
        window_model,
        handle.clone(),
    );

    let mut hooks = GuardedHooks::new(guard, controller);
    net.run(&mut hooks, cfg.deadline);

    let mut tracer = Tracer::new();
    let end_ns = net.now().as_nanos();
    tracer.record("guarded-roadtest".to_string(), 0, end_ns);
    let (controller_obs, detector_obs) = hooks.controller.take_obs();
    tracer.merge_from(&controller_obs.tracer);
    let rollout_obs = hooks.guard.take_obs();
    tracer.merge_from(&rollout_obs.tracer);

    let events = std::mem::take(&mut hooks.guard.events);
    let rolled_back_at = events.iter().find_map(|e| {
        matches!(e.kind, campuslab_control::RolloutEventKind::RolledBack(_)).then_some(e.at)
    });
    let recovered_at = events.iter().find_map(|e| {
        matches!(e.kind, campuslab_control::RolloutEventKind::Recovered).then_some(e.at)
    });
    let recovery_time = match (rolled_back_at, recovered_at) {
        (Some(r), Some(h)) if h >= r => Some(h - r),
        _ => None,
    };

    let filter = handle.stats();
    GuardedRunOutcome {
        events,
        final_stage: hooks.guard.stage(),
        registry_len: hooks.guard.registry().len(),
        recovery_time,
        filter,
        net: net.stats,
        obs: RunObs {
            net: net.obs,
            capture: None,
            detector: Some(detector_obs),
            controller: Some(controller_obs),
            filter: Some(filter),
            tracer,
            rollout: Some(rollout_obs),
            resolver: None,
            drift: None,
            plaza: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::collect;
    use campuslab_control::{
        run_development_loop, CircuitBreakerPolicy, DevLoopConfig, InstallPolicy,
        RolloutEventKind, SloViolation,
    };
    use campuslab_dataplane::{Action, TableEntry, TernaryMatch, FIELD_ORDER};
    use campuslab_features::{window_dataset, LabelMode, WindowConfig};
    use campuslab_ml::{DecisionTree, TreeConfig};

    fn trained() -> (PipelineProgram, DecisionTree) {
        let data = collect(&Scenario::small());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        (dev.program, DecisionTree::fit(&wd, TreeConfig::shallow(4)))
    }

    /// Grossly over-broad: a wildcard drop rule — every packet, benign or
    /// not, matches it. The live campus is mostly TCP, so anything less
    /// (e.g. a drop-all-UDP rule) can sneak under the FP gate.
    fn drop_everything() -> PipelineProgram {
        let matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        PipelineProgram::new(
            "overbroad-wildcard",
            vec![TableEntry { matches, action: Action::Drop, priority: 9, confidence: 0.5 }],
        )
    }

    #[test]
    fn canary_cohort_follows_access_switch_grouping() {
        let campus = Campus::build(Scenario::small().campus);
        // Scenario::small: 2 dists x 2 access x 4 hosts = 4 access switches.
        let quarter = canary_hosts(&campus, 0.25);
        assert_eq!(quarter.len(), campus.config.hosts_per_access);
        let half = canary_hosts(&campus, 0.5);
        assert_eq!(half.len(), 2 * campus.config.hosts_per_access);
        assert!(half.starts_with(&quarter));
        let all = canary_hosts(&campus, 1.0);
        assert_eq!(all.len(), campus.hosts.len());
        // A sliver still canaries one full switch, never a partial one.
        assert_eq!(canary_hosts(&campus, 0.01).len(), campus.config.hosts_per_access);
    }

    #[test]
    fn shadow_vetoes_overbroad_candidate_on_a_live_campus() {
        let (known_good, model) = trained();
        let outcome = guarded_road_test(
            &Scenario::small(),
            known_good,
            Box::new(model),
            GuardedRunConfig {
                submissions: vec![(SimTime::from_secs(1), drop_everything())],
                ..GuardedRunConfig::default()
            },
        );
        assert!(
            outcome.events.iter().any(|e| matches!(
                e.kind,
                RolloutEventKind::Vetoed(SloViolation::FalsePositiveRate)
            )),
            "timeline:\n{}",
            outcome.timeline()
        );
        // Vetoed in shadow: only the known-good version was ever committed.
        assert_eq!(outcome.registry_len, 1);
        assert_eq!(outcome.final_stage, RolloutStage::Idle);
        let robs = outcome.obs.rollout.as_ref().expect("rollout obs");
        assert_eq!(robs.vetoes(), 1);
        assert!(outcome.obs.prom().contains("rollout_vetoes_total 1"));
    }

    /// Matches nothing on the live campus (dst port 9, the discard
    /// protocol): zero FP, zero benign drops — a candidate that promotes
    /// cleanly through the ladder.
    fn drop_discard_port() -> PipelineProgram {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[2] = TernaryMatch::exact(9, 16); // FIELD_ORDER[2] = DstPort
        PipelineProgram::new(
            "noop-discard-port",
            vec![TableEntry { matches, action: Action::Drop, priority: 9, confidence: 0.99 }],
        )
    }

    #[test]
    fn deadline_mid_canary_freezes_the_ladder() {
        let (known_good, model) = trained();
        let cfg = || GuardedRunConfig {
            submissions: vec![(SimTime::from_secs(1), drop_discard_port())],
            ..GuardedRunConfig::default()
        };
        // Uncapped reference run: the clean candidate walks the full
        // ladder; note when it entered canary and when it left.
        let full = guarded_road_test(&Scenario::small(), known_good.clone(), Box::new(model.clone()), cfg());
        let canary_at = full
            .events
            .iter()
            .find(|e| e.kind == RolloutEventKind::EnteredCanary)
            .map(|e| e.at)
            .unwrap_or_else(|| panic!("no canary entry; timeline:\n{}", full.timeline()));
        let left_at = full
            .events
            .iter()
            .find(|e| e.kind == RolloutEventKind::EnteredFull)
            .map(|e| e.at)
            .unwrap_or_else(|| panic!("no full entry; timeline:\n{}", full.timeline()));
        assert!(left_at > canary_at, "canary must span a nonzero interval");
        // Capped run: stop the sim strictly inside the canary interval.
        let deadline = SimTime(canary_at.as_nanos() + (left_at.as_nanos() - canary_at.as_nanos()) / 2);
        let capped = guarded_road_test(
            &Scenario::small(),
            known_good,
            Box::new(model),
            GuardedRunConfig { deadline: Some(deadline), ..cfg() },
        );
        assert_eq!(
            capped.final_stage,
            RolloutStage::Canary,
            "deadline mid-canary must freeze the guard in canary; timeline:\n{}",
            capped.timeline()
        );
        assert!(
            !capped.events.iter().any(|e| matches!(
                e.kind,
                RolloutEventKind::EnteredFull | RolloutEventKind::Committed
            )),
            "nothing past canary may have happened"
        );
        assert_eq!(capped.registry_len, 1, "no commit under the deadline");
        assert!(
            capped.events.iter().all(|e| e.at <= deadline),
            "no guard decision may be stamped past the deadline"
        );
        // The frozen bundle still renders a coherent rollout section.
        let robs = capped.obs.rollout.as_ref().expect("rollout obs");
        assert_eq!(robs.stage(), 2, "stage gauge frozen at canary");
        assert!(capped.obs.prom().contains("rollout_stage 2"));
    }

    #[test]
    fn guarded_run_is_deterministic() {
        let (known_good, model) = trained();
        let run = || {
            let outcome = guarded_road_test(
                &Scenario::small(),
                known_good.clone(),
                Box::new(model.clone()),
                GuardedRunConfig {
                    road: RoadTestConfig {
                        install: InstallPolicy {
                            failure_probability: 0.5,
                            breaker: Some(CircuitBreakerPolicy::default()),
                            ..InstallPolicy::default()
                        },
                        ..RoadTestConfig::default()
                    },
                    submissions: vec![(SimTime::from_secs(1), drop_everything())],
                    ..GuardedRunConfig::default()
                },
            );
            (outcome.timeline(), outcome.obs.prom(), outcome.obs.trace_json())
        };
        assert_eq!(run(), run(), "guarded run must be bit-identical across runs");
    }
}
