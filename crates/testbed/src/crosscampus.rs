//! Cross-campus reproducibility (paper §5): open-source the *algorithm*,
//! train it on each campus's own (never-shared) data store, and compare
//! the resulting models across production networks.

use crate::observe::RunObs;
use crate::scenario::{collect, AttackScenario, Scenario};
use campuslab_control::{run_development_loop, DevLoopConfig};
use campuslab_ml::{Classifier, ConfusionMatrix};
use campuslab_netsim::par::parallel_map;
use campuslab_netsim::CampusConfig;
use campuslab_traffic::{AppClass, WorkloadConfig};
use serde::Serialize;

/// One participating campus: a name plus its private environment.
pub struct CampusSite {
    pub name: String,
    pub scenario: Scenario,
}

impl CampusSite {
    /// Three differently-shaped campuses for the reproducibility study:
    /// they differ in size, application mix and attack intensity, the way
    /// real universities do.
    pub fn default_trio() -> Vec<CampusSite> {
        let base_workload = WorkloadConfig {
            duration: campuslab_netsim::SimDuration::from_secs(8),
            sessions_per_sec: 10.0,
            ..WorkloadConfig::default()
        };
        let attack = AttackScenario::DnsAmplification {
            victim_index: 0,
            qps: 500.0,
            start_frac: 0.2,
            duration_frac: 0.7,
        };
        let mk = |name: &str, index: u8, mix: Vec<(AppClass, f64)>, seed: u64, qps: f64| CampusSite {
            name: name.to_string(),
            scenario: Scenario {
                campus: CampusConfig {
                    name: name.to_string(),
                    index,
                    dist_count: 2,
                    access_per_dist: 2,
                    hosts_per_access: 4,
                    external_hosts: 12,
                    seed,
                    ..CampusConfig::default()
                },
                workload: WorkloadConfig { mix, seed, ..base_workload.clone() },
                attack: match attack.clone() {
                    AttackScenario::DnsAmplification { victim_index, start_frac, duration_frac, .. } => {
                        AttackScenario::DnsAmplification { victim_index, qps, start_frac, duration_frac }
                    }
                    other => other,
                },
                monitor: Default::default(),
            },
        };
        vec![
            // Hillside: web-heavy liberal-arts campus.
            mk(
                "hillside",
                1,
                vec![
                    (AppClass::Dns, 0.3),
                    (AppClass::Web, 0.45),
                    (AppClass::Video, 0.1),
                    (AppClass::Mail, 0.1),
                    (AppClass::Ntp, 0.05),
                ],
                11,
                500.0,
            ),
            // Bayview: research campus with bulk transfers and SSH.
            mk(
                "bayview",
                2,
                vec![
                    (AppClass::Dns, 0.2),
                    (AppClass::Web, 0.2),
                    (AppClass::Ssh, 0.25),
                    (AppClass::Backup, 0.15),
                    (AppClass::Mail, 0.1),
                    (AppClass::Ntp, 0.1),
                ],
                22,
                900.0,
            ),
            // Northtech: streaming-heavy residential campus.
            mk(
                "northtech",
                3,
                vec![
                    (AppClass::Dns, 0.25),
                    (AppClass::Web, 0.25),
                    (AppClass::Video, 0.3),
                    (AppClass::Ssh, 0.05),
                    (AppClass::Ntp, 0.15),
                ],
                33,
                300.0,
            ),
        ]
    }
}

/// The reproducibility matrix: F1 of a model trained at row-campus,
/// evaluated at column-campus.
#[derive(Debug, Clone, Serialize)]
pub struct CrossCampusResult {
    pub names: Vec<String>,
    /// `f1[train][eval]` for the attack class.
    pub f1: Vec<Vec<f64>>,
    /// Rows collected per campus.
    pub records: Vec<usize>,
}

impl CrossCampusResult {
    /// Mean of the diagonal (in-campus) cells.
    pub fn mean_in_campus(&self) -> f64 {
        let n = self.names.len();
        (0..n).map(|i| self.f1[i][i]).sum::<f64>() / n as f64
    }

    /// Mean of the off-diagonal (cross-campus) cells.
    pub fn mean_cross_campus(&self) -> f64 {
        let n = self.names.len();
        let mut sum = 0.0;
        let mut count = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += self.f1[i][j];
                    count += 1;
                }
            }
        }
        sum / count.max(1) as f64
    }
}

/// Run the full protocol: collect per-campus data, run the (shared,
/// "open-sourced") development loop at each campus, evaluate every
/// deployable model on every campus's held-out data.
pub fn cross_campus(sites: &[CampusSite], dev: &DevLoopConfig) -> CrossCampusResult {
    cross_campus_observed(sites, dev).0
}

/// [`cross_campus`], also returning each site's collection-run Observatory
/// bundle (in site order). Telemetry is deliberately outside
/// [`CrossCampusResult`]: the matrix is the shareable artifact, the
/// per-campus dumps stay local like the data they describe.
pub fn cross_campus_observed(
    sites: &[CampusSite],
    dev: &DevLoopConfig,
) -> (CrossCampusResult, Vec<RunObs>) {
    assert!(sites.len() >= 2, "need at least two campuses");
    // Each campus is a self-seeded simulation, so collection fans out
    // across cores; parallel_map keeps site order, so results are
    // byte-identical to a sequential sweep.
    let (collected, obs): (Vec<_>, Vec<_>) = parallel_map(sites, |_, s| {
        let data = collect(&s.scenario);
        (data.packets, data.obs)
    })
    .into_iter()
    .unzip();
    // Each campus runs the shared algorithm privately. The protocol uses a
    // shuffled split so every campus's held-out set contains both classes
    // regardless of where the attack fell in its trace.
    let dev = DevLoopConfig { shuffle_split: true, ..dev.clone() };
    let results: Vec<_> = parallel_map(&collected, |_, records| run_development_loop(records, &dev));
    let mut f1 = vec![vec![0.0; sites.len()]; sites.len()];
    for (i, trained) in results.iter().enumerate() {
        let student: &dyn Classifier = &trained.student;
        for (j, other) in results.iter().enumerate() {
            let cm = ConfusionMatrix::evaluate(student, &other.test);
            f1[i][j] = cm.f1(1);
        }
    }
    let result = CrossCampusResult {
        names: sites.iter().map(|s| s.name.clone()).collect(),
        f1,
        records: collected.iter().map(Vec::len).collect(),
    };
    (result, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trio_has_distinct_environments() {
        let trio = CampusSite::default_trio();
        assert_eq!(trio.len(), 3);
        let prefixes: std::collections::HashSet<_> = trio
            .iter()
            .map(|s| s.scenario.campus.campus_prefix().to_string())
            .collect();
        assert_eq!(prefixes.len(), 3);
    }

    #[test]
    fn matrix_diagonal_beats_chance_and_models_transfer() {
        let trio = CampusSite::default_trio();
        let result = cross_campus(&trio, &DevLoopConfig::default());
        assert_eq!(result.f1.len(), 3);
        for i in 0..3 {
            assert!(
                result.f1[i][i] > 0.7,
                "in-campus F1 too low at {}: {}",
                result.names[i],
                result.f1[i][i]
            );
        }
        // The DNS-amplification signature is structural, so transfer should
        // work reasonably — but in-campus should not lose to cross-campus.
        let in_c = result.mean_in_campus();
        let cross = result.mean_cross_campus();
        assert!(cross > 0.4, "models failed to transfer at all: {cross}");
        assert!(in_c >= cross - 0.1, "in-campus {in_c} vs cross {cross}");
    }
}
