//! Scenario definition and data collection: one simulated "day in the
//! life" of a campus, captured at the border and landed in the data store
//! (the Figure-1 data-source path).

use crate::observe::RunObs;
use campuslab_capture::{BorderTapHooks, DnsMetaRecord, FlowRecord, MonitorConfig, MonitorStats, PacketRecord, RingStats, TcpRttRecord};
use campuslab_datastore::DataStore;
use campuslab_netsim::{Campus, CampusConfig, NetStats, SimDuration, SimTime};
use campuslab_traffic::{AppClass, Schedule, TrafficGenerator, WorkloadConfig};
use std::net::Ipv4Addr;

/// The attack content of a scenario.
#[derive(Debug, Clone)]
pub enum AttackScenario {
    /// Benign traffic only.
    None,
    /// The paper's running example, aimed at `campus.hosts[victim_index]`.
    DnsAmplification { victim_index: usize, qps: f64, start_frac: f64, duration_frac: f64 },
    /// A SYN flood at the campus web server.
    SynFlood { pps: f64, start_frac: f64, duration_frac: f64 },
    /// One campaign of every kind (the multi-class climate).
    Mixed,
    /// Random-subdomain NXDOMAIN "water torture" flood at the campus
    /// recursive resolver, with an ANY/TXT amplification burst riding the
    /// same window. Benign resolver clients query for the whole scenario
    /// so cache-hit collapse and recovery are measurable. Pair with a
    /// workload mix that excludes [`AppClass::Dns`] (see
    /// [`Scenario::resolver_lab`]): the scripted query/response DNS app
    /// would double-answer queries the live resolver actor also serves.
    ResolverWaterTorture {
        /// Benign client query rate at the resolver, whole-run.
        client_qps: f64,
        /// Distinct external flood sources (each rate-limited separately).
        n_sources: usize,
        qps_per_source: f64,
        /// ANY/TXT amplification-burst rate (0 disables the burst).
        amp_qps: f64,
        start_frac: f64,
        duration_frac: f64,
    },
    /// A reflection campaign that rotates its service port and reflector
    /// pool between phases — the signature-evasion drift experiment E17
    /// pivots on. Each phase is `(service_port, start_frac,
    /// duration_frac)`; a filter trained on one phase's port/prefix
    /// signature goes stale the moment the next phase starts.
    RotatingReflection { victim_index: usize, qps: f64, phases: Vec<(u16, f64, f64)> },
    /// A benign new-application rollout: extra sessions of one class ramp
    /// in mid-run and shift the traffic mix with no attack labels at all
    /// — drift the pilot must absorb without a false mitigation.
    AppRollout { class: AppClass, sessions_per_sec: f64, start_frac: f64, duration_frac: f64 },
}

/// A complete scenario description.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub campus: CampusConfig,
    pub workload: WorkloadConfig,
    pub attack: AttackScenario,
    pub monitor: MonitorConfig,
}

impl Scenario {
    /// The default small scenario used across tests and examples: a
    /// compact campus, a few seconds of mixed traffic, amplification
    /// attack at host 0.
    pub fn small() -> Self {
        Scenario {
            campus: CampusConfig {
                dist_count: 2,
                access_per_dist: 2,
                hosts_per_access: 4,
                external_hosts: 12,
                ..CampusConfig::default()
            },
            workload: WorkloadConfig {
                duration: SimDuration::from_secs(8),
                sessions_per_sec: 12.0,
                ..WorkloadConfig::default()
            },
            attack: AttackScenario::DnsAmplification {
                victim_index: 0,
                qps: 600.0,
                start_frac: 0.15,
                duration_frac: 0.8,
            },
            monitor: MonitorConfig::default(),
        }
    }

    /// The ResolverLab scenario (experiment E16): a compact campus whose
    /// recursive resolver serves live benign clients, then takes a
    /// water-torture flood from two dozen external sources plus an
    /// amplification burst. The scripted DNS app is removed from the mix
    /// because the resolver actor answers port-53 traffic itself.
    ///
    /// Sizing: 24 sources x 60 qps is ~480 qps after per-client rate
    /// limiting (20 qps each), above the upstream capacity of the default
    /// [`campuslab_resolver::ResolverConfig`] (8 concurrent lookups at a
    /// 20 ms RTT = 400 qps), so the flood starves the upstream path and
    /// benign misses degrade to stale answers or ServFail give-ups.
    pub fn resolver_lab() -> Self {
        let mut workload = WorkloadConfig {
            duration: SimDuration::from_secs(12),
            sessions_per_sec: 6.0,
            ..WorkloadConfig::default()
        };
        workload.mix.retain(|(class, _)| *class != AppClass::Dns);
        Scenario {
            campus: CampusConfig {
                dist_count: 2,
                access_per_dist: 2,
                hosts_per_access: 4,
                external_hosts: 32,
                ..CampusConfig::default()
            },
            workload,
            attack: AttackScenario::ResolverWaterTorture {
                client_qps: 40.0,
                n_sources: 24,
                qps_per_source: 60.0,
                amp_qps: 120.0,
                start_frac: 0.25,
                duration_frac: 0.5,
            },
            monitor: MonitorConfig::default(),
        }
    }

    /// The rotating-reflection drift scenario (experiment E17): phase one
    /// reflects off port-53 servers early in the run — squarely inside
    /// the signature any amplification-trained filter knows — then the
    /// attacker rotates to port-123 reflectors from a different pool for
    /// the back half. The stale filter passes phase two untouched; only
    /// a pilot that retrains on fresh windows closes the gap. The victim
    /// is `hosts[0]`, inside the default 25% canary cohort, so canary
    /// SLOs see the drift directly.
    pub fn drift_rotation() -> Self {
        Scenario {
            campus: CampusConfig {
                dist_count: 2,
                access_per_dist: 2,
                hosts_per_access: 4,
                external_hosts: 12,
                ..CampusConfig::default()
            },
            workload: WorkloadConfig {
                duration: SimDuration::from_secs(14),
                sessions_per_sec: 12.0,
                ..WorkloadConfig::default()
            },
            attack: AttackScenario::RotatingReflection {
                victim_index: 0,
                qps: 400.0,
                phases: vec![(53, 0.05, 0.25), (123, 0.45, 0.45)],
            },
            monitor: MonitorConfig::default(),
        }
    }

    /// The smallest useful road test: a two-switch campus, three seconds
    /// of light mixed traffic, and a modest amplification campaign at
    /// host 0. This is the per-tenant workload of the plaza sweeps
    /// (experiment E18) and the tenant-isolation property suite, where
    /// dozens of tenant slices run per case — each slice must stay cheap
    /// while still exercising detection, mitigation and suppression.
    pub fn tenant_probe() -> Self {
        Scenario {
            campus: CampusConfig {
                dist_count: 1,
                access_per_dist: 2,
                hosts_per_access: 2,
                external_hosts: 6,
                ..CampusConfig::default()
            },
            workload: WorkloadConfig {
                duration: SimDuration::from_secs(3),
                sessions_per_sec: 6.0,
                ..WorkloadConfig::default()
            },
            attack: AttackScenario::DnsAmplification {
                victim_index: 0,
                qps: 150.0,
                start_frac: 0.2,
                duration_frac: 0.6,
            },
            monitor: MonitorConfig::default(),
        }
    }

    /// Benign diurnal drift: the whole day/night load curve compressed
    /// into one short run (`day_length == duration`), no attack at all.
    /// The pilot's drift score must ride out the load swing without
    /// opening a false episode that mitigates thin air.
    pub fn drift_diurnal() -> Self {
        Scenario {
            campus: CampusConfig {
                dist_count: 2,
                access_per_dist: 2,
                hosts_per_access: 4,
                external_hosts: 12,
                ..CampusConfig::default()
            },
            workload: WorkloadConfig {
                duration: SimDuration::from_secs(10),
                sessions_per_sec: 14.0,
                diurnal: true,
                day_length: SimDuration::from_secs(10),
                ..WorkloadConfig::default()
            },
            attack: AttackScenario::None,
            monitor: MonitorConfig::default(),
        }
    }

    /// Benign new-app rollout drift: a video-class application launches
    /// campus-wide mid-run, shifting the traffic mix with zero attack
    /// labels. Retraining on these windows must stay safe (single-class
    /// data) and never produce a candidate that drops the new app.
    pub fn drift_app_rollout() -> Self {
        Scenario {
            campus: CampusConfig {
                dist_count: 2,
                access_per_dist: 2,
                hosts_per_access: 4,
                external_hosts: 12,
                ..CampusConfig::default()
            },
            workload: WorkloadConfig {
                duration: SimDuration::from_secs(10),
                sessions_per_sec: 10.0,
                ..WorkloadConfig::default()
            },
            attack: AttackScenario::AppRollout {
                class: AppClass::Video,
                sessions_per_sec: 8.0,
                start_frac: 0.5,
                duration_frac: 0.45,
            },
            monitor: MonitorConfig::default(),
        }
    }
}

/// Everything a collection run produces.
pub struct CollectedData {
    pub packets: Vec<PacketRecord>,
    pub flows: Vec<FlowRecord>,
    pub dns: Vec<DnsMetaRecord>,
    /// TCP handshake RTTs measured at the tap.
    pub rtts: Vec<TcpRttRecord>,
    pub net: NetStats,
    pub ring: RingStats,
    pub monitor: MonitorStats,
    /// Packets scheduled (injected into the network).
    pub scheduled: usize,
    /// The amplification victim's address, when the scenario has one.
    pub victim: Option<Ipv4Addr>,
    /// When the (first) attack campaign started.
    pub attack_start: Option<SimTime>,
    /// Observatory bundle: simulator + border-monitor metric sinks and the
    /// run trace, moved out after the run.
    pub obs: RunObs,
}

/// Build the schedule for a scenario on a freshly built campus.
pub fn build_schedule(campus: &Campus, scenario: &Scenario) -> (Schedule, Option<Ipv4Addr>, Option<SimTime>) {
    let mut gen = TrafficGenerator::new(campus, scenario.workload.clone());
    let mut schedule = gen.generate();
    let span = scenario.workload.duration.as_secs_f64();
    let at = |frac: f64| SimTime::ZERO + SimDuration::from_secs_f64(span * frac);
    let mut victim = None;
    let mut attack_start = None;
    match &scenario.attack {
        AttackScenario::None => {}
        AttackScenario::DnsAmplification { victim_index, qps, start_frac, duration_frac } => {
            let v = campus.hosts[*victim_index];
            victim = Some(campus.addr_of(v));
            attack_start = Some(at(*start_frac));
            gen.add_dns_amplification(
                &mut schedule,
                v,
                *qps,
                at(*start_frac),
                SimDuration::from_secs_f64(span * duration_frac),
            );
        }
        AttackScenario::SynFlood { pps, start_frac, duration_frac } => {
            victim = Some(campus.addr_of(campus.servers.web));
            attack_start = Some(at(*start_frac));
            gen.add_syn_flood(
                &mut schedule,
                campus.servers.web,
                443,
                *pps,
                at(*start_frac),
                SimDuration::from_secs_f64(span * duration_frac),
            );
        }
        AttackScenario::Mixed => {
            victim = Some(campus.addr_of(campus.hosts[0]));
            attack_start = Some(at(0.1));
            gen.add_mixed_attacks(&mut schedule);
        }
        AttackScenario::ResolverWaterTorture {
            client_qps,
            n_sources,
            qps_per_source,
            amp_qps,
            start_frac,
            duration_frac,
        } => {
            victim = Some(campus.addr_of(campus.servers.dns));
            attack_start = Some(at(*start_frac));
            let dur = SimDuration::from_secs_f64(span * duration_frac);
            gen.add_resolver_clients(
                &mut schedule,
                *client_qps,
                SimTime::ZERO,
                scenario.workload.duration,
            );
            gen.add_nxdomain_flood(&mut schedule, *n_sources, *qps_per_source, at(*start_frac), dur);
            if *amp_qps > 0.0 {
                // The burst spoofs a campus host as its reflection victim.
                gen.add_resolver_amp_burst(&mut schedule, campus.hosts[0], *amp_qps, at(*start_frac), dur);
            }
        }
        AttackScenario::RotatingReflection { victim_index, qps, phases } => {
            let v = campus.hosts[*victim_index];
            victim = Some(campus.addr_of(v));
            if let Some(&(_, f, _)) = phases.first() {
                attack_start = Some(at(f));
            }
            let plan: Vec<(u16, SimTime, SimDuration)> = phases
                .iter()
                .map(|&(port, f, d)| (port, at(f), SimDuration::from_secs_f64(span * d)))
                .collect();
            gen.add_rotating_reflection(&mut schedule, v, *qps, &plan);
        }
        AttackScenario::AppRollout { class, sessions_per_sec, start_frac, duration_frac } => {
            gen.add_app_rollout(
                &mut schedule,
                *class,
                *sessions_per_sec,
                at(*start_frac),
                SimDuration::from_secs_f64(span * duration_frac),
            );
        }
    }
    (schedule, victim, attack_start)
}

/// Run a scenario with the border monitor attached and collect every
/// record the monitoring plane produced.
pub fn collect(scenario: &Scenario) -> CollectedData {
    let campus = Campus::build(scenario.campus.clone());
    let (mut schedule, victim, attack_start) = build_schedule(&campus, scenario);
    let scheduled = schedule.len();
    let mut net = campus.net;
    schedule.apply_to(&mut net);
    let mut hooks = BorderTapHooks::new(campus.border_link, scenario.monitor.clone());
    net.run(&mut hooks, None);
    hooks.monitor.finish();
    let ring = hooks.monitor.ring_stats();
    let monitor = hooks.monitor.stats;
    let packets = hooks.monitor.take_packet_records();
    let flows = hooks.monitor.take_flow_records();
    let dns = hooks.monitor.take_dns_records();
    let rtts = hooks.monitor.take_rtt_records();
    let end_ns = net.now().as_nanos();
    let mut obs = RunObs::net_only(net.obs);
    obs.capture = Some(hooks.monitor.obs);
    obs.tracer.record("collect[border-tap]".to_string(), 0, end_ns);
    CollectedData {
        packets,
        flows,
        dns,
        rtts,
        net: net.stats,
        ring,
        monitor,
        scheduled,
        victim,
        attack_start,
        obs,
    }
}

/// Land collected data in a fresh data store (the Figure-1 ingest path).
/// Packets go through the sharded batch-ingest path — one batch per
/// capture second — which builds segments on parallel workers yet yields
/// a byte-identical store at any worker count.
pub fn build_store(data: &CollectedData) -> DataStore {
    let mut ds = DataStore::new();
    ds.ingest_packet_batches(shard_by_second(&data.packets));
    ds.ingest_flows(data.flows.clone());
    ds.ingest_dns(data.dns.clone());
    ds
}

/// Split a capture into per-second batches (capture order preserved
/// within each batch), the unit the parallel ingest path shards over.
fn shard_by_second(packets: &[PacketRecord]) -> Vec<Vec<PacketRecord>> {
    let mut batches: Vec<Vec<PacketRecord>> = Vec::new();
    for p in packets {
        let sec = (p.ts_ns / 1_000_000_000) as usize;
        if batches.len() <= sec {
            batches.resize_with(sec + 1, Vec::new);
        }
        batches[sec].push(p.clone());
    }
    batches.retain(|b| !b.is_empty());
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_collects_labeled_data() {
        let data = collect(&Scenario::small());
        assert!(data.packets.len() > 500, "packets {}", data.packets.len());
        assert!(!data.flows.is_empty());
        assert!(!data.dns.is_empty());
        // Attack ground truth present in the capture.
        let malicious = data.packets.iter().filter(|p| p.is_malicious()).count();
        assert!(malicious > 100, "malicious {malicious}");
        assert!(data.victim.is_some());
        // Campus-scale traffic captures losslessly (the paper's premise).
        assert_eq!(data.ring.dropped, 0);
        // Everything scheduled entered the network.
        assert_eq!(data.net.injected as usize, data.scheduled);
    }

    #[test]
    fn store_round_trip_preserves_counts() {
        let data = collect(&Scenario::small());
        let ds = build_store(&data);
        assert_eq!(ds.packet_count(), data.packets.len());
        assert_eq!(ds.flow_count(), data.flows.len());
        assert_eq!(ds.dns_count(), data.dns.len());
        // The store's own Observatory saw the ingest.
        assert_eq!(ds.obs.ingested_packets(), data.packets.len() as u64);
        assert_eq!(ds.obs.packet_segments(), ds.packet_segment_count() as i64);
        // The victim's inbound flood is findable by index.
        let victim = std::net::IpAddr::V4(data.victim.unwrap());
        let hits = ds.query_packets(&campuslab_datastore::PacketQuery::for_host(victim));
        assert!(!hits.is_empty());
    }

    #[test]
    fn build_store_is_worker_count_invariant() {
        let data = collect(&Scenario::small());
        let batches = shard_by_second(&data.packets);
        let mut seq = DataStore::new();
        seq.ingest_packet_batches_with(batches.clone(), 1);
        let mut par = DataStore::new();
        par.ingest_packet_batches_with(batches, 4);
        assert_eq!(seq.storage(), par.storage());
        assert_eq!(seq.packet_segment_stats(), par.packet_segment_stats());
        assert!(seq.iter_packets().eq(par.iter_packets()));
    }

    #[test]
    fn benign_scenario_has_no_attack_labels() {
        let mut s = Scenario::small();
        s.attack = AttackScenario::None;
        s.workload.duration = SimDuration::from_secs(3);
        let data = collect(&s);
        assert!(data.packets.iter().all(|p| !p.is_malicious()));
        assert!(data.victim.is_none());
    }

    #[test]
    fn collection_obs_conserves_and_mirrors_stats() {
        let data = collect(&Scenario::small());
        let cap = data.obs.capture.as_ref().expect("capture obs");
        assert!(cap.conserved(), "capture conservation law violated");
        assert_eq!(cap.observed(), data.monitor.observed);
        assert_eq!(cap.captured(), data.monitor.captured);
        assert_eq!(data.obs.net.injected(), data.net.injected);
        assert_eq!(data.obs.net.delivered(), data.net.delivered);
        // The run trace is a single border-tap span covering the run.
        let spans = data.obs.tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "collect[border-tap]");
        assert!(spans[0].end_ns > 0);
        // And the dump renders both layers.
        let prom = data.obs.prom();
        assert!(prom.contains("sim_delivered_packets_total"));
        assert!(prom.contains("cap_captured_packets_total"));
    }

    #[test]
    fn resolver_lab_schedule_mixes_clients_flood_and_burst() {
        let scenario = Scenario::resolver_lab();
        let campus = Campus::build(scenario.campus.clone());
        let (schedule, victim, attack_start) = build_schedule(&campus, &scenario);
        // The resolver itself is the victim on record.
        assert_eq!(victim, Some(campus.addr_of(campus.servers.dns)));
        assert!(attack_start.is_some());
        let truths: Vec<_> = schedule.iter().map(|i| i.packet.truth).collect();
        let flood = truths
            .iter()
            .filter(|t| t.attack == Some(campuslab_traffic::AttackKind::NxdomainFlood.id()))
            .count();
        let amp = truths
            .iter()
            .filter(|t| t.attack == Some(campuslab_traffic::AttackKind::DnsAmplification.id()))
            .count();
        let benign_dns = truths
            .iter()
            .filter(|t| t.attack.is_none() && t.app_class == AppClass::Dns.id())
            .count();
        assert!(flood > 5_000, "flood {flood}");
        assert!(amp > 500, "amp {amp}");
        assert!(benign_dns > 400, "benign dns {benign_dns}");
        // The scripted DNS app is out of the mix: every benign port-53
        // packet is a live client query for the resolver actor to answer.
        assert!(scenario.workload.mix.iter().all(|(c, _)| *c != AppClass::Dns));
    }

    #[test]
    fn drift_rotation_schedule_hops_signatures_mid_run() {
        let scenario = Scenario::drift_rotation();
        let campus = Campus::build(scenario.campus.clone());
        let (schedule, victim, attack_start) = build_schedule(&campus, &scenario);
        assert_eq!(victim, Some(campus.addr_of(campus.hosts[0])));
        assert!(attack_start.is_some());
        // Reflected answers (the big packets the victim eats) come from
        // port 53 in phase one and port 123 in phase two — two disjoint
        // signatures separated in time.
        let answers: Vec<_> = schedule
            .iter()
            .filter_map(|i| {
                let port = i.packet.transport.src_port()?;
                (i.packet.truth.attack.is_some() && (port == 53 || port == 123))
                    .then_some((i.at, port))
            })
            .collect();
        assert!(!answers.is_empty());
        let last_53 = answers.iter().filter(|(_, p)| *p == 53).map(|(t, _)| *t).max().unwrap();
        let first_123 = answers.iter().filter(|(_, p)| *p == 123).map(|(t, _)| *t).min().unwrap();
        assert!(last_53 < first_123, "phases overlap: {last_53} vs {first_123}");
    }

    #[test]
    fn app_rollout_adds_benign_sessions_only() {
        let scenario = Scenario::drift_app_rollout();
        let campus = Campus::build(scenario.campus.clone());
        let (schedule, victim, attack_start) = build_schedule(&campus, &scenario);
        assert!(victim.is_none());
        assert!(attack_start.is_none());
        assert!(schedule.iter().all(|i| i.packet.truth.attack.is_none()));
        // The rollout visibly shifts the mix toward the new class in the
        // back half of the run.
        let span = scenario.workload.duration.as_nanos();
        let video = |lo: u64, hi: u64| {
            schedule
                .iter()
                .filter(|i| {
                    i.packet.truth.app_class == AppClass::Video.id()
                        && i.at.as_nanos() >= lo
                        && i.at.as_nanos() < hi
                })
                .count()
        };
        let early = video(0, span / 2);
        let late = video(span / 2, span);
        assert!(late > 2 * early.max(1), "rollout invisible: early={early} late={late}");
    }

    #[test]
    fn collection_is_deterministic() {
        let run = || {
            let data = collect(&Scenario::small());
            (data.packets.len(), data.flows.len(), data.net.delivered)
        };
        assert_eq!(run(), run());
    }
}
