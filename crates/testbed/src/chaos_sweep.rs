//! Robustness-under-chaos sweeps (experiment E14): scale one fault
//! intensity knob from 0 (calm) to 1 (mayhem), derive a seed-driven chaos
//! campaign for each point, road-test the deployed defense under it, and
//! report the degradation curve an operator actually cares about —
//! detection recall, mitigation latency, delivery ratio, and how hard the
//! control channel had to work (install attempts, give-ups).
//!
//! Every point is a self-contained deterministic run (own campus, own
//! seeds), so the sweep parallelizes under
//! [`campuslab_netsim::par::parallel_map`] with byte-identical results.

use crate::roadtest::{road_test, RoadTestConfig, RoadTestOutcome};
use crate::scenario::Scenario;
use campuslab_control::{InstallPolicy, Placement};
use campuslab_dataplane::PipelineProgram;
use campuslab_ml::Classifier;
use campuslab_netsim::par::parallel_map_with;
use campuslab_netsim::{
    Campus, ChaosConfig, DropReason, GilbertElliott, LinkId, NodeId, Outage, SimDuration, SimTime,
};
use serde::Serialize;

/// A chaos sweep: which intensities to visit and how to seed the
/// campaigns derived from them.
#[derive(Debug, Clone)]
pub struct ChaosSweepConfig {
    /// Fault intensities in `[0, 1]`, each one road-tested independently.
    pub intensities: Vec<f64>,
    /// Base seed; each point derives its campaign from `seed ^ point`.
    pub seed: u64,
    pub placement: Placement,
    /// Worker threads for the sweep (capped at the point count).
    pub workers: usize,
}

impl Default for ChaosSweepConfig {
    fn default() -> Self {
        ChaosSweepConfig {
            intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            seed: 0xE14C4A05,
            placement: Placement::Controller,
            workers: 4,
        }
    }
}

/// One point on the degradation curve.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosPoint {
    pub intensity: f64,
    /// Attack suppression (detection recall at the filter).
    pub suppression: f64,
    /// Injected → delivered, end to end.
    pub delivery_ratio: f64,
    /// Attack start → first rule active, when mitigation landed at all.
    pub time_to_mitigation_ms: Option<f64>,
    /// Total install attempts spent, from the Observatory registry — lands,
    /// give-ups and attempts still in flight when the run ended.
    pub install_attempts: u32,
    /// Detections abandoned after the retry budget/timeout ran out.
    pub giveups: usize,
    pub mitigated: bool,
    /// Packets lost to link faults (outages, bursty loss).
    pub dropped_fault: u64,
    /// Packets swallowed by crashed nodes.
    pub dropped_node_down: u64,
}

/// Map one intensity in `[0, 1]` onto a full [`RoadTestConfig`]: a chaos
/// campaign over the scenario's internal links and hosts, a tap blackout
/// covering part of the attack's opening, and an increasingly flaky
/// install channel. Intensity 0 is exactly the fault-free configuration.
pub fn chaos_road_test_config(
    scenario: &Scenario,
    intensity: f64,
    seed: u64,
    placement: Placement,
) -> RoadTestConfig {
    let t = intensity.clamp(0.0, 1.0);
    let mut cfg = RoadTestConfig { placement, ..RoadTestConfig::default() };
    if t <= 0.0 {
        return cfg;
    }
    // Campus::build is deterministic, so this throwaway build sees the
    // same link/node ids as the one inside road_test.
    let campus = Campus::build(scenario.campus.clone());
    let duration = scenario.workload.duration;
    // Chaos targets the campus interior: every link except the tapped
    // border uplink, and every end host except the attack victim — the
    // border stays up so the experiment measures how the *defense*
    // degrades, not whether traffic existed at all.
    let links: Vec<LinkId> = (0..campus.net.link_count())
        .map(LinkId)
        .filter(|l| *l != campus.border_link)
        .collect();
    let victim = match &scenario.attack {
        crate::scenario::AttackScenario::DnsAmplification { victim_index, .. } => {
            Some(campus.hosts[*victim_index])
        }
        _ => None,
    };
    let nodes: Vec<NodeId> = campus
        .hosts
        .iter()
        .copied()
        .filter(|n| Some(*n) != victim)
        .collect();
    let chaos_cfg = ChaosConfig {
        seed,
        duration,
        link_flaps: (t * 6.0).round() as usize,
        flap_len: SimDuration::from_millis(400),
        node_crashes: (t * 3.0).round() as usize,
        crash_len: SimDuration::from_millis(600),
        brownouts: (t * 4.0).round() as usize,
        brownout_len: SimDuration::from_millis(700),
        brownout_factor: 0.25,
        burst: Some(GilbertElliott::new(0.02 * t, 0.3, 0.0, 0.5 * t)),
    };
    cfg.chaos = Some(chaos_cfg.generate(&links, &nodes));
    // The tap goes dark over the attack's opening act: detection must
    // work from the partially-observed windows that remain.
    let span = duration.as_secs_f64();
    let blackout_start = SimTime::ZERO + SimDuration::from_secs_f64(span * 0.2);
    let blackout_len = SimDuration::from_secs_f64(span * 0.25 * t);
    cfg.tap_blackouts = vec![Outage { from: blackout_start, until: blackout_start + blackout_len }];
    cfg.install = InstallPolicy {
        failure_probability: 0.7 * t,
        max_attempts: 4,
        base_backoff: SimDuration::from_millis(20),
        max_backoff: SimDuration::from_millis(200),
        timeout: SimDuration::from_secs(2),
        seed: seed ^ 0x1257A11,
        ..InstallPolicy::default()
    };
    cfg
}

/// Derive one curve point from a finished road test — reading every stat
/// the Observatory also exports from the *registry itself* (not from the
/// legacy stat structs), so the degradation curve and the metrics dump are
/// one source and cannot disagree.
fn point_from(intensity: f64, outcome: &RoadTestOutcome) -> ChaosPoint {
    let net = &outcome.obs.net;
    let ctl = outcome.obs.controller.as_ref();
    let injected = net.injected();
    ChaosPoint {
        intensity,
        suppression: outcome.suppression(),
        delivery_ratio: if injected == 0 {
            1.0
        } else {
            net.delivered() as f64 / injected as f64
        },
        time_to_mitigation_ms: outcome
            .time_to_mitigation
            .map(|d| d.as_nanos() as f64 / 1e6),
        install_attempts: ctl.map_or(0, |c| c.attempts()) as u32,
        giveups: ctl.map_or(0, |c| c.giveups()) as usize,
        mitigated: ctl.is_some_and(|c| c.installs() > 0),
        dropped_fault: net.dropped(DropReason::Fault),
        dropped_node_down: net.dropped(DropReason::NodeDown),
    }
}

/// Run the sweep: one road test per intensity, fanned out over worker
/// threads, points returned in intensity order. `mk_model` builds a fresh
/// window model per point (each run consumes one).
pub fn chaos_sweep(
    scenario: &Scenario,
    program: &PipelineProgram,
    mk_model: impl Fn() -> Box<dyn Classifier + Send> + Sync,
    sweep: &ChaosSweepConfig,
) -> Vec<ChaosPoint> {
    chaos_sweep_observed(scenario, program, mk_model, sweep).0
}

/// [`chaos_sweep`], also returning each point's Observatory bundle (in
/// intensity order) so the degradation curve can ship with the full
/// metrics dump it was derived from.
pub fn chaos_sweep_observed(
    scenario: &Scenario,
    program: &PipelineProgram,
    mk_model: impl Fn() -> Box<dyn Classifier + Send> + Sync,
    sweep: &ChaosSweepConfig,
) -> (Vec<ChaosPoint>, Vec<crate::observe::RunObs>) {
    parallel_map_with(&sweep.intensities, sweep.workers, |i, &intensity| {
        let cfg = chaos_road_test_config(
            scenario,
            intensity,
            sweep.seed ^ i as u64,
            sweep.placement,
        );
        let outcome = road_test(scenario, program.clone(), Some(mk_model()), cfg);
        let point = point_from(intensity, &outcome);
        (point, outcome.obs)
    })
    .into_iter()
    .unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::collect;
    use campuslab_control::{run_development_loop, DevLoopConfig};
    use campuslab_features::{window_dataset, LabelMode, WindowConfig};
    use campuslab_ml::{DecisionTree, TreeConfig};

    fn trained() -> (PipelineProgram, DecisionTree) {
        let data = collect(&Scenario::small());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        (dev.program, DecisionTree::fit(&wd, TreeConfig::shallow(4)))
    }

    #[test]
    fn zero_intensity_is_the_fault_free_config() {
        let cfg = chaos_road_test_config(&Scenario::small(), 0.0, 7, Placement::Controller);
        assert!(cfg.chaos.is_none());
        assert!(cfg.tap_blackouts.is_empty());
        assert_eq!(cfg.install.failure_probability, 0.0);
    }

    #[test]
    fn campaigns_scale_with_intensity_and_spare_the_border() {
        let s = Scenario::small();
        let lo = chaos_road_test_config(&s, 0.3, 7, Placement::Controller);
        let hi = chaos_road_test_config(&s, 1.0, 7, Placement::Controller);
        let lo_plan = lo.chaos.unwrap();
        let hi_plan = hi.chaos.unwrap();
        assert!(hi_plan.events.len() > lo_plan.events.len());
        assert!(hi.install.failure_probability > lo.install.failure_probability);
        let campus = Campus::build(s.campus.clone());
        assert!(
            hi_plan.link_down_windows(campus.border_link).is_empty(),
            "chaos must not flap the tapped border link"
        );
        // Burst channels cover the interior, never the border.
        assert!(hi_plan.burst.iter().all(|(l, _)| *l != campus.border_link));
        assert_eq!(hi_plan.burst.len(), campus.net.link_count() - 1);
    }

    /// The acceptance-criteria sanity check: more chaos never *improves*
    /// the defense. Recall under zero chaos bounds recall under max chaos,
    /// and chaos actually bites (fault drops appear).
    #[test]
    fn degradation_is_monotone_from_calm_to_mayhem() {
        let (program, model) = trained();
        let sweep = ChaosSweepConfig {
            intensities: vec![0.0, 1.0],
            ..ChaosSweepConfig::default()
        };
        let points = chaos_sweep(
            &Scenario::small(),
            &program,
            || Box::new(model.clone()),
            &sweep,
        );
        assert_eq!(points.len(), 2);
        let calm = &points[0];
        let mayhem = &points[1];
        assert!(calm.mitigated, "calm run must mitigate");
        assert!(
            calm.suppression >= mayhem.suppression,
            "recall must not improve under chaos: calm {} vs mayhem {}",
            calm.suppression,
            mayhem.suppression
        );
        assert!(calm.delivery_ratio >= mayhem.delivery_ratio);
        assert!(mayhem.dropped_fault + mayhem.dropped_node_down > 0, "chaos never bit");
        assert_eq!(calm.dropped_node_down, 0);
    }

    /// The satellite fix this module carries: curve points are derived from
    /// the Observatory registry, so every point field must agree with the
    /// legacy stat structs the registry mirrors. If these ever diverge, the
    /// degradation curve and the metrics dump are lying to someone.
    #[test]
    fn curve_points_agree_with_legacy_stats() {
        let (program, model) = trained();
        let s = Scenario::small();
        let cfg = chaos_road_test_config(&s, 0.6, 0xC0FFEE, Placement::Controller);
        let outcome = road_test(&s, program, Some(Box::new(model)), cfg);
        let point = point_from(0.6, &outcome);
        assert_eq!(point.dropped_fault, outcome.net.dropped_fault);
        assert_eq!(point.dropped_node_down, outcome.net.dropped_node_down);
        assert!((point.delivery_ratio - outcome.delivery_ratio()).abs() < 1e-12);
        assert_eq!(point.mitigated, !outcome.mitigations.is_empty());
        let ctl = outcome.obs.controller.as_ref().unwrap();
        assert_eq!(ctl.installs() as usize, outcome.mitigations.len());
        assert_eq!(point.giveups, outcome.giveups.len());
        // The registry also counts attempts of episodes still in flight at
        // end-of-run, so it can only run ahead of the resolved total.
        assert!(point.install_attempts >= outcome.install_attempts());
    }

    #[test]
    fn sweep_is_deterministic_sequential_vs_parallel() {
        let (program, model) = trained();
        let base = ChaosSweepConfig {
            intensities: vec![0.0, 0.5, 1.0],
            ..ChaosSweepConfig::default()
        };
        let seq = chaos_sweep(
            &Scenario::small(),
            &program,
            || Box::new(model.clone()),
            &ChaosSweepConfig { workers: 1, ..base.clone() },
        );
        let par = chaos_sweep(
            &Scenario::small(),
            &program,
            || Box::new(model.clone()),
            &ChaosSweepConfig { workers: 3, ..base },
        );
        let render = |pts: &[ChaosPoint]| serde_json::to_string(pts).unwrap();
        assert_eq!(render(&seq), render(&par), "parallel sweep diverged");
    }
}
