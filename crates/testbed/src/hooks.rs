//! Hook composition: run several observers (monitor + controller + custom
//! probes) against one simulation.

use campuslab_netsim::{Commands, Dir, DropReason, LinkId, NodeId, Packet, SimDuration, SimHooks, SimTime};

/// Two hook sets driven by the same simulation, in order.
pub struct Duo<A: SimHooks, B: SimHooks> {
    pub first: A,
    pub second: B,
}

impl<A: SimHooks, B: SimHooks> Duo<A, B> {
    /// Compose two hook sets.
    pub fn new(first: A, second: B) -> Self {
        Duo { first, second }
    }
}

impl<A: SimHooks, B: SimHooks> SimHooks for Duo<A, B> {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        self.first.on_tap(now, link, dir, packet, cmds);
        self.second.on_tap(now, link, dir, packet, cmds);
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        latency: SimDuration,
        cmds: &mut Commands,
    ) {
        self.first.on_deliver(now, node, packet, latency, cmds);
        self.second.on_deliver(now, node, packet, latency, cmds);
    }

    fn on_drop(&mut self, now: SimTime, reason: DropReason, packet: &Packet, cmds: &mut Commands) {
        self.first.on_drop(now, reason, packet, cmds);
        self.second.on_drop(now, reason, packet, cmds);
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        self.first.on_timer(now, token, cmds);
        self.second.on_timer(now, token, cmds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        taps: u64,
        timers: u64,
    }

    impl SimHooks for Counter {
        fn on_tap(&mut self, _: SimTime, _: LinkId, _: Dir, _: &Packet, _: &mut Commands) {
            self.taps += 1;
        }
        fn on_timer(&mut self, _: SimTime, _: u64, _: &mut Commands) {
            self.timers += 1;
        }
    }

    #[test]
    fn both_hooks_see_every_event() {
        use campuslab_netsim::prelude::*;
        let campus = Campus::build(CampusConfig {
            dist_count: 1,
            access_per_dist: 1,
            hosts_per_access: 2,
            external_hosts: 2,
            ..CampusConfig::default()
        });
        let src = campus.hosts[0];
        let src_ip = campus.addr_of(src);
        let ext_ip = campus.addr_of(campus.external[0]);
        let mut net = campus.net;
        let mut b = PacketBuilder::new();
        net.inject(
            SimTime::ZERO,
            src,
            b.udp_v4(src_ip, ext_ip, 1, 2, Payload::Synthetic(10), 64, GroundTruth::default()),
        );
        net.set_timer(SimTime::from_millis(1), 7);
        let mut duo = Duo::new(Counter::default(), Counter::default());
        net.run(&mut duo, None);
        assert_eq!(duo.first.taps, 1);
        assert_eq!(duo.second.taps, 1);
        assert_eq!(duo.first.timers, 1);
        assert_eq!(duo.second.timers, 1);
    }
}
