//! Operator trust reports (paper §5, step (iv) and experiment E9): for
//! each decision the deployed model makes, produce the evidence list and
//! check whether it rests on the features a human analyst associates with
//! the attack — "if ... they would have made the same decision, their
//! level of trust in the learning model would increase".

use campuslab_capture::PacketRecord;
use campuslab_features::{packet_feature_index, packet_features};
use campuslab_ml::DecisionTree;
use campuslab_xai::{evidence_matches_expectation, explain, Explanation};
use serde::Serialize;

/// The packet features an analyst expects to see cited for each attack
/// kind (by attack id).
pub fn expected_features(attack_id: u16) -> Vec<usize> {
    let f = packet_feature_index;
    match attack_id {
        // DNS amplification: big UDP datagrams sourced from port 53.
        1 => vec![f("src_port_is_dns"), f("src_port"), f("is_udp"), f("wire_len"), f("protocol")],
        // SYN flood: bare SYNs at a TCP service.
        2 => vec![f("tcp_syn"), f("is_tcp"), f("dst_port"), f("protocol"), f("wire_len")],
        // Port scan: small TCP SYN/RST probes across ports.
        3 => vec![f("tcp_syn"), f("tcp_rst"), f("dst_port"), f("wire_len"), f("is_tcp")],
        // SSH brute force: repeated short exchanges on port 22.
        4 => vec![f("dst_port"), f("src_port"), f("is_tcp"), f("wire_len")],
        // Exfiltration: sustained outbound bulk on 443.
        5 => vec![f("dst_port"), f("wire_len"), f("direction_inbound"), f("is_tcp")],
        _ => Vec::new(),
    }
}

/// One audited decision.
#[derive(Debug, Clone, Serialize)]
pub struct AuditedDecision {
    pub predicted_attack: bool,
    pub truly_attack: bool,
    pub confidence: f64,
    pub evidence_matches: bool,
    pub rendered: String,
}

/// Aggregate trust metrics for a model over labeled traffic.
#[derive(Debug, Clone, Serialize)]
pub struct TrustReport {
    pub decisions_audited: usize,
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    /// Among true positives, how often the evidence cites expected
    /// features — the operator-trust proxy.
    pub evidence_match_rate: f64,
    /// A few rendered explanations for the report appendix.
    pub samples: Vec<AuditedDecision>,
}

/// Audit a deployed tree over labeled records for one attack kind.
pub fn trust_report(
    student: &DecisionTree,
    feature_names: &[String],
    records: &[PacketRecord],
    attack_id: u16,
    max_samples: usize,
) -> TrustReport {
    let expected = expected_features(attack_id);
    let mut tp = 0;
    let mut fp = 0;
    let mut fne = 0;
    let mut matched = 0;
    let mut samples = Vec::new();
    let mut audited = 0;
    for rec in records {
        let row = packet_features(rec);
        let ex: Explanation = explain(student, feature_names, &row);
        let predicted_attack = ex.predicted_class != 0;
        let truly_attack = rec.label_attack == attack_id;
        if !predicted_attack && !truly_attack {
            continue; // true negatives are not audited
        }
        audited += 1;
        let evidence_ok = evidence_matches_expectation(&ex, &expected);
        match (predicted_attack, truly_attack) {
            (true, true) => {
                tp += 1;
                if evidence_ok {
                    matched += 1;
                }
            }
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            (false, false) => unreachable!(),
        }
        // Keep a diverse sample set: prefer one of each outcome kind
        // (TP, FP, FN) before repeating kinds.
        let kind_count = samples
            .iter()
            .filter(|s: &&AuditedDecision| {
                s.predicted_attack == predicted_attack && s.truly_attack == truly_attack
            })
            .count();
        if samples.len() < max_samples && kind_count == 0 {
            let verdict_name = if predicted_attack { "attack" } else { "benign" };
            samples.push(AuditedDecision {
                predicted_attack,
                truly_attack,
                confidence: ex.confidence,
                evidence_matches: evidence_ok,
                rendered: ex.to_text(verdict_name),
            });
        }
    }
    TrustReport {
        decisions_audited: audited,
        true_positives: tp,
        false_positives: fp,
        false_negatives: fne,
        evidence_match_rate: if tp > 0 { matched as f64 / tp as f64 } else { 0.0 },
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{collect, Scenario};
    use campuslab_control::{run_development_loop, DevLoopConfig};

    #[test]
    fn expected_features_cover_all_attack_kinds() {
        for id in 1..=5u16 {
            assert!(!expected_features(id).is_empty(), "kind {id}");
        }
        assert!(expected_features(0).is_empty());
        assert!(expected_features(99).is_empty());
    }

    #[test]
    fn amplification_model_cites_the_right_evidence() {
        let data = collect(&Scenario::small());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let report = trust_report(&dev.student, &dev.feature_names, &data.packets, 1, 5);
        assert!(report.true_positives > 50, "{report:?}");
        assert!(
            report.evidence_match_rate > 0.9,
            "evidence match rate {}",
            report.evidence_match_rate
        );
        assert!(!report.samples.is_empty());
        assert!(report.samples[0].rendered.contains("verdict"));
    }
}
