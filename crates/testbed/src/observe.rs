//! The Observatory bundle a testbed run carries out: every layer's metric
//! sink plus a run-level trace, all stamped in sim-time so sequential and
//! parallel executions render byte-identical dumps.

use campuslab_capture::CaptureObs;
use campuslab_control::{
    ControllerObs, DetectorObs, DriftObs, FastLoopStatsSnapshot, PlazaObs, RolloutObs,
};
use campuslab_netsim::NetObs;
use campuslab_obs::{Registry, Tracer};
use campuslab_resolver::RsvObs;

/// Telemetry moved out of one testbed run (a [`crate::collect`] pass or a
/// [`crate::road_test`]). Layers that did not participate are `None` — a
/// switch-placement road test has no controller, a collection pass has no
/// filter bank.
#[derive(Debug, Clone)]
pub struct RunObs {
    /// Simulator-core telemetry: events, drops by reason, queue depths,
    /// delivery latency, chaos transitions.
    pub net: NetObs,
    /// Border-monitor conservation counters (collection runs).
    pub capture: Option<CaptureObs>,
    /// Window-detector telemetry (controller/cloud road tests).
    pub detector: Option<DetectorObs>,
    /// Mitigation-controller telemetry (controller/cloud road tests).
    pub controller: Option<ControllerObs>,
    /// Deployed-filter truth accounting, mirrored into metric form so the
    /// dump and the outcome summaries share one source.
    pub filter: Option<FastLoopStatsSnapshot>,
    /// Run-level stage spans (sim-time), with any controller episode spans
    /// merged in after the run's own.
    pub tracer: Tracer,
    /// Rollout-guard telemetry (guarded road tests only).
    pub rollout: Option<RolloutObs>,
    /// Resolver-service telemetry (ResolverLab runs only).
    pub resolver: Option<RsvObs>,
    /// DriftPilot telemetry (drift road tests only, experiment E17).
    pub drift: Option<DriftObs>,
    /// Plaza telemetry, scoped to this run's tenant (multi-tenant plaza
    /// runs only, experiment E18).
    pub plaza: Option<PlazaObs>,
}

impl RunObs {
    /// A bundle holding only simulator telemetry.
    pub fn net_only(net: NetObs) -> Self {
        RunObs {
            net,
            capture: None,
            detector: None,
            controller: None,
            filter: None,
            tracer: Tracer::new(),
            rollout: None,
            resolver: None,
            drift: None,
            plaza: None,
        }
    }

    /// Render every participating layer as one Prometheus text dump.
    ///
    /// Section order is fixed (net, capture, filter, detector, controller,
    /// rollout, resolver, drift, plaza) and each section renders its registry in
    /// registration order, so the whole dump is byte-deterministic for a
    /// given run. New sections append at the end, so dumps from runs that
    /// lack them are byte-for-byte what they always were — the
    /// `bundle_schema_is_append_only` test below pins that shape.
    pub fn prom(&self) -> String {
        let mut out = self.net.render();
        if let Some(c) = &self.capture {
            out.push_str(&c.render());
        }
        if let Some(f) = &self.filter {
            out.push_str(&render_filter(f));
        }
        if let Some(d) = &self.detector {
            out.push_str(&d.render());
        }
        if let Some(c) = &self.controller {
            out.push_str(&c.render());
        }
        if let Some(r) = &self.rollout {
            out.push_str(&r.render());
        }
        if let Some(r) = &self.resolver {
            out.push_str(&r.render());
        }
        if let Some(d) = &self.drift {
            out.push_str(&d.render());
        }
        if let Some(p) = &self.plaza {
            out.push_str(&p.render());
        }
        out
    }

    /// Render the run trace as JSON (one span per line).
    pub fn trace_json(&self) -> String {
        self.tracer.render_json()
    }
}

/// Mirror a [`FastLoopStatsSnapshot`] into Prometheus text through a
/// throwaway registry, so filter truth accounting appears in the same dump
/// format as everything else.
fn render_filter(snap: &FastLoopStatsSnapshot) -> String {
    let mut reg = Registry::new();
    let packets = reg.counter("flt_packets_total", "packets crossing the deployed filter");
    let dropped_attack = reg.counter_with_label(
        "flt_dropped_packets_total",
        Some("truth=\"attack\""),
        "filter drops by ground-truth class",
    );
    let dropped_benign =
        reg.counter_with_label("flt_dropped_packets_total", Some("truth=\"benign\""), "");
    let passed_attack =
        reg.counter("flt_passed_attack_total", "attack packets that slipped past the filter");
    let mut sink = reg.sink();
    sink.add(packets, snap.packets);
    sink.add(dropped_attack, snap.dropped_attack);
    sink.add(dropped_benign, snap.dropped_benign);
    sink.add(passed_attack, snap.passed_attack);
    reg.render(&sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_section_renders_truth_split() {
        let snap = FastLoopStatsSnapshot {
            packets: 100,
            dropped: 41,
            dropped_attack: 40,
            dropped_benign: 1,
            passed_attack: 3,
            first_drop: None,
        };
        let text = render_filter(&snap);
        assert!(text.contains("flt_packets_total 100"));
        assert!(text.contains("flt_dropped_packets_total{truth=\"attack\"} 40"));
        assert!(text.contains("flt_dropped_packets_total{truth=\"benign\"} 1"));
        assert!(text.contains("flt_passed_attack_total 3"));
    }

    #[test]
    fn prom_concatenates_in_fixed_order() {
        let bundle = RunObs {
            capture: Some(CaptureObs::new()),
            detector: Some(DetectorObs::new()),
            controller: Some(ControllerObs::new()),
            resolver: Some(RsvObs::new()),
            drift: Some(DriftObs::new()),
            plaza: Some(PlazaObs::new()),
            ..RunObs::net_only(NetObs::new())
        };
        let text = bundle.prom();
        let pos = |needle: &str| text.find(needle).unwrap_or_else(|| panic!("missing {needle}"));
        assert!(pos("sim_events_total") < pos("cap_observed_packets_total"));
        assert!(pos("cap_observed_packets_total") < pos("det_observed_records_total"));
        assert!(pos("det_observed_records_total") < pos("ctl_episodes_total"));
        assert!(pos("ctl_episodes_total") < pos("rsv_queries_total"));
        assert!(pos("rsv_queries_total") < pos("dp_windows_total"));
        // The plaza section is the last addition, so dumps from runs
        // without a tenant grant are unchanged byte for byte.
        assert!(pos("dp_windows_total") < pos("plz_tenants_admitted_total"));
    }

    /// Golden-shape schema test: the bundle's section order is a frozen,
    /// append-only contract. Every golden replay keys on this order, so a
    /// refactor that reorders sections (or renames a sentinel family)
    /// must fail HERE with a readable diff, not as an opaque golden-bytes
    /// mismatch in the bench suite. Extending the bundle is legal only by
    /// appending to the END of this list.
    #[test]
    fn bundle_schema_is_append_only() {
        const SCHEMA: [(&str, &str); 9] = [
            ("net", "sim_events_total"),
            ("capture", "cap_observed_packets_total"),
            ("filter", "flt_packets_total"),
            ("detector", "det_observed_records_total"),
            ("controller", "ctl_episodes_total"),
            ("rollout", "rollout_submissions_total"),
            ("resolver", "rsv_queries_total"),
            ("drift", "dp_windows_total"),
            ("plaza", "plz_tenants_admitted_total"),
        ];
        let bundle = RunObs {
            capture: Some(CaptureObs::new()),
            detector: Some(DetectorObs::new()),
            controller: Some(ControllerObs::new()),
            filter: Some(FastLoopStatsSnapshot::default()),
            rollout: Some(RolloutObs::new()),
            resolver: Some(RsvObs::new()),
            drift: Some(DriftObs::new()),
            plaza: Some(PlazaObs::new()),
            ..RunObs::net_only(NetObs::new())
        };
        let text = bundle.prom();
        // Recover each section's observed position by its sentinel family
        // and compare the resulting order against the frozen schema.
        let mut observed: Vec<(usize, &str)> = SCHEMA
            .iter()
            .map(|&(section, family)| {
                let at = text
                    .find(&format!("# HELP {family}"))
                    .unwrap_or_else(|| panic!("bundle lost section {section} ({family})"));
                (at, section)
            })
            .collect();
        observed.sort();
        let order: Vec<&str> = observed.into_iter().map(|(_, s)| s).collect();
        let frozen: Vec<&str> = SCHEMA.iter().map(|&(s, _)| s).collect();
        assert_eq!(
            order, frozen,
            "bundle sections reordered — the prom dump schema is append-only"
        );
        // A partial bundle renders the same prefix order with sections
        // simply absent, never shuffled.
        let partial = RunObs {
            detector: Some(DetectorObs::new()),
            drift: Some(DriftObs::new()),
            ..RunObs::net_only(NetObs::new())
        };
        let ptext = partial.prom();
        let net_at = ptext.find("# HELP sim_events_total").expect("net section");
        let det_at = ptext.find("# HELP det_observed_records_total").expect("detector section");
        let drift_at = ptext.find("# HELP dp_windows_total").expect("drift section");
        assert!(net_at < det_at && det_at < drift_at);
        assert!(!ptext.contains("rsv_queries_total"));
    }
}
