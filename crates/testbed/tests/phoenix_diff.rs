//! The PhoenixRun differential, as a property: for a *random* drift
//! scenario (workload span), a *random* checkpoint grid, and a *random*
//! kill point on that grid, killing the process at the boundary —
//! carrying nothing across but the encoded checkpoint bytes — and
//! resuming in a fresh session must reproduce the uninterrupted run's
//! fingerprint byte for byte.
//!
//! The in-crate sweep (`phoenix::tests::kill_at_every_boundary_...`)
//! pins one fixed scenario exhaustively; this suite walks the scenario
//! space. Case counts are small because each case pays for two full
//! simulation runs; the vendored proptest shim keeps every index
//! deterministic, so a failure here reproduces exactly.

use campuslab_control::{run_development_loop, DevLoopConfig};
use campuslab_dataplane::PipelineProgram;
use campuslab_features::{window_dataset, LabelMode, WindowConfig};
use campuslab_ml::{DecisionTree, TreeConfig};
use campuslab_netsim::SimDuration;
use campuslab_testbed::{collect, CrashCart, DriftRunConfig, DriftSession, Scenario};
use proptest::prelude::*;
use proptest::{proptest, ProptestConfig};

/// Train once per process: the dev loop is the expensive part, and every
/// case only needs its (deterministic) output.
fn trained() -> &'static (PipelineProgram, DecisionTree) {
    static TRAINED: std::sync::OnceLock<(PipelineProgram, DecisionTree)> =
        std::sync::OnceLock::new();
    TRAINED.get_or_init(|| {
        let data = collect(&Scenario::small());
        let dev = run_development_loop(&data.packets, &DevLoopConfig::default());
        let wd = window_dataset(
            &data.packets,
            WindowConfig { window_ns: 1_000_000_000, min_packets: 5 },
            LabelMode::BinaryAttack,
        );
        (dev.program, DecisionTree::fit(&wd, TreeConfig::shallow(4)))
    })
}

/// A drift session over the amplification scenario cut to `dur_s`
/// seconds of workload, no settle margin — the cheapest full stack that
/// still exercises guard + controller + pilot.
fn session(dur_s: u64) -> DriftSession {
    let (program, model) = trained();
    let mut scenario = Scenario::small();
    scenario.workload.duration = SimDuration::from_secs(dur_s);
    DriftSession::new(
        &scenario,
        program.clone(),
        Box::new(model.clone()),
        DriftRunConfig { settle: SimDuration::ZERO, ..DriftRunConfig::default() },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn any_kill_point_on_any_grid_resumes_byte_identically(
        dur_s in 4u64..7,
        step_halves in 1u64..4,
        kill_permille in 0u64..1000,
    ) {
        let step = SimDuration::from_millis(500 * step_halves);
        let cart = CrashCart::new(move || session(dur_s), step);
        let boundaries = cart.boundaries();
        let kill = ((kill_permille * boundaries.len() as u64) / 1000) as usize;
        let baseline = cart.uninterrupted();
        let resumed = cart.killed_at(kill).expect("the envelope round trip is lossless");
        prop_assert_eq!(baseline, resumed, "kill at boundary {} of {}", kill, boundaries.len());
    }
}
