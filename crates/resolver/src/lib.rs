//! # campuslab-resolver
//!
//! ResolverLab: a deterministic caching DNS resolver running as a simulated
//! campus service. The paper's running network-automation example attacks
//! DNS; this crate gives the campus an actual resolver to attack — a
//! fault-bearing service endpoint rather than a packet sink — so
//! experiments can measure *service* degradation (cache-hit collapse,
//! rate-limited floods, stale answers) and not just packet counts.
//!
//! The crate is split along a purity boundary:
//!
//! - [`service::ResolverService`] is pure, deterministic logic: bytes in,
//!   typed actions out. It owns the cache, the rate limiter, the zone data
//!   and the upstream model, and it **never panics** on untrusted input —
//!   every malformed shape ends in a typed response path (`FormErr`,
//!   `ServFail`) or a counted drop.
//! - [`actor::ResolverActor`] adapts the service onto the simulator's
//!   [`campuslab_netsim::SimHooks`], turning actions into packet
//!   injections and timers.
//!
//! Behaviours (each with its own RFC anchor):
//!
//! - positive **and negative caching** with sim-time TTL expiry (RFC 2308:
//!   NXDOMAIN answers are cached too, which is exactly what a
//!   random-subdomain "water torture" flood is designed to defeat);
//! - per-client token-bucket **response rate limiting** (RRL), the
//!   classic defence against spoofed-source amplification;
//! - **serve-stale** on upstream timeout (RFC 8767): a recently expired
//!   answer beats a `ServFail` when the upstream is drowning;
//! - typed `ServFail`/`FormErr` paths when handed garbage.
//!
//! Determinism contract: the service derives every decision from sim-time
//! and its own state — no wall clock, no ambient randomness — and the
//! actor schedules every reaction from a delivery hook at least
//! [`service::ResolverConfig::proc_delay`] in the future, which is kept
//! above the sharded engine's largest possible lookahead window so
//! ShardSim replays stay byte-identical to the sequential engine (see
//! DESIGN.md §12).

#![deny(rust_2018_idioms)]
#![deny(unreachable_pub)]

pub mod actor;
pub mod cache;
pub mod observe;
pub mod rrl;
pub mod service;
pub mod zone;

pub use actor::{ResolverActor, TOKEN_BASE};
pub use cache::{CacheLookup, DnsCache};
pub use observe::RsvObs;
pub use rrl::RateLimiter;
pub use service::{
    Action, Respond, ResolverConfig, ResolverGiveUp, ResolverService, ResponseKind, WindowStat,
};
pub use zone::{ZoneAnswer, ZoneDb};
