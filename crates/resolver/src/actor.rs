//! The simulator adapter: [`ResolverActor`] mounts a
//! [`crate::service::ResolverService`] on a campus node and translates
//! between packets and the service's typed actions.
//!
//! The actor is deliberately thin — every decision lives in the service —
//! and it is written to compose: testbed hook stacks call
//! [`ResolverActor::handle_deliver`] / [`ResolverActor::handle_timer`]
//! from their own `SimHooks` implementation, while standalone runs can use
//! the actor directly as hooks.
//!
//! ## Shard determinism
//!
//! `handle_deliver` runs inside the engine's delivery hook, which the
//! sharded executor replays against a conservative lookahead window. Every
//! command the actor emits from that path is stamped at least
//! `proc_delay` (6 ms) into the future — above the engine's maximum
//! lookahead, which the always-tapped 5 ms border link bounds at
//! 5 ms + 1 ns — so no command can ever be clamped and sequential,
//! parallel and sharded executors stay byte-identical. Timer callbacks run
//! in the executor's serial micro-phases where immediate (`at = now`)
//! injection is already exact (DESIGN.md §12).

use crate::service::{Action, Respond, ResolverService};
use campuslab_netsim::{
    Commands, NetworkHeader, NodeId, Packet, PacketBuilder, Payload, SimDuration, SimHooks,
    SimTime,
};
use std::net::Ipv4Addr;

/// Timer-token namespace for resolver timers ("RSLV" in ASCII), keeping
/// them disjoint from the mitigation controller's and rollout guard's.
pub const TOKEN_BASE: u64 = 0x5253_4C56_0000_0000;

const TOKEN_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// A resolver service mounted on one campus node.
pub struct ResolverActor {
    node: NodeId,
    addr: Ipv4Addr,
    service: ResolverService,
    builder: PacketBuilder,
}

impl ResolverActor {
    /// Mount `service` on `node`, answering as `addr`.
    pub fn new(node: NodeId, addr: Ipv4Addr, service: ResolverService) -> Self {
        ResolverActor { node, addr, service, builder: PacketBuilder::new() }
    }

    /// Feed a delivered packet to the service; call from `on_deliver`.
    /// Ignores anything that is not UDP/53 to our node.
    pub fn handle_deliver(&mut self, now: SimTime, node: NodeId, packet: &Packet, cmds: &mut Commands) {
        if node != self.node || packet.transport.dst_port() != Some(53) {
            return;
        }
        let NetworkHeader::V4(ip) = &packet.network else {
            return;
        };
        let sport = packet.transport.src_port().unwrap_or(0);
        // Synthetic payloads carry no bytes; an empty slice walks the
        // service's too-short path and is counted as ignored.
        let data = packet.payload.bytes().unwrap_or(&[]);
        let actions = self.service.handle_packet(now, ip.src, sport, data, packet.truth);
        for action in actions {
            match action {
                Action::Respond(r) => self.inject_response(r, cmds),
                Action::Arm { at, seq } => cmds.set_timer(at, TOKEN_BASE | (seq & !TOKEN_MASK)),
            }
        }
    }

    /// Resolve a fired timer; call from `on_timer`. Returns `true` when
    /// the token belonged to this resolver.
    pub fn handle_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) -> bool {
        if token & TOKEN_MASK != TOKEN_BASE {
            return false;
        }
        if let Some(r) = self.service.on_timer(now, token & !TOKEN_MASK) {
            self.inject_response(r, cmds);
        }
        true
    }

    fn inject_response(&mut self, r: Respond, cmds: &mut Commands) {
        let mut bytes = Vec::new();
        // Emission of a service-built message cannot fail; if it somehow
        // did, dropping the response is the panic-free option.
        if r.msg.emit(&mut bytes).is_err() {
            return;
        }
        let pkt =
            self.builder.udp_v4(self.addr, r.to, 53, r.dport, Payload::Bytes(bytes.into()), 64, r.truth);
        cmds.inject(r.at, self.node, pkt);
    }

    /// The node this resolver answers on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The service behind the actor.
    pub fn service(&self) -> &ResolverService {
        &self.service
    }

    /// Mutable access to the service (draining give-ups, merging sinks).
    pub fn service_mut(&mut self) -> &mut ResolverService {
        &mut self.service
    }
}

impl SimHooks for ResolverActor {
    fn on_deliver(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: &Packet,
        _latency: SimDuration,
        cmds: &mut Commands,
    ) {
        self.handle_deliver(now, node, packet, cmds);
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        self.handle_timer(now, token, cmds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ResponseKind;
    use campuslab_netsim::{Campus, CampusConfig, GroundTruth};
    use campuslab_wire::{DnsMessage, DnsRcode, DnsType};

    /// The actor plus a recorder for everything delivered back to hosts.
    struct Recorder {
        actor: ResolverActor,
        client: NodeId,
        responses: Vec<(SimTime, DnsMessage)>,
    }

    impl SimHooks for Recorder {
        fn on_deliver(
            &mut self,
            now: SimTime,
            node: NodeId,
            packet: &Packet,
            _latency: SimDuration,
            cmds: &mut Commands,
        ) {
            if node == self.client {
                if let Some(bytes) = packet.payload.bytes() {
                    if let Ok(msg) = DnsMessage::parse(bytes) {
                        self.responses.push((now, msg));
                    }
                }
            }
            self.actor.handle_deliver(now, node, packet, cmds);
        }

        fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
            self.actor.handle_timer(now, token, cmds);
        }
    }

    #[test]
    fn query_round_trips_through_the_simulated_campus() {
        let mut campus = Campus::build(CampusConfig::default());
        let dns_node = campus.servers.dns;
        let dns_addr = campus.addr_of(dns_node);
        let client_node = campus.hosts[0];
        let client_addr = campus.addr_of(client_node);

        let actor =
            ResolverActor::new(dns_node, dns_addr, ResolverService::campus_default());
        let mut hooks = Recorder { actor, client: client_node, responses: Vec::new() };

        let truth = GroundTruth { flow_id: 1, app_class: 1, attack: None };
        let mut b = PacketBuilder::new();
        let mut qbytes = Vec::new();
        DnsMessage::query(42, "svc0.example0.com", DnsType::A)
            .emit(&mut qbytes)
            .expect("valid query");
        let query = b.udp_v4(client_addr, dns_addr, 5353, 53, Payload::Bytes(qbytes.into()), 64, truth);
        campus.net.inject(SimTime::ZERO, client_node, query);
        campus.net.run_sequential(&mut hooks, Some(SimTime::from_secs(2)));

        assert_eq!(hooks.responses.len(), 1, "exactly one answer back at the client");
        let (at, msg) = &hooks.responses[0];
        assert_eq!(msg.id, 42);
        assert!(msg.flags.response);
        assert_eq!(msg.flags.rcode, DnsRcode::NoError);
        assert_eq!(msg.answers.len(), 1);
        // Miss path: one upstream round trip plus network transit.
        assert!(at.as_nanos() >= 20_000_000, "upstream rtt must be paid");
        let obs = hooks.actor.service().obs();
        assert_eq!(obs.queries(), 1);
        assert_eq!(obs.responses(ResponseKind::Answer), 1);
        assert_eq!(obs.cache_misses(), 1);
    }

    #[test]
    fn foreign_tokens_are_left_alone() {
        let mut actor = ResolverActor::new(
            NodeId(0),
            Ipv4Addr::new(10, 1, 255, 53),
            ResolverService::campus_default(),
        );
        let mut cmds = Commands::default();
        assert!(!actor.handle_timer(SimTime::ZERO, 0x4D49_5449_0000_0001, &mut cmds));
        assert!(actor.handle_timer(SimTime::ZERO, TOKEN_BASE | 99, &mut cmds));
    }
}
