//! ResolverLab's Observatory schema: an [`RsvObs`] bundles a [`Registry`]
//! describing every `rsv_*` metric with the [`ObsSink`] the service bumps.
//! One `RsvObs` per [`crate::service::ResolverService`] — no globals, no
//! locks; parallel runs each own their sink and merge at the end, same as
//! the simulator's `NetObs`.
//!
//! The schema is the experiment's measurement surface: E16 reads
//! cache-hit collapse and recovery, rate-limit drops and serve-stale
//! events out of these families, so names and registration order are part
//! of the golden-replay contract — append new metrics, never reorder.

use campuslab_obs::{CounterId, GaugeId, HistogramId, ObsSink, Registry};

/// Response-size histogram bounds, bytes (≤64 .. ≤4 KB, then +Inf).
pub const RESPONSE_BYTES_BOUNDS: [u64; 6] = [64, 128, 256, 512, 1024, 4096];

/// Upstream-latency histogram bounds, microseconds (≤1 ms .. ≤100 ms, then +Inf).
pub const UPSTREAM_LATENCY_BOUNDS: [u64; 5] = [1_000, 5_000, 20_000, 50_000, 100_000];

/// Stable index of a [`crate::service::ResponseKind`] into the
/// `rsv_responses_total` label set.
pub fn response_index(kind: crate::service::ResponseKind) -> usize {
    use crate::service::ResponseKind::*;
    match kind {
        Answer => 0,
        Negative => 1,
        Stale => 2,
        ServFail => 3,
        FormErr => 4,
    }
}

/// Metrics registry + sink for one resolver instance.
#[derive(Debug, Clone)]
pub struct RsvObs {
    registry: Registry,
    /// The value store the service bumps. Public so the service can write
    /// without an extra indirection; read it back through the typed ids.
    pub sink: ObsSink,
    queries: CounterId,
    /// Indexed by [`response_index`]: answer, negative, stale, servfail, formerr.
    responses: [CounterId; 5],
    cache_hits: CounterId,
    cache_negative_hits: CounterId,
    cache_misses: CounterId,
    rrl_dropped: CounterId,
    ignored: CounterId,
    upstream_queries: CounterId,
    upstream_timeouts: CounterId,
    giveups: CounterId,
    cache_entries: GaugeId,
    upstream_latency_us: HistogramId,
    response_bytes: HistogramId,
}

impl Default for RsvObs {
    fn default() -> Self {
        RsvObs::new()
    }
}

impl RsvObs {
    /// Build the resolver schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let queries = reg.counter("rsv_queries_total", "DNS queries arriving at the resolver");
        let resp_help = "responses sent, by outcome";
        let responses = [
            reg.counter_with_label("rsv_responses_total", Some("outcome=\"answer\""), resp_help),
            reg.counter_with_label("rsv_responses_total", Some("outcome=\"negative\""), resp_help),
            reg.counter_with_label("rsv_responses_total", Some("outcome=\"stale\""), resp_help),
            reg.counter_with_label("rsv_responses_total", Some("outcome=\"servfail\""), resp_help),
            reg.counter_with_label("rsv_responses_total", Some("outcome=\"formerr\""), resp_help),
        ];
        let cache_hits =
            reg.counter("rsv_cache_hits_total", "queries answered from a fresh positive entry");
        let cache_negative_hits = reg.counter(
            "rsv_cache_negative_hits_total",
            "queries answered from a fresh RFC 2308 negative entry",
        );
        let cache_misses =
            reg.counter("rsv_cache_misses_total", "queries that had to consult the upstream");
        let rrl_dropped = reg.counter(
            "rsv_rrl_dropped_total",
            "queries dropped by per-client response rate limiting",
        );
        let ignored = reg.counter(
            "rsv_ignored_total",
            "datagrams ignored without response (too short, or already a response)",
        );
        let upstream_queries =
            reg.counter("rsv_upstream_queries_total", "recursive lookups sent upstream");
        let upstream_timeouts = reg.counter(
            "rsv_upstream_timeouts_total",
            "recursive lookups abandoned after the upstream deadline",
        );
        let giveups = reg.counter(
            "rsv_giveups_total",
            "queries the resolver gave up on (timed out with no stale fallback)",
        );
        let cache_entries =
            reg.gauge("rsv_cache_entries", "positive cache entries currently held");
        let upstream_latency_us = reg.histogram(
            "rsv_upstream_latency_us",
            "upstream round-trip latency in microseconds",
            &UPSTREAM_LATENCY_BOUNDS,
        );
        let response_bytes = reg.histogram(
            "rsv_response_bytes",
            "wire size of emitted responses",
            &RESPONSE_BYTES_BOUNDS,
        );
        let sink = reg.sink();
        RsvObs {
            registry: reg,
            sink,
            queries,
            responses,
            cache_hits,
            cache_negative_hits,
            cache_misses,
            rrl_dropped,
            ignored,
            upstream_queries,
            upstream_timeouts,
            giveups,
            cache_entries,
            upstream_latency_us,
            response_bytes,
        }
    }

    #[inline]
    pub(crate) fn on_query(&mut self) {
        self.sink.inc(self.queries);
    }

    #[inline]
    pub(crate) fn on_response(&mut self, kind: crate::service::ResponseKind, wire_bytes: u64) {
        self.sink.inc(self.responses[response_index(kind)]);
        self.sink.observe(self.response_bytes, wire_bytes);
    }

    #[inline]
    pub(crate) fn on_cache_hit(&mut self) {
        self.sink.inc(self.cache_hits);
    }

    #[inline]
    pub(crate) fn on_cache_negative_hit(&mut self) {
        self.sink.inc(self.cache_negative_hits);
    }

    #[inline]
    pub(crate) fn on_cache_miss(&mut self) {
        self.sink.inc(self.cache_misses);
    }

    #[inline]
    pub(crate) fn on_rrl_drop(&mut self) {
        self.sink.inc(self.rrl_dropped);
    }

    #[inline]
    pub(crate) fn on_ignored(&mut self) {
        self.sink.inc(self.ignored);
    }

    #[inline]
    pub(crate) fn on_upstream_query(&mut self) {
        self.sink.inc(self.upstream_queries);
    }

    #[inline]
    pub(crate) fn on_upstream_timeout(&mut self) {
        self.sink.inc(self.upstream_timeouts);
    }

    #[inline]
    pub(crate) fn on_giveup(&mut self) {
        self.sink.inc(self.giveups);
    }

    #[inline]
    pub(crate) fn on_upstream_latency(&mut self, latency_ns: u64) {
        self.sink.observe(self.upstream_latency_us, latency_ns / 1_000);
    }

    #[inline]
    pub(crate) fn set_cache_entries(&mut self, entries: i64) {
        self.sink.set(self.cache_entries, entries);
    }

    /// Queries arrived.
    pub fn queries(&self) -> u64 {
        self.sink.counter(self.queries)
    }

    /// Responses sent with one outcome.
    pub fn responses(&self, kind: crate::service::ResponseKind) -> u64 {
        self.sink.counter(self.responses[response_index(kind)])
    }

    /// Responses summed over every outcome.
    pub fn responses_total(&self) -> u64 {
        self.responses.iter().map(|&c| self.sink.counter(c)).sum()
    }

    /// Fresh positive cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.sink.counter(self.cache_hits)
    }

    /// Fresh negative cache hits.
    pub fn cache_negative_hits(&self) -> u64 {
        self.sink.counter(self.cache_negative_hits)
    }

    /// Cache misses (upstream consulted).
    pub fn cache_misses(&self) -> u64 {
        self.sink.counter(self.cache_misses)
    }

    /// Queries dropped by rate limiting.
    pub fn rrl_dropped(&self) -> u64 {
        self.sink.counter(self.rrl_dropped)
    }

    /// Datagrams ignored without a response.
    pub fn ignored(&self) -> u64 {
        self.sink.counter(self.ignored)
    }

    /// Upstream lookups issued.
    pub fn upstream_queries(&self) -> u64 {
        self.sink.counter(self.upstream_queries)
    }

    /// Upstream lookups that timed out.
    pub fn upstream_timeouts(&self) -> u64 {
        self.sink.counter(self.upstream_timeouts)
    }

    /// Give-ups (timeouts with no stale fallback).
    pub fn giveups(&self) -> u64 {
        self.sink.counter(self.giveups)
    }

    /// Positive cache entries at the last update.
    pub fn cache_entries(&self) -> i64 {
        self.sink.gauge(self.cache_entries)
    }

    /// Cache-hit rate over queries that reached the cache (hits + negative
    /// hits over hits + negative hits + misses).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits() + self.cache_negative_hits();
        let total = hits + self.cache_misses();
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }

    /// Render this resolver's metrics as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fold another resolver's sink (same schema by construction) into
    /// this one.
    pub fn merge_from(&mut self, other: &RsvObs) {
        self.sink.merge_from(&other.sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ResponseKind;

    #[test]
    fn schema_renders_all_families_zeroed() {
        let obs = RsvObs::new();
        let text = obs.render();
        for family in [
            "rsv_queries_total",
            "rsv_responses_total{outcome=\"answer\"} 0",
            "rsv_responses_total{outcome=\"formerr\"} 0",
            "rsv_cache_hits_total",
            "rsv_cache_negative_hits_total",
            "rsv_cache_misses_total",
            "rsv_rrl_dropped_total",
            "rsv_ignored_total",
            "rsv_upstream_queries_total",
            "rsv_upstream_timeouts_total",
            "rsv_giveups_total",
            "rsv_cache_entries 0",
            "rsv_upstream_latency_us_count 0",
            "rsv_response_bytes_bucket{le=\"+Inf\"} 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn response_indices_are_dense_and_distinct() {
        use ResponseKind::*;
        let mut seen: Vec<usize> =
            [Answer, Negative, Stale, ServFail, FormErr].iter().map(|&k| response_index(k)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hit_rate_tracks_hits_and_misses() {
        let mut obs = RsvObs::new();
        obs.on_cache_hit();
        obs.on_cache_hit();
        obs.on_cache_negative_hit();
        obs.on_cache_miss();
        assert!((obs.cache_hit_rate() - 0.75).abs() < 1e-9);
    }
}
