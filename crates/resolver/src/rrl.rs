//! Response rate limiting: a per-client token bucket debited when a query
//! arrives (budgeting the *response* before any work is done for it).
//!
//! All arithmetic is integer-only on nano-tokens so refill order can never
//! perturb determinism; elapsed sim-time times the rate goes through a
//! `u128` intermediate so even absurd idle gaps cannot overflow. The
//! bucket table is bounded — when it outgrows `max_clients`, buckets idle
//! longer than ten seconds are dropped, so a spoofed-source flood
//! cycling through addresses churns the table instead of growing it.

use campuslab_netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One token, in nano-token units.
const SCALE: u128 = 1_000_000_000;

/// Buckets untouched for this long are eligible for pruning.
fn idle_prune() -> SimDuration {
    SimDuration::from_secs(10)
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Nano-tokens currently available, capped at `burst * SCALE`.
    tokens: u128,
    /// Last refill instant.
    last: SimTime,
}

/// Per-client token-bucket rate limiter over source IPv4 addresses.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    /// Tokens added per second of sim-time.
    rate: u64,
    /// Bucket capacity in whole tokens.
    burst: u64,
    buckets: BTreeMap<Ipv4Addr, Bucket>,
    max_clients: usize,
}

impl RateLimiter {
    /// A limiter granting `rate` responses/second with bursts up to
    /// `burst`, tracking at most `max_clients` distinct sources.
    pub fn new(rate: u64, burst: u64, max_clients: usize) -> Self {
        RateLimiter { rate, burst: burst.max(1), buckets: BTreeMap::new(), max_clients: max_clients.max(1) }
    }

    /// Debit one token for `client` at `now`; `false` means the response
    /// budget is spent and the query should be dropped.
    pub fn allow(&mut self, now: SimTime, client: Ipv4Addr) -> bool {
        if self.buckets.len() >= self.max_clients && !self.buckets.contains_key(&client) {
            self.prune(now);
        }
        let cap = u128::from(self.burst) * SCALE;
        let b = self
            .buckets
            .entry(client)
            .or_insert(Bucket { tokens: cap, last: now });
        let elapsed_ns = u128::from(now.since(b.last).as_nanos());
        b.tokens = cap.min(b.tokens + elapsed_ns * u128::from(self.rate));
        b.last = now;
        if b.tokens >= SCALE {
            b.tokens -= SCALE;
            true
        } else {
            false
        }
    }

    /// Distinct sources currently tracked.
    pub fn tracked_clients(&self) -> usize {
        self.buckets.len()
    }

    fn prune(&mut self, now: SimTime) {
        self.buckets.retain(|_, b| b.last + idle_prune() >= now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn burst_then_denial_then_refill() {
        let mut rrl = RateLimiter::new(2, 4, 16);
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let t0 = at(0);
        for _ in 0..4 {
            assert!(rrl.allow(t0, c));
        }
        assert!(!rrl.allow(t0, c), "burst exhausted");
        // One second later the 2/s rate has restored two tokens.
        let t1 = at(1);
        assert!(rrl.allow(t1, c));
        assert!(rrl.allow(t1, c));
        assert!(!rrl.allow(t1, c));
    }

    #[test]
    fn clients_are_independent() {
        let mut rrl = RateLimiter::new(1, 1, 16);
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let t0 = at(0);
        assert!(rrl.allow(t0, a));
        assert!(!rrl.allow(t0, a));
        assert!(rrl.allow(t0, b), "a's exhaustion must not affect b");
    }

    #[test]
    fn fractional_refill_accumulates() {
        let mut rrl = RateLimiter::new(2, 1, 16);
        let c = Ipv4Addr::new(10, 0, 0, 1);
        assert!(rrl.allow(at(0), c));
        // 250 ms at 2/s is half a token: not enough.
        let t = SimTime::ZERO + SimDuration::from_millis(250);
        assert!(!rrl.allow(t, c));
        // Another 250 ms completes the token.
        let t = SimTime::ZERO + SimDuration::from_millis(500);
        assert!(rrl.allow(t, c));
    }

    #[test]
    fn spoofed_flood_churns_the_table_instead_of_growing_it() {
        let mut rrl = RateLimiter::new(1, 1, 8);
        // 8 early clients, then 10 s of silence, then a sweep of fresh
        // sources: the idle buckets get pruned to make room.
        for i in 0..8u8 {
            rrl.allow(at(0), Ipv4Addr::new(10, 0, 0, i));
        }
        assert_eq!(rrl.tracked_clients(), 8);
        for i in 0..100u8 {
            rrl.allow(at(20), Ipv4Addr::new(192, 0, 2, i));
        }
        assert!(rrl.tracked_clients() <= 101);
        assert!(!rrl.buckets.contains_key(&Ipv4Addr::new(10, 0, 0, 0)));
    }
}
