//! The resolver's model of the upstream namespace: a static, deterministic
//! zone database standing in for "the rest of the DNS".
//!
//! Every name the campus workload generator queries resolves here, plus a
//! deliberately fat TXT zone (`amp.example.org`) that gives ANY/TXT
//! amplification probes something to amplify. Everything else is
//! NXDOMAIN — which is exactly what a random-subdomain water-torture
//! flood exploits, since each unique junk name forces a full (simulated)
//! upstream round trip before the negative answer can be cached.

use campuslab_wire::{DnsRecord, DnsRecordData, DnsType};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// What the upstream said about a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// The name exists; the vec holds records matching the query type
    /// (possibly empty: a NODATA answer, name exists but not that type).
    Records(Vec<DnsRecord>),
    /// The name does not exist (RFC 2308 negative answer).
    NxDomain,
}

/// A static name → records map with deterministic contents.
#[derive(Debug, Clone)]
pub struct ZoneDb {
    names: BTreeMap<String, Vec<DnsRecord>>,
    /// RFC 2308 negative TTL advertised with NXDOMAIN answers, seconds.
    pub neg_ttl: u32,
}

/// TTL on workload A records, seconds. Deliberately short so a steady
/// benign load exercises expiry and refresh, not just a warm cache.
const A_TTL: u32 = 2;

/// TTL on the amplification-bait TXT records, seconds.
const TXT_TTL: u32 = 4;

impl ZoneDb {
    /// The default campus upstream: every workload-generator domain plus
    /// the amplification-bait TXT zone.
    pub fn campus_default() -> Self {
        let mut names = BTreeMap::new();
        // Must stay in lock-step with the campus workload generator's
        // domain list (traffic::workload) so benign queries hit.
        for k in 0..48u32 {
            let tld = ["com", "org", "net", "edu"][k as usize % 4];
            let name = format!("svc{k}.example{}.{tld}", k % 7);
            let addr = Ipv4Addr::new(203, 0, 113, (k % 250) as u8 + 1);
            let rec = DnsRecord { name: name.clone(), ttl: A_TTL, data: DnsRecordData::A(addr) };
            names.insert(name, vec![rec]);
        }
        let amp = "amp.example.org".to_string();
        let fat: Vec<DnsRecord> = (0..16)
            .map(|i| DnsRecord {
                name: amp.clone(),
                ttl: TXT_TTL,
                data: DnsRecordData::Txt(vec![b'a' + (i % 26) as u8; 100]),
            })
            .collect();
        names.insert(amp, fat);
        ZoneDb { names, neg_ttl: 1 }
    }

    /// Authoritative answer for `name`/`qtype`.
    pub fn lookup(&self, name: &str, qtype: DnsType) -> ZoneAnswer {
        match self.names.get(name) {
            None => ZoneAnswer::NxDomain,
            Some(records) => {
                let matched: Vec<DnsRecord> = records
                    .iter()
                    .filter(|r| qtype == DnsType::Any || r.data.rtype() == qtype)
                    .cloned()
                    .collect();
                ZoneAnswer::Records(matched)
            }
        }
    }

    /// Names the zone can answer positively.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the zone holds no names.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_domains_all_resolve() {
        let z = ZoneDb::campus_default();
        for k in 0..48u32 {
            let tld = ["com", "org", "net", "edu"][k as usize % 4];
            let name = format!("svc{k}.example{}.{tld}", k % 7);
            match z.lookup(&name, DnsType::A) {
                ZoneAnswer::Records(r) => {
                    assert_eq!(r.len(), 1, "{name}");
                    assert!(matches!(r[0].data, DnsRecordData::A(_)));
                }
                ZoneAnswer::NxDomain => panic!("{name} should resolve"),
            }
        }
    }

    #[test]
    fn random_subdomains_are_nxdomain() {
        let z = ZoneDb::campus_default();
        assert_eq!(z.lookup("qjx7a.svc0.example0.com", DnsType::A), ZoneAnswer::NxDomain);
        assert_eq!(z.lookup("not-a-name.example.org", DnsType::A), ZoneAnswer::NxDomain);
    }

    #[test]
    fn amp_zone_is_fat_and_any_returns_everything() {
        let z = ZoneDb::campus_default();
        match z.lookup("amp.example.org", DnsType::Any) {
            ZoneAnswer::Records(r) => {
                assert_eq!(r.len(), 16);
                let bytes: usize = r
                    .iter()
                    .map(|rec| match &rec.data {
                        DnsRecordData::Txt(v) => v.len(),
                        _ => 0,
                    })
                    .sum();
                assert!(bytes >= 1600, "ANY answer should amplify");
            }
            ZoneAnswer::NxDomain => panic!("amp zone missing"),
        }
    }

    #[test]
    fn wrong_type_on_a_known_name_is_nodata_not_nxdomain() {
        let z = ZoneDb::campus_default();
        assert_eq!(z.lookup("svc0.example0.com", DnsType::Txt), ZoneAnswer::Records(vec![]));
    }
}
