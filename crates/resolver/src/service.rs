//! The pure resolver state machine: untrusted bytes in, typed actions out.
//!
//! `ResolverService` owns the cache, the rate limiter, the zone data and a
//! model of a finite upstream (a fixed number of concurrent recursive
//! lookups, each taking one configured round trip). It never performs I/O
//! and never panics on input: every datagram ends in a typed response
//! ([`ResponseKind`]), a counted drop, or a counted ignore. The actor
//! layer (see [`crate::actor`]) turns the returned [`Action`]s into packet
//! injections and simulator timers.
//!
//! ## Failure ladder
//!
//! A query that cannot be answered from cache walks down a ladder rather
//! than falling off a cliff:
//!
//! 1. fresh cache entry → immediate answer;
//! 2. upstream slot free → resolve, cache, answer;
//! 3. upstream saturated → wait out the deadline, then serve a **stale**
//!    entry if one exists (RFC 8767);
//! 4. nothing stale → typed `ServFail`, recorded as a **give-up** that
//!    rollout guards can treat as rollback evidence.
//!
//! ## Determinism
//!
//! Every decision derives from sim-time and prior state. The delays the
//! service stamps on its actions ([`ResolverConfig::proc_delay`] and up)
//! are all kept above the sharded engine's maximum lookahead window so
//! that delivery-hook-scheduled work is never clamped (DESIGN.md §12).

use crate::cache::{CacheLookup, DnsCache};
use crate::observe::RsvObs;
use crate::rrl::RateLimiter;
use crate::zone::{ZoneAnswer, ZoneDb};
use campuslab_netsim::{GroundTruth, SimDuration, SimTime};
use campuslab_wire::{DnsFlags, DnsMessage, DnsRcode, DnsRecord, DnsType};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Tunables for one resolver instance.
///
/// The timing defaults are not arbitrary: `proc_delay` must exceed the
/// sharded engine's largest possible lookahead (bounded by the tapped
/// border link at 5 ms + 1 ns) so that responses scheduled from a delivery
/// hook land identically under every executor. `upstream_rtt` and
/// `upstream_timeout` sit above it for the same reason.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Local processing delay stamped on cache-served responses.
    pub proc_delay: SimDuration,
    /// Modelled round trip for one upstream recursive lookup.
    pub upstream_rtt: SimDuration,
    /// Deadline after which a lookup that never got an upstream slot is
    /// abandoned (serve-stale or ServFail).
    pub upstream_timeout: SimDuration,
    /// How long an expired positive entry stays eligible for serve-stale.
    pub stale_window: SimDuration,
    /// Positive-cache capacity, entries.
    pub cache_capacity: usize,
    /// Negative-cache capacity, entries.
    pub neg_capacity: usize,
    /// RRL refill rate, responses per client per second.
    pub rrl_rate: u64,
    /// RRL bucket size, responses.
    pub rrl_burst: u64,
    /// Distinct client buckets tracked before idle pruning kicks in.
    pub rrl_max_clients: usize,
    /// Concurrent upstream lookups the resolver can have in flight.
    pub upstream_concurrency: usize,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            proc_delay: SimDuration::from_millis(6),
            upstream_rtt: SimDuration::from_millis(20),
            upstream_timeout: SimDuration::from_millis(60),
            stale_window: SimDuration::from_secs(30),
            cache_capacity: 512,
            neg_capacity: 256,
            rrl_rate: 20,
            rrl_burst: 40,
            rrl_max_clients: 1024,
            upstream_concurrency: 8,
        }
    }
}

/// How a response came to be — the label on `rsv_responses_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Fresh positive answer (cache or upstream).
    Answer,
    /// NXDOMAIN, fresh (cache or upstream, RFC 2308).
    Negative,
    /// Expired positive answer served because the upstream timed out
    /// (RFC 8767).
    Stale,
    /// Upstream timed out and nothing stale was available.
    ServFail,
    /// The query itself was malformed.
    FormErr,
}

/// A response the actor should put on the wire.
#[derive(Debug, Clone)]
pub struct Respond {
    /// When to inject the response packet.
    pub at: SimTime,
    /// Client address the response goes back to.
    pub to: Ipv4Addr,
    /// Client source port the response goes back to.
    pub dport: u16,
    /// The DNS message to emit.
    pub msg: DnsMessage,
    /// Outcome label (already counted in the service's metrics).
    pub kind: ResponseKind,
    /// Ground truth echoed from the query so labels survive the round trip.
    pub truth: GroundTruth,
}

/// One instruction from the service to the actor.
#[derive(Debug, Clone)]
pub enum Action {
    /// Inject this response.
    Respond(Respond),
    /// Arm a timer; when it fires, call
    /// [`ResolverService::on_timer`] with `seq`.
    Arm {
        /// When the timer should fire.
        at: SimTime,
        /// Pending-lookup sequence number to resolve then.
        seq: u64,
    },
}

/// A query the resolver abandoned — the service-level failure signal
/// rollout guards consume as rollback evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverGiveUp {
    /// When the deadline expired.
    pub at: SimTime,
    /// Client whose query was abandoned.
    pub client: Ipv4Addr,
    /// The name that could not be resolved.
    pub name: String,
}

/// Per-second query/hit tally, for hit-rate-over-time curves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStat {
    /// Queries that reached the cache in this second.
    pub queries: u64,
    /// Of those, answered from a fresh (positive or negative) entry.
    pub cache_hits: u64,
}

#[derive(Debug, Clone)]
enum PendingKind {
    /// Holds an upstream slot; resolves at the armed deadline.
    Resolving,
    /// Never got a slot; at the deadline, serve stale or give up.
    Starved { stale: Option<Vec<DnsRecord>> },
}

#[derive(Debug, Clone)]
struct Pending {
    client: Ipv4Addr,
    dport: u16,
    query: DnsMessage,
    name: String,
    qtype: DnsType,
    truth: GroundTruth,
    kind: PendingKind,
}

/// The resolver: deterministic, allocation-bounded, panic-free on any
/// input byte sequence.
#[derive(Debug)]
pub struct ResolverService {
    cfg: ResolverConfig,
    cache: DnsCache,
    rrl: RateLimiter,
    zone: ZoneDb,
    obs: RsvObs,
    pending: BTreeMap<u64, Pending>,
    next_seq: u64,
    inflight: usize,
    giveups: Vec<ResolverGiveUp>,
    windows: BTreeMap<u64, WindowStat>,
}

impl ResolverService {
    /// A resolver over `zone` with the given tunables.
    pub fn new(cfg: ResolverConfig, zone: ZoneDb) -> Self {
        let cache = DnsCache::new(cfg.cache_capacity, cfg.neg_capacity, cfg.stale_window);
        let rrl = RateLimiter::new(cfg.rrl_rate, cfg.rrl_burst, cfg.rrl_max_clients);
        ResolverService {
            cfg,
            cache,
            rrl,
            zone,
            obs: RsvObs::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            inflight: 0,
            giveups: Vec::new(),
            windows: BTreeMap::new(),
        }
    }

    /// A resolver with default tunables over the default campus zone.
    pub fn campus_default() -> Self {
        ResolverService::new(ResolverConfig::default(), ZoneDb::campus_default())
    }

    /// Handle one UDP datagram addressed to port 53.
    ///
    /// `data` is untrusted; every shape of garbage is absorbed into a
    /// typed outcome. Returns the actions the actor must carry out
    /// (possibly none: ignored or rate-limited traffic dies here).
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        client: Ipv4Addr,
        sport: u16,
        data: &[u8],
        truth: GroundTruth,
    ) -> Vec<Action> {
        self.obs.on_query();
        // Too short to carry a DNS header, or already a response (the
        // reflection shape amplification abuse produces): not answerable,
        // not worth a FormErr that would itself amplify.
        if data.len() < 12 || data[2] & 0x80 != 0 {
            self.obs.on_ignored();
            return Vec::new();
        }
        // Budget the response before doing any work for it (RRL).
        if !self.rrl.allow(now, client) {
            self.obs.on_rrl_drop();
            return Vec::new();
        }
        let reply_at = now + self.cfg.proc_delay;
        let msg = match DnsMessage::parse(data) {
            Ok(msg) => msg,
            Err(_) => {
                // Header was readable, body was garbage: echo the id with
                // a typed FormErr instead of going silent, so well-meaning
                // but buggy clients still get a signal.
                let id = u16::from_be_bytes([data[0], data[1]]);
                let msg = DnsMessage {
                    id,
                    flags: DnsFlags::response(DnsRcode::FormErr),
                    questions: Vec::new(),
                    answers: Vec::new(),
                    authorities: Vec::new(),
                    additionals: Vec::new(),
                };
                return vec![self.respond(reply_at, client, sport, msg, ResponseKind::FormErr, truth)];
            }
        };
        if msg.questions.len() != 1 {
            let resp = msg.answer(Vec::new(), DnsRcode::FormErr);
            return vec![self.respond(reply_at, client, sport, resp, ResponseKind::FormErr, truth)];
        }
        let name = msg.questions[0].name.clone();
        let qtype = msg.questions[0].qtype;
        self.window_mut(now).queries += 1;
        match self.cache.lookup(now, &name, qtype) {
            CacheLookup::Fresh(records) => {
                self.obs.on_cache_hit();
                self.window_mut(now).cache_hits += 1;
                let resp = msg.answer(records, DnsRcode::NoError);
                vec![self.respond(reply_at, client, sport, resp, ResponseKind::Answer, truth)]
            }
            CacheLookup::Negative => {
                self.obs.on_cache_negative_hit();
                self.window_mut(now).cache_hits += 1;
                let resp = msg.answer(Vec::new(), DnsRcode::NxDomain);
                vec![self.respond(reply_at, client, sport, resp, ResponseKind::Negative, truth)]
            }
            CacheLookup::Stale(records) => {
                self.obs.on_cache_miss();
                self.upstream(now, client, sport, msg, name, qtype, truth, Some(records))
            }
            CacheLookup::Miss => {
                self.obs.on_cache_miss();
                self.upstream(now, client, sport, msg, name, qtype, truth, None)
            }
        }
    }

    /// Resolve the pending lookup a timer was armed for. `seq` is the
    /// value carried in the matching [`Action::Arm`].
    pub fn on_timer(&mut self, now: SimTime, seq: u64) -> Option<Respond> {
        let p = self.pending.remove(&seq)?;
        match p.kind {
            PendingKind::Resolving => {
                self.inflight = self.inflight.saturating_sub(1);
                self.obs.on_upstream_latency(self.cfg.upstream_rtt.as_nanos());
                match self.zone.lookup(&p.name, p.qtype) {
                    ZoneAnswer::Records(records) => {
                        if !records.is_empty() {
                            let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
                            self.cache.insert_positive(now, &p.name, p.qtype, records.clone(), ttl);
                        }
                        // NODATA (name exists, wrong type) still counts as
                        // a positive outcome; it is just empty.
                        let resp = p.query.answer(records, DnsRcode::NoError);
                        Some(self.respond_inner(now, p.client, p.dport, resp, ResponseKind::Answer, p.truth))
                    }
                    ZoneAnswer::NxDomain => {
                        let neg_ttl = self.zone.neg_ttl;
                        self.cache.insert_negative(now, &p.name, neg_ttl);
                        let resp = p.query.answer(Vec::new(), DnsRcode::NxDomain);
                        Some(self.respond_inner(now, p.client, p.dport, resp, ResponseKind::Negative, p.truth))
                    }
                }
            }
            PendingKind::Starved { stale } => {
                self.obs.on_upstream_timeout();
                match stale {
                    Some(records) => {
                        // RFC 8767: a recently expired answer beats an error.
                        let resp = p.query.answer(records, DnsRcode::NoError);
                        Some(self.respond_inner(now, p.client, p.dport, resp, ResponseKind::Stale, p.truth))
                    }
                    None => {
                        self.obs.on_giveup();
                        self.giveups.push(ResolverGiveUp {
                            at: now,
                            client: p.client,
                            name: p.name,
                        });
                        let resp = p.query.answer(Vec::new(), DnsRcode::ServFail);
                        Some(self.respond_inner(now, p.client, p.dport, resp, ResponseKind::ServFail, p.truth))
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn upstream(
        &mut self,
        now: SimTime,
        client: Ipv4Addr,
        dport: u16,
        query: DnsMessage,
        name: String,
        qtype: DnsType,
        truth: GroundTruth,
        stale: Option<Vec<DnsRecord>>,
    ) -> Vec<Action> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (kind, at) = if self.inflight < self.cfg.upstream_concurrency {
            self.inflight += 1;
            self.obs.on_upstream_query();
            (PendingKind::Resolving, now + self.cfg.upstream_rtt)
        } else {
            // No slot: hold the query until the deadline, then fall back.
            (PendingKind::Starved { stale }, now + self.cfg.upstream_timeout)
        };
        self.pending.insert(seq, Pending { client, dport, query, name, qtype, truth, kind });
        vec![Action::Arm { at, seq }]
    }

    fn respond(
        &mut self,
        at: SimTime,
        to: Ipv4Addr,
        dport: u16,
        msg: DnsMessage,
        kind: ResponseKind,
        truth: GroundTruth,
    ) -> Action {
        Action::Respond(self.respond_inner(at, to, dport, msg, kind, truth))
    }

    fn respond_inner(
        &mut self,
        at: SimTime,
        to: Ipv4Addr,
        dport: u16,
        msg: DnsMessage,
        kind: ResponseKind,
        truth: GroundTruth,
    ) -> Respond {
        self.obs.on_response(kind, msg.wire_len() as u64);
        self.obs.set_cache_entries(self.cache.len() as i64);
        Respond { at, to, dport, msg, kind, truth }
    }

    fn window_mut(&mut self, now: SimTime) -> &mut WindowStat {
        self.windows.entry(now.as_nanos() / 1_000_000_000).or_default()
    }

    /// Drain the give-ups recorded since the last call.
    pub fn take_giveups(&mut self) -> Vec<ResolverGiveUp> {
        std::mem::take(&mut self.giveups)
    }

    /// Per-second query/hit tallies keyed by sim-second.
    pub fn windows(&self) -> &BTreeMap<u64, WindowStat> {
        &self.windows
    }

    /// The resolver's metric bundle.
    pub fn obs(&self) -> &RsvObs {
        &self.obs
    }

    /// Mutable access to the metric bundle (for merging sinks).
    pub fn obs_mut(&mut self) -> &mut RsvObs {
        &mut self.obs
    }

    /// The configuration this resolver runs with.
    pub fn config(&self) -> &ResolverConfig {
        &self.cfg
    }

    /// Lookups currently awaiting their upstream deadline.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_wire::DnsRecordData;

    fn truth() -> GroundTruth {
        GroundTruth { flow_id: 7, app_class: 1, attack: None }
    }

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 1, 10)
    }

    fn query_bytes(id: u16, name: &str, qtype: DnsType) -> Vec<u8> {
        let mut buf = Vec::new();
        DnsMessage::query(id, name, qtype).emit(&mut buf).expect("valid query");
        buf
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Walk a single query through miss → upstream → answer and return the
    /// response.
    fn resolve_once(svc: &mut ResolverService, now: SimTime, name: &str) -> Respond {
        let acts = svc.handle_packet(now, client(), 5353, &query_bytes(1, name, DnsType::A), truth());
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Arm { at, seq } => svc.on_timer(*at, *seq).expect("pending resolves"),
            Action::Respond(_) => panic!("expected an upstream trip"),
        }
    }

    #[test]
    fn miss_resolves_then_hits_from_cache() {
        let mut svc = ResolverService::campus_default();
        let r = resolve_once(&mut svc, at_ms(0), "svc0.example0.com");
        assert_eq!(r.kind, ResponseKind::Answer);
        assert_eq!(r.msg.answers.len(), 1);
        assert_eq!(svc.obs().cache_misses(), 1);
        // Second query inside the TTL is served from cache.
        let acts =
            svc.handle_packet(at_ms(100), client(), 5353, &query_bytes(2, "svc0.example0.com", DnsType::A), truth());
        match &acts[0] {
            Action::Respond(r) => {
                assert_eq!(r.kind, ResponseKind::Answer);
                assert_eq!(r.at, at_ms(100) + svc.config().proc_delay);
            }
            Action::Arm { .. } => panic!("expected a cache hit"),
        }
        assert_eq!(svc.obs().cache_hits(), 1);
    }

    #[test]
    fn nxdomain_is_cached_negatively() {
        let mut svc = ResolverService::campus_default();
        let r = resolve_once(&mut svc, at_ms(0), "junk123.example0.com");
        assert_eq!(r.kind, ResponseKind::Negative);
        assert_eq!(r.msg.flags.rcode, DnsRcode::NxDomain);
        // Refetch within the negative TTL hits the negative cache.
        let acts = svc.handle_packet(
            at_ms(100),
            client(),
            5353,
            &query_bytes(2, "junk123.example0.com", DnsType::A),
            truth(),
        );
        match &acts[0] {
            Action::Respond(r) => assert_eq!(r.kind, ResponseKind::Negative),
            Action::Arm { .. } => panic!("expected a negative cache hit"),
        }
        assert_eq!(svc.obs().cache_negative_hits(), 1);
    }

    #[test]
    fn malformed_bytes_get_a_typed_formerr_never_a_panic() {
        let mut svc = ResolverService::campus_default();
        // Claims one question but carries no body.
        let mut bad = vec![0u8; 12];
        bad[0] = 0xde;
        bad[1] = 0xad;
        bad[5] = 1;
        let acts = svc.handle_packet(at_ms(0), client(), 5353, &bad, truth());
        match &acts[0] {
            Action::Respond(r) => {
                assert_eq!(r.kind, ResponseKind::FormErr);
                assert_eq!(r.msg.id, 0xdead, "id echoed from the broken query");
                assert_eq!(r.msg.flags.rcode, DnsRcode::FormErr);
            }
            Action::Arm { .. } => panic!("garbage must not reach the upstream"),
        }
    }

    #[test]
    fn short_datagrams_and_responses_are_ignored() {
        let mut svc = ResolverService::campus_default();
        assert!(svc.handle_packet(at_ms(0), client(), 5353, &[0u8; 5], truth()).is_empty());
        // A response (QR bit set) aimed at the server port: reflection bait.
        let mut resp = query_bytes(9, "svc0.example0.com", DnsType::A);
        resp[2] |= 0x80;
        assert!(svc.handle_packet(at_ms(0), client(), 5353, &resp, truth()).is_empty());
        assert_eq!(svc.obs().ignored(), 2);
    }

    #[test]
    fn rrl_drops_over_budget_clients_silently() {
        let mut svc = ResolverService::campus_default();
        let burst = svc.config().rrl_burst;
        let mut dropped = 0;
        for i in 0..(burst + 10) {
            let acts = svc.handle_packet(
                at_ms(0),
                client(),
                5353,
                &query_bytes(i as u16, "svc0.example0.com", DnsType::A),
                truth(),
            );
            if acts.is_empty() {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 10);
        assert_eq!(svc.obs().rrl_dropped(), 10);
    }

    #[test]
    fn saturated_upstream_serves_stale_when_available() {
        // Zero concurrency models a permanently saturated upstream.
        let cfg = ResolverConfig { upstream_concurrency: 0, ..ResolverConfig::default() };
        let mut svc = ResolverService::new(cfg, ZoneDb::campus_default());
        // Seed a cache entry by hand, already expired but within the
        // stale window at query time.
        let rec = DnsRecord {
            name: "svc0.example0.com".into(),
            ttl: 2,
            data: DnsRecordData::A(Ipv4Addr::new(203, 0, 113, 1)),
        };
        svc.cache.insert_positive(at_ms(0), "svc0.example0.com", DnsType::A, vec![rec], 2);
        let t = at_ms(5_000); // TTL (2 s) expired, stale window (30 s) open
        let acts =
            svc.handle_packet(t, client(), 5353, &query_bytes(1, "svc0.example0.com", DnsType::A), truth());
        let r = match &acts[0] {
            Action::Arm { at, seq } => {
                assert_eq!(*at, t + svc.config().upstream_timeout);
                svc.on_timer(*at, *seq).expect("starved lookup resolves")
            }
            Action::Respond(_) => panic!("saturated upstream cannot answer immediately"),
        };
        assert_eq!(r.kind, ResponseKind::Stale);
        assert_eq!(r.msg.answers.len(), 1);
        assert_eq!(svc.obs().upstream_timeouts(), 1);
        assert!(svc.take_giveups().is_empty(), "stale service is not a give-up");
    }

    #[test]
    fn saturated_upstream_without_stale_gives_up_with_servfail() {
        let cfg = ResolverConfig { upstream_concurrency: 0, ..ResolverConfig::default() };
        let mut svc = ResolverService::new(cfg, ZoneDb::campus_default());
        let acts =
            svc.handle_packet(at_ms(0), client(), 5353, &query_bytes(1, "x9z.torture.net", DnsType::A), truth());
        let r = match &acts[0] {
            Action::Arm { at, seq } => svc.on_timer(*at, *seq).expect("resolves"),
            Action::Respond(_) => panic!("expected starvation"),
        };
        assert_eq!(r.kind, ResponseKind::ServFail);
        assert_eq!(r.msg.flags.rcode, DnsRcode::ServFail);
        let giveups = svc.take_giveups();
        assert_eq!(giveups.len(), 1);
        assert_eq!(giveups[0].name, "x9z.torture.net");
        assert_eq!(giveups[0].client, client());
        assert_eq!(svc.obs().giveups(), 1);
    }

    #[test]
    fn upstream_concurrency_is_a_hard_cap() {
        let mut svc = ResolverService::campus_default();
        let cap = svc.config().upstream_concurrency;
        // Distinct clients so RRL never interferes; distinct junk names so
        // nothing caches.
        let mut starved = 0;
        for i in 0..(cap + 3) {
            let c = Ipv4Addr::new(10, 0, 2, i as u8);
            let acts =
                svc.handle_packet(at_ms(0), c, 5353, &query_bytes(i as u16, &format!("j{i}.nowhere.org"), DnsType::A), truth());
            match &acts[0] {
                Action::Arm { at, .. } => {
                    if *at == at_ms(0) + svc.config().upstream_timeout {
                        starved += 1;
                    }
                }
                Action::Respond(_) => panic!("junk names cannot hit cache"),
            }
        }
        assert_eq!(starved, 3);
        assert_eq!(svc.obs().upstream_queries(), cap as u64);
    }

    #[test]
    fn windows_track_hit_rate_per_second() {
        let mut svc = ResolverService::campus_default();
        let _ = resolve_once(&mut svc, at_ms(0), "svc0.example0.com");
        let _ = svc.handle_packet(
            at_ms(500),
            client(),
            5353,
            &query_bytes(2, "svc0.example0.com", DnsType::A),
            truth(),
        );
        let w0 = svc.windows()[&0];
        assert_eq!(w0.queries, 2);
        assert_eq!(w0.cache_hits, 1);
    }
}
