//! The resolver cache: positive answers keyed by `(name, qtype)` and
//! negative (NXDOMAIN) entries keyed by name, both expiring on sim-time
//! TTLs (RFC 2308 for the negative side).
//!
//! Entries are retained for a grace window past their TTL so the service
//! can serve stale data when the upstream times out (RFC 8767); a lookup
//! distinguishes fresh, stale and absent so that policy stays in the
//! service, not here. Both maps are bounded: at capacity the entry with
//! the earliest expiry is evicted, which under a random-subdomain flood
//! makes the negative cache churn instead of grow — the cache-pollution
//! half of the water-torture story.

use campuslab_netsim::{SimDuration, SimTime};
use campuslab_wire::{DnsRecord, DnsType};
use std::collections::BTreeMap;

/// Positive-cache key: owner name plus the numeric query type.
type Key = (String, u16);

#[derive(Debug, Clone)]
struct PosEntry {
    records: Vec<DnsRecord>,
    expires_at: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct NegEntry {
    expires_at: SimTime,
}

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// A positive answer within its TTL.
    Fresh(Vec<DnsRecord>),
    /// A positive answer past its TTL but inside the stale window; the
    /// service may serve it only after the upstream refresh times out.
    Stale(Vec<DnsRecord>),
    /// A fresh RFC 2308 negative entry: the name is known not to exist.
    Negative,
    /// Nothing usable.
    Miss,
}

/// Bounded positive + negative cache with sim-time TTLs.
#[derive(Debug, Clone)]
pub struct DnsCache {
    pos: BTreeMap<Key, PosEntry>,
    neg: BTreeMap<String, NegEntry>,
    capacity: usize,
    neg_capacity: usize,
    stale_window: SimDuration,
}

impl DnsCache {
    /// An empty cache holding at most `capacity` positive and
    /// `neg_capacity` negative entries, with stale retention `stale_window`.
    pub fn new(capacity: usize, neg_capacity: usize, stale_window: SimDuration) -> Self {
        DnsCache {
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            capacity: capacity.max(1),
            neg_capacity: neg_capacity.max(1),
            stale_window,
        }
    }

    /// Look up `name`/`qtype` at `now`, removing entries that are past
    /// even their stale window.
    pub fn lookup(&mut self, now: SimTime, name: &str, qtype: DnsType) -> CacheLookup {
        let key = (name.to_string(), u16::from(qtype));
        if let Some(e) = self.pos.get(&key) {
            if now < e.expires_at {
                return CacheLookup::Fresh(e.records.clone());
            }
            if now < e.expires_at + self.stale_window {
                return CacheLookup::Stale(e.records.clone());
            }
            self.pos.remove(&key);
        }
        if let Some(e) = self.neg.get(name) {
            if now < e.expires_at {
                return CacheLookup::Negative;
            }
            // Stale negatives are not served: a wrongly-lingering NXDOMAIN
            // is worse than a refetch.
            self.neg.remove(name);
        }
        CacheLookup::Miss
    }

    /// Store a positive answer with `ttl_secs` freshness.
    pub fn insert_positive(
        &mut self,
        now: SimTime,
        name: &str,
        qtype: DnsType,
        records: Vec<DnsRecord>,
        ttl_secs: u32,
    ) {
        if self.pos.len() >= self.capacity {
            Self::evict_earliest(&mut self.pos);
        }
        self.pos.insert(
            (name.to_string(), u16::from(qtype)),
            PosEntry { records, expires_at: now + SimDuration::from_secs(u64::from(ttl_secs)) },
        );
    }

    /// Store an RFC 2308 negative entry with `ttl_secs` freshness.
    pub fn insert_negative(&mut self, now: SimTime, name: &str, ttl_secs: u32) {
        if self.neg.len() >= self.neg_capacity {
            let earliest = self
                .neg
                .iter()
                .min_by_key(|(_, e)| e.expires_at)
                .map(|(k, _)| k.clone());
            if let Some(k) = earliest {
                self.neg.remove(&k);
            }
        }
        self.neg.insert(
            name.to_string(),
            NegEntry { expires_at: now + SimDuration::from_secs(u64::from(ttl_secs)) },
        );
    }

    fn evict_earliest(map: &mut BTreeMap<Key, PosEntry>) {
        let earliest = map.iter().min_by_key(|(_, e)| e.expires_at).map(|(k, _)| k.clone());
        if let Some(k) = earliest {
            map.remove(&k);
        }
    }

    /// Positive entries currently held.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when no positive entry is held.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Negative entries currently held.
    pub fn negative_len(&self) -> usize {
        self.neg.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_wire::DnsRecordData;
    use std::net::Ipv4Addr;

    fn rec(name: &str, ttl: u32) -> DnsRecord {
        DnsRecord {
            name: name.to_string(),
            ttl,
            data: DnsRecordData::A(Ipv4Addr::new(192, 0, 2, 1)),
        }
    }

    fn cache() -> DnsCache {
        DnsCache::new(4, 4, SimDuration::from_secs(30))
    }

    #[test]
    fn fresh_then_stale_then_gone() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        c.insert_positive(t0, "a.example.com", DnsType::A, vec![rec("a.example.com", 2)], 2);
        assert!(matches!(c.lookup(t0, "a.example.com", DnsType::A), CacheLookup::Fresh(_)));
        let t_stale = t0 + SimDuration::from_secs(3);
        assert!(matches!(c.lookup(t_stale, "a.example.com", DnsType::A), CacheLookup::Stale(_)));
        let t_gone = t0 + SimDuration::from_secs(2 + 31);
        assert_eq!(c.lookup(t_gone, "a.example.com", DnsType::A), CacheLookup::Miss);
        assert!(c.is_empty());
    }

    #[test]
    fn qtype_is_part_of_the_key() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        c.insert_positive(t0, "a.example.com", DnsType::A, vec![rec("a.example.com", 5)], 5);
        assert_eq!(c.lookup(t0, "a.example.com", DnsType::Txt), CacheLookup::Miss);
    }

    #[test]
    fn negative_entries_expire_without_a_stale_window() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        c.insert_negative(t0, "nope.example.com", 1);
        assert_eq!(c.lookup(t0, "nope.example.com", DnsType::A), CacheLookup::Negative);
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(c.lookup(t1, "nope.example.com", DnsType::A), CacheLookup::Miss);
        assert_eq!(c.negative_len(), 0);
    }

    #[test]
    fn positive_eviction_removes_earliest_expiry() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        for (i, ttl) in [10u32, 2, 8, 6].iter().enumerate() {
            let name = format!("svc{i}.example.com");
            c.insert_positive(t0, &name, DnsType::A, vec![rec(&name, *ttl)], *ttl);
        }
        // Full at 4; the 5th insert evicts the ttl-2 entry.
        c.insert_positive(t0, "new.example.com", DnsType::A, vec![rec("new.example.com", 9)], 9);
        assert_eq!(c.len(), 4);
        assert_eq!(c.lookup(t0, "svc1.example.com", DnsType::A), CacheLookup::Miss);
        assert!(matches!(c.lookup(t0, "svc0.example.com", DnsType::A), CacheLookup::Fresh(_)));
    }

    #[test]
    fn negative_cache_churns_instead_of_growing() {
        let mut c = cache();
        let t0 = SimTime::ZERO;
        for i in 0..100 {
            c.insert_negative(t0, &format!("x{i}.torture.example.net"), 1);
        }
        assert_eq!(c.negative_len(), 4);
    }
}
