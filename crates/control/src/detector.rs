//! A streaming window detector: the control-plane/cloud tier of the fast
//! loop. Buffers one tumbling window of tap records, classifies each
//! per-destination cell when the window closes, and emits detections.

use campuslab_capture::PacketRecord;
use campuslab_features::{aggregate, LabelMode, WindowConfig};
use campuslab_ml::Classifier;
use std::net::IpAddr;

/// One detection: a destination flagged in a closed window.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    pub dst: IpAddr,
    /// Nanosecond timestamp of the end of the window that triggered.
    pub window_end_ns: u64,
    pub class: usize,
    pub confidence: f64,
    /// Packets in the triggering cell.
    pub packets: usize,
}

/// Streaming wrapper over the window aggregator + a trained model.
pub struct StreamingWindowDetector {
    model: Box<dyn Classifier + Send>,
    cfg: WindowConfig,
    /// Minimum confidence to emit a detection.
    gate: f64,
    current_window: Option<u64>,
    buffer: Vec<PacketRecord>,
    /// Total records observed.
    pub observed: u64,
}

impl StreamingWindowDetector {
    /// Create a detector around a trained window-feature model.
    pub fn new(model: Box<dyn Classifier + Send>, cfg: WindowConfig, gate: f64) -> Self {
        StreamingWindowDetector {
            model,
            cfg,
            gate,
            current_window: None,
            buffer: Vec::new(),
            observed: 0,
        }
    }

    /// Feed one record (records must arrive in time order, as a tap
    /// produces them). Returns detections for any window that just closed.
    pub fn observe(&mut self, rec: &PacketRecord) -> Vec<Detection> {
        self.observed += 1;
        let w = rec.ts_ns / self.cfg.window_ns;
        let mut out = Vec::new();
        match self.current_window {
            Some(cur) if w != cur => {
                out = self.close_window(cur);
                self.current_window = Some(w);
            }
            None => self.current_window = Some(w),
            _ => {}
        }
        self.buffer.push(rec.clone());
        out
    }

    /// Force-close the open window (end of run).
    pub fn flush(&mut self) -> Vec<Detection> {
        match self.current_window.take() {
            Some(cur) => self.close_window(cur),
            None => Vec::new(),
        }
    }

    fn close_window(&mut self, window: u64) -> Vec<Detection> {
        let records = std::mem::take(&mut self.buffer);
        let cells = aggregate(&records, self.cfg, LabelMode::BinaryAttack);
        let window_end_ns = (window + 1) * self.cfg.window_ns;
        cells
            .into_iter()
            .filter_map(|cell| {
                let (class, confidence) = self.model.predict_with_confidence(&cell.features);
                (class != 0 && confidence >= self.gate).then_some(Detection {
                    dst: cell.dst,
                    window_end_ns,
                    class,
                    confidence,
                    packets: cell.packets,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};

    /// A "model" that flags any cell with >= 10 packets as class 1 with
    /// confidence scaling in the count.
    struct CountModel;
    impl Classifier for CountModel {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
            let p = (row[0] / 20.0).min(1.0);
            if row[0] >= 10.0 {
                vec![1.0 - p, p]
            } else {
                vec![1.0, 0.0]
            }
        }
    }

    fn rec(ts: u64, src_last: u8, dst: [u8; 4], attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from([203, 0, 113, src_last]),
            dst: IpAddr::from(dst),
            protocol: 17,
            src_port: 53,
            dst_port: 40_000,
            wire_len: 1_200,
            ttl: 60,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    fn detector(gate: f64) -> StreamingWindowDetector {
        StreamingWindowDetector::new(
            Box::new(CountModel),
            WindowConfig { window_ns: 1_000_000_000, min_packets: 3 },
            gate,
        )
    }

    #[test]
    fn detects_after_window_closes() {
        let mut d = detector(0.8);
        let victim = [10, 1, 1, 10];
        // 20 packets in window 0: nothing emitted until window 1 begins.
        for i in 0..20u64 {
            let out = d.observe(&rec(i * 1_000, (i % 8) as u8, victim, 1));
            assert!(out.is_empty());
        }
        let detections = d.observe(&rec(1_000_000_500, 1, victim, 1));
        assert_eq!(detections.len(), 1);
        let det = &detections[0];
        assert_eq!(det.dst, IpAddr::from(victim));
        assert_eq!(det.window_end_ns, 1_000_000_000);
        assert!(det.confidence >= 0.8);
        assert_eq!(det.packets, 20);
    }

    #[test]
    fn quiet_windows_emit_nothing() {
        let mut d = detector(0.8);
        for i in 0..5u64 {
            d.observe(&rec(i * 1_000, 1, [10, 1, 1, 10], 0));
        }
        assert!(d.flush().is_empty()); // 5 packets < 10 threshold
    }

    #[test]
    fn gate_suppresses_low_confidence() {
        let strict = &mut detector(0.99);
        for i in 0..12u64 {
            strict.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        // 12 packets -> confidence 0.6 < 0.99.
        assert!(strict.flush().is_empty());
        let loose = &mut detector(0.5);
        for i in 0..12u64 {
            loose.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        assert_eq!(loose.flush().len(), 1);
    }

    #[test]
    fn flush_closes_the_tail_window() {
        let mut d = detector(0.5);
        for i in 0..15u64 {
            d.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        let out = d.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(d.observed, 15);
        // After flush, the detector is reusable.
        assert!(d.flush().is_empty());
    }
}
