//! A streaming window detector: the control-plane/cloud tier of the fast
//! loop. Buffers one tumbling window of tap records, classifies each
//! per-destination cell when the window closes, and emits detections.

use crate::observe::DetectorObs;
use campuslab_capture::PacketRecord;
use campuslab_features::{aggregate, LabelMode, WindowConfig};
use campuslab_ml::Classifier;
use campuslab_obs::ObsSink;
use std::net::IpAddr;

/// One detection: a destination flagged in a closed window.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Detection {
    pub dst: IpAddr,
    /// Nanosecond timestamp of the end of the window that triggered.
    pub window_end_ns: u64,
    pub class: usize,
    pub confidence: f64,
    /// Packets in the triggering cell.
    pub packets: usize,
}

/// Streaming wrapper over the window aggregator + a trained model.
///
/// Telemetry gaps (tap blackouts, sampling outages) are first-class:
/// announce them with [`announce_gap`](Self::announce_gap) and each closed
/// window is handled by its observed coverage — skipped when mostly blind,
/// count-features de-skewed when partially blind — instead of silently
/// feeding the model rates computed over a window it only half saw.
pub struct StreamingWindowDetector {
    model: Box<dyn Classifier + Send>,
    cfg: WindowConfig,
    /// Minimum confidence to emit a detection.
    gate: f64,
    current_window: Option<u64>,
    buffer: Vec<PacketRecord>,
    /// Announced telemetry gaps, `[from_ns, until_ns)`, assumed disjoint.
    gaps: Vec<(u64, u64)>,
    /// Below this observed fraction a window is skipped outright rather
    /// than extrapolated from too little signal.
    min_coverage: f64,
    /// Total records observed.
    pub observed: u64,
    /// Windows skipped because telemetry coverage fell below the policy.
    pub gap_windows_skipped: u64,
    /// Observatory sink: window/coverage/detection telemetry.
    pub obs: DetectorObs,
}

/// Positions of the count-rate features in the window feature vector
/// (`campuslab_features::WINDOW_FEATURES`): the ones skewed by partial
/// coverage and de-skewed by `1/coverage`.
const PKT_COUNT_FEATURE: usize = 0;
const BYTE_COUNT_FEATURE: usize = 1;

impl StreamingWindowDetector {
    /// Create a detector around a trained window-feature model. Gap policy
    /// defaults to skipping windows with under 50% telemetry coverage.
    pub fn new(model: Box<dyn Classifier + Send>, cfg: WindowConfig, gate: f64) -> Self {
        StreamingWindowDetector {
            model,
            cfg,
            gate,
            current_window: None,
            buffer: Vec::new(),
            gaps: Vec::new(),
            min_coverage: 0.5,
            observed: 0,
            gap_windows_skipped: 0,
            obs: DetectorObs::new(),
        }
    }

    /// Declare a telemetry gap `[from_ns, until_ns)`: the tap was blind and
    /// records from that span never arrived. Windows overlapping the gap
    /// are judged on what was actually observable.
    pub fn announce_gap(&mut self, from_ns: u64, until_ns: u64) {
        if until_ns > from_ns {
            self.gaps.push((from_ns, until_ns));
        }
    }

    /// Change the minimum-coverage policy (clamped to `[0, 1]`).
    pub fn set_min_coverage(&mut self, min_coverage: f64) {
        self.min_coverage = min_coverage.clamp(0.0, 1.0);
    }

    /// Fraction of `window` the tap could actually see.
    fn window_coverage(&self, window: u64) -> f64 {
        if self.gaps.is_empty() {
            return 1.0;
        }
        let start = window * self.cfg.window_ns;
        let end = start + self.cfg.window_ns;
        let blind: u64 = self
            .gaps
            .iter()
            .map(|&(f, u)| u.min(end).saturating_sub(f.max(start)))
            .sum();
        1.0 - blind.min(self.cfg.window_ns) as f64 / self.cfg.window_ns as f64
    }

    /// Feed one record (records must arrive in time order, as a tap
    /// produces them). Returns detections for any window that just closed.
    pub fn observe(&mut self, rec: &PacketRecord) -> Vec<Detection> {
        self.observed += 1;
        self.obs.on_observed();
        let w = rec.ts_ns / self.cfg.window_ns;
        let mut out = Vec::new();
        match self.current_window {
            Some(cur) if w != cur => {
                out = self.close_window(cur);
                self.current_window = Some(w);
            }
            None => self.current_window = Some(w),
            _ => {}
        }
        self.buffer.push(rec.clone());
        out
    }

    /// Force-close the open window (end of run).
    pub fn flush(&mut self) -> Vec<Detection> {
        match self.current_window.take() {
            Some(cur) => self.close_window(cur),
            None => Vec::new(),
        }
    }

    fn close_window(&mut self, window: u64) -> Vec<Detection> {
        let records = std::mem::take(&mut self.buffer);
        let coverage = self.window_coverage(window);
        if coverage < self.min_coverage {
            // Mostly blind: extrapolating a rate from a sliver of signal
            // produces confident nonsense, so the window is explicitly
            // skipped and counted, not classified.
            self.gap_windows_skipped += 1;
            self.obs.on_window_closed(coverage, true, 0);
            return Vec::new();
        }
        let cells = aggregate(&records, self.cfg, LabelMode::BinaryAttack);
        let window_end_ns = (window + 1) * self.cfg.window_ns;
        let out: Vec<Detection> = cells
            .into_iter()
            .filter_map(|cell| {
                let mut features = cell.features;
                if coverage < 1.0 {
                    // De-skew count features to full-window equivalents so
                    // a half-seen flood still looks like a flood.
                    features[PKT_COUNT_FEATURE] /= coverage;
                    features[BYTE_COUNT_FEATURE] /= coverage;
                }
                let (class, confidence) = self.model.predict_with_confidence(&features);
                (class != 0 && confidence >= self.gate).then_some(Detection {
                    dst: cell.dst,
                    window_end_ns,
                    class,
                    confidence,
                    packets: cell.packets,
                })
            })
            .collect();
        self.obs.on_window_closed(coverage, false, out.len() as u64);
        out
    }

    /// Freeze the detector's dynamic state for a checkpoint. The trained
    /// model is deliberately NOT captured: it is rebuilt deterministically
    /// by whoever constructs the detector (same seed, same training data),
    /// which keeps trait objects out of the checkpoint format.
    pub fn freeze(&self) -> FrozenDetector {
        FrozenDetector {
            cfg: self.cfg,
            gate: self.gate,
            current_window: self.current_window,
            buffer: self.buffer.clone(),
            gaps: self.gaps.clone(),
            min_coverage: self.min_coverage,
            observed: self.observed,
            gap_windows_skipped: self.gap_windows_skipped,
            sink: self.obs.sink.clone(),
        }
    }

    /// Apply a frozen image onto a freshly constructed detector (same
    /// model, same construction path). Overwrites every dynamic field.
    pub fn thaw_state(&mut self, frozen: FrozenDetector) {
        self.cfg = frozen.cfg;
        self.gate = frozen.gate;
        self.current_window = frozen.current_window;
        self.buffer = frozen.buffer;
        self.gaps = frozen.gaps;
        self.min_coverage = frozen.min_coverage;
        self.observed = frozen.observed;
        self.gap_windows_skipped = frozen.gap_windows_skipped;
        self.obs = DetectorObs::new();
        self.obs.sink = frozen.sink;
    }
}

/// A [`StreamingWindowDetector`]'s checkpointable image: everything but
/// the model (rebuilt by the constructor) and the metric schema (rebuilt
/// by [`DetectorObs::new`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenDetector {
    pub cfg: WindowConfig,
    pub gate: f64,
    pub current_window: Option<u64>,
    pub buffer: Vec<PacketRecord>,
    pub gaps: Vec<(u64, u64)>,
    pub min_coverage: f64,
    pub observed: u64,
    pub gap_windows_skipped: u64,
    pub sink: ObsSink,
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};

    /// A "model" that flags any cell with >= 10 packets as class 1 with
    /// confidence scaling in the count.
    struct CountModel;
    impl Classifier for CountModel {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
            let p = (row[0] / 20.0).min(1.0);
            if row[0] >= 10.0 {
                vec![1.0 - p, p]
            } else {
                vec![1.0, 0.0]
            }
        }
    }

    fn rec(ts: u64, src_last: u8, dst: [u8; 4], attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from([203, 0, 113, src_last]),
            dst: IpAddr::from(dst),
            protocol: 17,
            src_port: 53,
            dst_port: 40_000,
            wire_len: 1_200,
            ttl: 60,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    fn detector(gate: f64) -> StreamingWindowDetector {
        StreamingWindowDetector::new(
            Box::new(CountModel),
            WindowConfig { window_ns: 1_000_000_000, min_packets: 3 },
            gate,
        )
    }

    #[test]
    fn detects_after_window_closes() {
        let mut d = detector(0.8);
        let victim = [10, 1, 1, 10];
        // 20 packets in window 0: nothing emitted until window 1 begins.
        for i in 0..20u64 {
            let out = d.observe(&rec(i * 1_000, (i % 8) as u8, victim, 1));
            assert!(out.is_empty());
        }
        let detections = d.observe(&rec(1_000_000_500, 1, victim, 1));
        assert_eq!(detections.len(), 1);
        let det = &detections[0];
        assert_eq!(det.dst, IpAddr::from(victim));
        assert_eq!(det.window_end_ns, 1_000_000_000);
        assert!(det.confidence >= 0.8);
        assert_eq!(det.packets, 20);
    }

    #[test]
    fn quiet_windows_emit_nothing() {
        let mut d = detector(0.8);
        for i in 0..5u64 {
            d.observe(&rec(i * 1_000, 1, [10, 1, 1, 10], 0));
        }
        assert!(d.flush().is_empty()); // 5 packets < 10 threshold
    }

    #[test]
    fn gate_suppresses_low_confidence() {
        let strict = &mut detector(0.99);
        for i in 0..12u64 {
            strict.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        // 12 packets -> confidence 0.6 < 0.99.
        assert!(strict.flush().is_empty());
        let loose = &mut detector(0.5);
        for i in 0..12u64 {
            loose.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        assert_eq!(loose.flush().len(), 1);
    }

    #[test]
    fn partial_coverage_deskews_count_features() {
        // The tap was blind for the second half of window 0. Only 8 packets
        // were seen — below the model's 10-packet bar — but scaled to
        // full-window equivalents (16) the half-seen flood still flags.
        let mut d = detector(0.5);
        d.announce_gap(500_000_000, 1_000_000_000);
        for i in 0..8u64 {
            d.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        let out = d.flush();
        assert_eq!(out.len(), 1, "de-skewed flood not detected");
        // Control: without the gap announcement the same records are
        // under the bar.
        let mut blind = detector(0.5);
        for i in 0..8u64 {
            blind.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        assert!(blind.flush().is_empty());
    }

    #[test]
    fn mostly_blind_windows_are_skipped_not_classified() {
        let mut d = detector(0.5);
        // 80% of window 0 is blind: below the 50% coverage floor.
        d.announce_gap(100_000_000, 900_000_000);
        for i in 0..20u64 {
            d.observe(&rec(i * 1_000, (i % 8) as u8, [10, 1, 1, 10], 1));
        }
        assert!(d.flush().is_empty());
        assert_eq!(d.gap_windows_skipped, 1);
        // A stricter policy can be relaxed.
        let mut lax = detector(0.5);
        lax.set_min_coverage(0.1);
        lax.announce_gap(100_000_000, 900_000_000);
        for i in 0..20u64 {
            lax.observe(&rec(i * 1_000, (i % 8) as u8, [10, 1, 1, 10], 1));
        }
        assert_eq!(lax.flush().len(), 1);
        assert_eq!(lax.gap_windows_skipped, 0);
    }

    #[test]
    fn gaps_outside_a_window_leave_it_untouched() {
        let mut d = detector(0.8);
        d.announce_gap(5_000_000_000, 6_000_000_000); // window 5, far away
        for i in 0..20u64 {
            d.observe(&rec(i * 1_000, (i % 8) as u8, [10, 1, 1, 10], 1));
        }
        let out = d.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packets, 20);
        assert_eq!(d.gap_windows_skipped, 0);
    }

    #[test]
    fn flush_closes_the_tail_window() {
        let mut d = detector(0.5);
        for i in 0..15u64 {
            d.observe(&rec(i * 1_000, (i % 5) as u8, [10, 1, 1, 10], 1));
        }
        let out = d.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(d.observed, 15);
        // After flush, the detector is reusable.
        assert!(d.flush().is_empty());
    }
}
