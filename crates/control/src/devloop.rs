//! The slow (offline) development loop of Figure 2: data store → black-box
//! training → XAI model extraction → compilation to a target-specific
//! program — producing a *deployable learning model* plus the evidence an
//! operator needs to trust it.

use campuslab_capture::PacketRecord;
use campuslab_dataplane::{compile_tree, CompileConfig, CompileReport, PipelineProgram};
use campuslab_features::{packet_dataset, LabelMode};
use campuslab_ml::{
    fidelity, Classifier, ConfusionMatrix, Dataset, DecisionTree, ForestConfig, GbtConfig,
    GradientBoostedTrees, Mlp, MlpConfig, Normalizer, RandomForest,
};
use campuslab_xai::{distill, DistillConfig, DistillationReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Which black box anchors the loop.
#[derive(Debug, Clone, Copy)]
pub enum TeacherKind {
    Forest(ForestConfig),
    Mlp(MlpConfig),
    /// Gradient-boosted trees (binary label modes only).
    Gbt(GbtConfig),
}

impl Default for TeacherKind {
    fn default() -> Self {
        TeacherKind::Forest(ForestConfig::default())
    }
}

/// Development-loop configuration.
#[derive(Debug, Clone)]
pub struct DevLoopConfig {
    pub label_mode: LabelMode,
    pub teacher: TeacherKind,
    pub distill: DistillConfig,
    pub compile: CompileConfig,
    /// Time-ordered train fraction.
    pub train_frac: f64,
    /// Cap majority/minority ratio on the training split (None = as-is).
    pub balance_ratio: Option<f64>,
    /// Use a shuffled (i.i.d.) split instead of the time-ordered one.
    /// Ordered splits are the honest default for deployment studies;
    /// shuffled splits suit protocol studies (e.g. cross-campus transfer)
    /// where the test tail may contain no positives at all.
    pub shuffle_split: bool,
    pub seed: u64,
}

impl Default for DevLoopConfig {
    fn default() -> Self {
        DevLoopConfig {
            label_mode: LabelMode::BinaryAttack,
            teacher: TeacherKind::default(),
            distill: DistillConfig::default(),
            compile: CompileConfig::default(),
            train_frac: 0.7,
            balance_ratio: Some(3.0),
            shuffle_split: false,
            seed: 0xDE_100,
        }
    }
}

/// Metrics for one model on the held-out test split.
#[derive(Debug, Clone, Serialize)]
pub struct ModelEval {
    pub accuracy: f64,
    pub precision_attack: f64,
    pub recall_attack: f64,
    pub f1_attack: f64,
    pub macro_f1: f64,
}

impl ModelEval {
    fn from_cm(cm: &ConfusionMatrix, positive: usize) -> Self {
        ModelEval {
            accuracy: cm.accuracy(),
            precision_attack: cm.precision(positive),
            recall_attack: cm.recall(positive),
            f1_attack: cm.f1(positive),
            macro_f1: cm.macro_f1(),
        }
    }
}

/// Everything one development-loop run produces.
pub struct DevLoopResult {
    /// The black-box teacher (kept for comparison experiments).
    pub teacher: Box<dyn Classifier + Send>,
    /// The deployable distilled tree.
    pub student: DecisionTree,
    /// The compiled switch program.
    pub program: PipelineProgram,
    pub teacher_eval: ModelEval,
    pub student_eval: ModelEval,
    /// Student/teacher agreement on the test split.
    pub fidelity: f64,
    pub distillation: DistillationReport,
    pub compile: CompileReport,
    pub feature_names: Vec<String>,
    pub train_rows: usize,
    pub test_rows: usize,
    /// Wall-clock time of the whole loop (the "slow" in slow loop).
    pub wall: std::time::Duration,
    /// The held-out test split, for downstream experiments.
    pub test: Dataset,
    /// The feature normalizer (identity mapping info for MLP teachers).
    pub normalizer: Option<Normalizer>,
}

/// Run the development loop over captured (time-ordered) packet records.
pub fn run_development_loop(records: &[PacketRecord], cfg: &DevLoopConfig) -> DevLoopResult {
    assert!(records.len() >= 20, "development loop needs data");
    let started = std::time::Instant::now();
    let data = packet_dataset(records, cfg.label_mode);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (mut train, test) = if cfg.shuffle_split {
        data.split_shuffled(cfg.train_frac, &mut rng)
    } else {
        data.split_by_order(cfg.train_frac)
    };
    if let Some(ratio) = cfg.balance_ratio {
        train = train.balance(ratio, &mut rng);
    }
    assert!(!train.is_empty() && !test.is_empty(), "degenerate split");

    // Step (i): heavyweight black-box training.
    let (teacher, normalizer): (Box<dyn Classifier + Send>, Option<Normalizer>) =
        match cfg.teacher {
            TeacherKind::Forest(fcfg) => (Box::new(RandomForest::fit(&train, fcfg)), None),
            TeacherKind::Mlp(mcfg) => {
                let norm = Normalizer::fit(&train);
                let model = Mlp::fit(&norm.transform(&train), mcfg);
                (Box::new(NormalizedMlp { norm: norm.clone(), model }), Some(norm))
            }
            TeacherKind::Gbt(gcfg) => {
                assert!(
                    matches!(cfg.label_mode, LabelMode::BinaryAttack),
                    "GBT teacher requires the binary label mode"
                );
                (Box::new(GradientBoostedTrees::fit(&train, gcfg)), None)
            }
        };

    // Step (ii): model extraction into a shallow tree.
    let (student, distillation) = distill(teacher.as_ref(), &train, cfg.distill);

    // Step (iii): compile to the switch target.
    let (program, compile) = compile_tree(
        &student,
        cfg.compile,
        format!(
            "distilled-depth{}-gate{:.2}",
            distillation.student_depth, cfg.compile.confidence_gate
        ),
    );

    let teacher_cm = ConfusionMatrix::evaluate(teacher.as_ref(), &test);
    let student_cm = ConfusionMatrix::evaluate(&student, &test);
    let fid = fidelity(teacher.as_ref(), &student, &test);
    let positive = 1.min(test.n_classes.saturating_sub(1));
    DevLoopResult {
        teacher_eval: ModelEval::from_cm(&teacher_cm, positive),
        student_eval: ModelEval::from_cm(&student_cm, positive),
        fidelity: fid,
        teacher,
        student,
        program,
        distillation,
        compile,
        feature_names: data.feature_names.clone(),
        train_rows: train.len(),
        test_rows: test.len(),
        wall: started.elapsed(),
        test,
        normalizer,
    }
}

/// An MLP plus its input normalizer, presented as one classifier.
struct NormalizedMlp {
    norm: Normalizer,
    model: Mlp,
}

impl Classifier for NormalizedMlp {
    fn n_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        self.model.predict_proba(&self.norm.transform_row(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::{Direction, TcpFlags};
    use std::net::IpAddr;

    fn rec(ts: u64, proto: u8, sport: u16, len: u32, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from([203, 0, 113, 1]),
            dst: IpAddr::from([10, 1, 1, 10]),
            protocol: proto,
            src_port: sport,
            dst_port: 40_000,
            wire_len: len,
            ttl: 60,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    /// Amplification-shaped records: attacks are big UDP from port 53.
    fn records(n: usize) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        for i in 0..n as u64 {
            out.push(rec(i * 3_000, 17, 53, 1_400 + (i % 200) as u32, 1));
            out.push(rec(i * 3_000 + 1_000, 6, 443, 200 + (i % 900) as u32, 0));
            out.push(rec(i * 3_000 + 2_000, 17, 53, 90 + (i % 40) as u32, 0));
        }
        out
    }

    #[test]
    fn full_loop_produces_accurate_deployable_model() {
        let result = run_development_loop(&records(400), &DevLoopConfig::default());
        assert!(result.teacher_eval.f1_attack > 0.95, "{:?}", result.teacher_eval);
        assert!(result.student_eval.f1_attack > 0.9, "{:?}", result.student_eval);
        assert!(result.fidelity > 0.9, "fidelity {}", result.fidelity);
        assert!(result.program.n_entries() > 0);
        assert!(result.compile.leaves_drop > 0);
        assert!(result.distillation.student_depth <= 6);
        assert!(result.train_rows > 0 && result.test_rows > 0);
    }

    #[test]
    fn gbt_teacher_also_works() {
        let cfg = DevLoopConfig {
            teacher: TeacherKind::Gbt(GbtConfig { n_rounds: 30, ..Default::default() }),
            ..Default::default()
        };
        let result = run_development_loop(&records(250), &cfg);
        assert!(result.teacher_eval.f1_attack > 0.9, "{:?}", result.teacher_eval);
        assert!(result.fidelity > 0.85, "fidelity {}", result.fidelity);
        assert!(result.program.n_entries() > 0);
    }

    #[test]
    fn mlp_teacher_also_works() {
        let cfg = DevLoopConfig {
            teacher: TeacherKind::Mlp(MlpConfig { epochs: 30, ..Default::default() }),
            ..Default::default()
        };
        let result = run_development_loop(&records(250), &cfg);
        assert!(result.teacher_eval.accuracy > 0.9, "{:?}", result.teacher_eval);
        assert!(result.normalizer.is_some());
        assert!(result.fidelity > 0.85);
    }

    #[test]
    fn student_is_deployable_where_teacher_is_not() {
        let result = run_development_loop(&records(400), &DevLoopConfig::default());
        // The whole point: the student compiles into a bounded number of
        // TCAM entries; a 40-tree forest has no compilation path at all.
        let switch = campuslab_dataplane::SwitchModel::default();
        assert!(switch.max_concurrent(&result.program) >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = run_development_loop(&records(150), &DevLoopConfig::default());
        let r2 = run_development_loop(&records(150), &DevLoopConfig::default());
        assert_eq!(r1.student_eval.accuracy, r2.student_eval.accuracy);
        assert_eq!(r1.program.n_entries(), r2.program.n_entries());
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn too_little_data_panics() {
        run_development_loop(&records(2)[..6], &DevLoopConfig::default());
    }
}
