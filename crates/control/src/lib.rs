//! # campuslab-control
//!
//! The two loops of the paper's Figure 2:
//!
//! * **Development loop (slow, offline)** — [`devloop`]: data store →
//!   black-box training → XAI model extraction → compilation to a switch
//!   program, producing a *deployable learning model* with fidelity and
//!   accuracy reports.
//! * **Control loop (fast, online)** — [`fastloop`], [`detector`],
//!   [`controller`]: the deployed program sensing/inferring/reacting per
//!   packet at the switch, the window detector at the controller or cloud
//!   tier, and the mitigation controller that closes detection into
//!   victim-scoped rule installation with placement-dependent latency
//!   (experiment E8).

//!
//! ```
//! use campuslab_control::Placement;
//!
//! // The three inference tiers of experiment E8, ordered by reaction time.
//! assert!(Placement::Switch.install_delay() < Placement::Controller.install_delay());
//! assert!(Placement::Controller.install_delay() < Placement::Cloud.install_delay());
//! ```

#![deny(rust_2018_idioms)]

pub mod fastloop;
pub mod detector;
pub mod devloop;
pub mod controller;
pub mod rollout;
pub mod driftpilot;
pub mod observe;

pub use controller::{
    BankFilter, BankHandle, FastLoopStatsSnapshot, FrozenBank, FrozenBankEntry, FrozenController,
    FrozenPending, GiveUpReason, InstallGiveUp, InstallPolicy, MitigationController,
    MitigationControllerConfig, MitigationEvent, Placement, ProgramScope,
};
pub use detector::{Detection, FrozenDetector, StreamingWindowDetector};
pub use devloop::{run_development_loop, DevLoopConfig, DevLoopResult, ModelEval, TeacherKind};
pub use driftpilot::{
    records_hash, retrain_window, DriftEpisode, DriftPilot, DriftPilotConfig, FrozenDriftPilot,
    RetrainOutcome, RetrainRecord, RetrainTrigger,
};
pub use fastloop::{DeployedFilter, FastLoopStats, ShadowMirror, ShadowWindow};
pub use observe::{ControllerObs, DetectorObs, DriftObs, PlazaObs, RolloutObs};
pub use rollout::{
    BreakerState, CircuitBreaker, CircuitBreakerPolicy, FrozenCandidate, FrozenGuard,
    ProgramRegistry, RejectReason, RolloutConfig, RolloutEvent, RolloutEventKind, RolloutGuard,
    RolloutStage, SloPolicy, SloViolation,
};
