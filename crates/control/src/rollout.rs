//! RolloutGuard: SLO-guarded promotion of compiled programs through
//! shadow → canary → full deployment, with automatic rollback to a
//! versioned known-good registry.
//!
//! The devloop hands its output to a *live* campus carrying real users;
//! that is only defensible if a bad model can never take the network
//! down. The guard is a deterministic state machine driven entirely by
//! sim events:
//!
//! * **Shadow** — the candidate is evaluated on mirrored tap traffic;
//!   verdicts are recorded, never enforced. The false-positive gate
//!   (verdicts against packet ground truth) vetoes grossly bad models
//!   before they touch a single packet.
//! * **Canary** — the candidate is enforced, scoped to the hosts behind
//!   a configurable fraction of access switches. Promotion to **Full**
//!   and every later window are gated on production SLOs: benign-drop
//!   delta over the shadow-measured baseline, capture-loss delta, and
//!   the mitigation-latency budget (fed from the controller). Install
//!   give-ups count as rollback-eligible failures.
//! * Violation streaks roll the candidate back (its entries leave the
//!   bank; the known-good program never left), healthy streaks promote;
//!   windows with too little evidence freeze both streaks, and a
//!   cooldown after any veto/rollback keeps flapping links from
//!   thrashing deployments.
//!
//! The module also hosts the [`CircuitBreaker`] the controller's
//! flaky-install retry path runs behind.

use crate::controller::{BankHandle, GiveUpReason, ProgramScope};
use crate::fastloop::ShadowMirror;
use crate::observe::RolloutObs;
use campuslab_dataplane::{FieldExtractor, PipelineProgram, ProgramVersion};
use campuslab_netsim::{
    Commands, Dir, LinkId, Outage, Packet, SimDuration, SimHooks, SimTime,
};
use campuslab_obs::{ObsSink, OpenSpan, Tracer};
use std::net::IpAddr;

/// Where a candidate currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RolloutStage {
    /// No candidate under supervision.
    Idle,
    /// Candidate evaluated on mirrored traffic only.
    Shadow,
    /// Candidate enforced on the canary host cohort.
    Canary,
    /// Candidate enforced campus-wide (still monitored until committed).
    Full,
}

impl RolloutStage {
    /// Gauge encoding (0 idle .. 3 full).
    pub fn code(self) -> i64 {
        match self {
            RolloutStage::Idle => 0,
            RolloutStage::Shadow => 1,
            RolloutStage::Canary => 2,
            RolloutStage::Full => 3,
        }
    }

    fn label(self) -> &'static str {
        match self {
            RolloutStage::Idle => "idle",
            RolloutStage::Shadow => "shadow",
            RolloutStage::Canary => "canary",
            RolloutStage::Full => "full",
        }
    }
}

/// Which SLO gate a window tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SloViolation {
    /// Shadow verdicts flagged too much benign traffic.
    FalsePositiveRate,
    /// Enforced benign-drop rate rose too far above the baseline.
    BenignDropDelta,
    /// Tap coverage fell too far below the baseline.
    CaptureLossDelta,
    /// A mitigation landed slower than the budget allows.
    LatencyBudget,
    /// The controller gave up installing a mitigation this window.
    InstallGiveUp,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// Another candidate is already under supervision.
    Busy,
    /// Inside the post-veto/rollback cooldown.
    Cooldown,
}

/// The SLO windows and hysteresis a candidate must clear.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// SLO evaluation window (sim time).
    pub window: SimDuration,
    /// Windows with fewer mirrored packets are inconclusive: they freeze
    /// the promotion and rollback streaks instead of moving them.
    pub min_packets: u64,
    /// Shadow gate: max fraction of benign mirrored traffic the
    /// candidate may flag for dropping.
    pub max_fp_rate: f64,
    /// Canary/full gate: max rise of the enforced benign-drop rate over
    /// the shadow-measured baseline.
    pub max_benign_drop_delta: f64,
    /// Canary/full gate: max rise of tap capture loss over baseline.
    pub max_capture_loss_delta: f64,
    /// Canary/full gate: mitigation latency budget (controller install
    /// samples above it violate the window).
    pub ttm_budget: SimDuration,
    /// Consecutive healthy windows required to promote (and, after
    /// reaching Full, to commit the candidate as known-good).
    pub promote_after: u32,
    /// Consecutive violated windows required to veto/roll back.
    pub rollback_after: u32,
    /// After any veto or rollback, refuse new candidates this long.
    pub cooldown: SimDuration,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            window: SimDuration::from_secs(1),
            min_packets: 20,
            max_fp_rate: 0.10,
            max_benign_drop_delta: 0.005,
            max_capture_loss_delta: 0.25,
            ttm_budget: SimDuration::from_millis(500),
            promote_after: 2,
            rollback_after: 2,
            cooldown: SimDuration::from_secs(2),
        }
    }
}

/// One guard decision, sim-time stamped.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RolloutEvent {
    pub at: SimTime,
    pub program: ProgramVersion,
    pub kind: RolloutEventKind,
}

/// What happened to a candidate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RolloutEventKind {
    /// Accepted for supervision; shadow evaluation begins.
    Submitted,
    /// Refused before supervision began.
    Rejected(RejectReason),
    /// Vetoed in shadow — never enforced.
    Vetoed(SloViolation),
    /// Promoted shadow→canary: now enforced on the canary cohort.
    EnteredCanary,
    /// Promoted canary→full: now enforced campus-wide.
    EnteredFull,
    /// Enforced candidate removed; known-good remains in force.
    RolledBack(SloViolation),
    /// Candidate committed as the new known-good version.
    Committed,
    /// First healthy window after a rollback: SLOs back at baseline.
    Recovered,
}

/// The versioned last-known-good lineage. The newest entry is what a
/// rollback leaves in force.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ProgramRegistry {
    versions: Vec<(ProgramVersion, PipelineProgram)>,
}

impl ProgramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProgramRegistry::default()
    }

    /// Commit a program as the new known-good head.
    pub fn commit(&mut self, program: PipelineProgram) -> ProgramVersion {
        let version = program.version();
        self.versions.push((version.clone(), program));
        version
    }

    /// The current known-good program, if any was ever committed.
    pub fn last_known_good(&self) -> Option<&(ProgramVersion, PipelineProgram)> {
        self.versions.last()
    }

    /// Full lineage, oldest first.
    pub fn lineage(&self) -> impl Iterator<Item = &ProgramVersion> {
        self.versions.iter().map(|(v, _)| v)
    }

    /// Number of committed versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when nothing was ever committed.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// True when a version with this fingerprint was ever committed.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.versions.iter().any(|(v, _)| v.fingerprint == fingerprint)
    }
}

/// When to stop hammering a failing install channel.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct CircuitBreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub open_after: u32,
    /// How long an open breaker blocks before allowing one probe.
    pub cooldown: SimDuration,
}

impl Default for CircuitBreakerPolicy {
    fn default() -> Self {
        CircuitBreakerPolicy { open_after: 3, cooldown: SimDuration::from_millis(250) }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BreakerState {
    /// Requests flow; failures are counted.
    Closed,
    /// Requests are refused until the cooldown elapses.
    Open,
    /// One probe request is allowed; its outcome decides the next state.
    HalfOpen,
}

/// A deterministic circuit breaker over the install channel: `Closed`
/// until `open_after` consecutive failures, then `Open` for the
/// cooldown, then `HalfOpen` letting a single probe through — probe
/// success closes it, probe failure re-opens it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CircuitBreaker {
    policy: CircuitBreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
    /// Times the breaker tripped open.
    pub opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: CircuitBreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
            opens: 0,
        }
    }

    /// Current position (advancing Open→HalfOpen if the cooldown passed).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a request go out now? Open breakers move to HalfOpen (one
    /// probe) once the cooldown elapses.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A request succeeded: close and forget the failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// A request failed: count it (Closed) or re-open (HalfOpen probe).
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::HalfOpen => self.trip(now),
            _ => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.open_after {
                    self.trip(now);
                }
            }
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.open_until = now + self.policy.cooldown;
        self.consecutive_failures = 0;
        self.opens += 1;
    }
}

/// Guard configuration.
pub struct RolloutConfig {
    /// The tapped link whose mirrored traffic feeds shadow evaluation.
    pub tap: LinkId,
    /// Field extractor matching the campus prefix.
    pub extractor: FieldExtractor,
    /// SLO windows, gates and hysteresis.
    pub slo: SloPolicy,
    /// Destinations behind the canary fraction of access switches.
    pub canary_hosts: Vec<IpAddr>,
    /// Known tap blackout windows: mirrored evaluation pauses inside
    /// them (the capture-loss gate sees the coverage dip).
    pub tap_blackouts: Vec<Outage>,
    /// Candidates to submit at scheduled sim times.
    pub submissions: Vec<(SimTime, PipelineProgram)>,
}

/// A candidate under supervision.
struct Candidate {
    program: PipelineProgram,
    version: ProgramVersion,
    mirror: ShadowMirror,
}

/// The deployment supervisor. Implements [`SimHooks`]; compose it with a
/// [`crate::controller::MitigationController`] so both see the tap (the
/// testbed's `GuardedHooks` does this and forwards the controller's
/// latency samples and give-ups here).
pub struct RolloutGuard {
    cfg: RolloutConfig,
    bank: BankHandle,
    registry: ProgramRegistry,
    known_good: ProgramVersion,
    stage: RolloutStage,
    candidate: Option<Candidate>,
    stage_span: Option<OpenSpan>,
    stage_entered: SimTime,
    cooldown_until: SimTime,
    healthy_streak: u32,
    violation_streak: u32,
    /// Bank stats at the last window boundary, for per-window deltas.
    last_bank: crate::controller::FastLoopStatsSnapshot,
    /// Baseline means accumulated over shadow windows (candidate not yet
    /// enforced): benign-drop rate and capture loss.
    baseline_benign_drop: Mean,
    baseline_capture_loss: Mean,
    /// Mitigation latency samples (ms) and give-ups fed in this window.
    window_ttm_ms: Vec<u64>,
    window_giveups: u32,
    /// After a rollback: keep evaluating windows until one confirms the
    /// SLOs are back at baseline.
    awaiting_recovery: bool,
    rolled_back_version: Option<ProgramVersion>,
    bootstrapped: bool,
    ticking: bool,
    next_submission: usize,
    /// Guard decisions, in sim order.
    pub events: Vec<RolloutEvent>,
    /// Observatory sink + per-stage spans.
    pub obs: RolloutObs,
}

/// Deterministic running mean (same accumulation order every run).
/// Public only so checkpoints ([`FrozenGuard`]) can carry the baselines.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct Mean {
    sum: f64,
    n: u64,
}

impl Mean {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn get(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Per-window evidence, assembled at each tick.
struct WindowEvidence {
    /// Packets the bank filter saw this window (enforced path).
    bank_packets: u64,
    /// Packets mirrored to the candidate this window.
    mirrored: u64,
    fp_rate: f64,
    benign_drop_rate: f64,
    capture_loss: f64,
    worst_ttm_ms: Option<u64>,
    giveups: u32,
}

impl RolloutGuard {
    /// Timer-token namespace ("ROLL"); disjoint from the controller's so
    /// the two hooks can share one simulator.
    pub const TOKEN_BASE: u64 = 0x524F_4C4C_0000_0000;
    const WINDOW_TOKEN: u64 = Self::TOKEN_BASE;

    /// Build a guard: `known_good` is committed to the registry and
    /// installed globally in the bank before anything runs.
    pub fn new(cfg: RolloutConfig, known_good: PipelineProgram, bank: BankHandle) -> Self {
        let mut registry = ProgramRegistry::new();
        let known_good_version = registry.commit(known_good.clone());
        bank.install(ProgramScope::Global, known_good);
        let mut obs = RolloutObs::new();
        obs.set_registry_versions(registry.len());
        RolloutGuard {
            cfg,
            bank: bank.clone(),
            registry,
            known_good: known_good_version,
            stage: RolloutStage::Idle,
            candidate: None,
            stage_span: None,
            stage_entered: SimTime::ZERO,
            cooldown_until: SimTime::ZERO,
            healthy_streak: 0,
            violation_streak: 0,
            last_bank: bank.stats(),
            baseline_benign_drop: Mean::default(),
            baseline_capture_loss: Mean::default(),
            window_ttm_ms: Vec::new(),
            window_giveups: 0,
            awaiting_recovery: false,
            rolled_back_version: None,
            bootstrapped: false,
            ticking: false,
            next_submission: 0,
            events: Vec::new(),
            obs,
        }
    }

    /// Current stage.
    pub fn stage(&self) -> RolloutStage {
        self.stage
    }

    /// The known-good lineage.
    pub fn registry(&self) -> &ProgramRegistry {
        &self.registry
    }

    /// The version a rollback leaves in force.
    pub fn known_good(&self) -> &ProgramVersion {
        &self.known_good
    }

    /// Feed one mitigation-latency sample (ms) from the controller.
    pub fn record_ttm_sample(&mut self, ttm_ms: u64) {
        self.window_ttm_ms.push(ttm_ms);
    }

    /// Feed a controller install give-up: a rollback-eligible failure,
    /// never a silent drop.
    pub fn record_giveup(&mut self, _reason: GiveUpReason) {
        self.window_giveups += 1;
        self.obs.on_giveup_observed();
    }

    /// Move the Observatory bundle out of a finished guard.
    pub fn take_obs(&mut self) -> RolloutObs {
        std::mem::take(&mut self.obs)
    }

    /// Re-home the guard's telemetry under a metric-name prefix (the
    /// plaza gives each tenant's guard `"<tenant>_"` so co-scheduled
    /// guards never collide in a merged dump). Call before the
    /// simulation runs: the fresh sink re-seeds only the registry gauge,
    /// so any samples already recorded would be lost.
    pub fn set_obs_prefix(&mut self, prefix: impl Into<String>) {
        let mut obs = RolloutObs::with_prefix(prefix);
        obs.set_registry_versions(self.registry.len());
        self.obs = obs;
    }

    /// Freeze the guard's dynamic state for a checkpoint: lineage, stage
    /// machine, candidate (with its live shadow mirror), baselines,
    /// streaks, cooldowns, and telemetry values. Config and bank handle
    /// are reconstructed by the driver; the bank's contents freeze
    /// separately as [`crate::controller::FrozenBank`].
    pub fn freeze(&self) -> FrozenGuard {
        FrozenGuard {
            registry: self.registry.clone(),
            known_good: self.known_good.clone(),
            stage: self.stage,
            candidate: self.candidate.as_ref().map(|c| FrozenCandidate {
                program: c.program.clone(),
                version: c.version.clone(),
                mirror: c.mirror.clone(),
            }),
            stage_span: self.stage_span.as_ref().map(|s| s.index()),
            stage_entered: self.stage_entered,
            cooldown_until: self.cooldown_until,
            healthy_streak: self.healthy_streak,
            violation_streak: self.violation_streak,
            last_bank: self.last_bank,
            baseline_benign_drop: self.baseline_benign_drop,
            baseline_capture_loss: self.baseline_capture_loss,
            window_ttm_ms: self.window_ttm_ms.clone(),
            window_giveups: self.window_giveups,
            awaiting_recovery: self.awaiting_recovery,
            rolled_back_version: self.rolled_back_version.clone(),
            bootstrapped: self.bootstrapped,
            ticking: self.ticking,
            next_submission: self.next_submission,
            events: self.events.clone(),
            sink: self.obs.sink.clone(),
            tracer: self.obs.tracer.clone(),
        }
    }

    /// Apply a frozen image onto a freshly constructed guard (same config,
    /// same known-good program, fresh bank handle). Every dynamic field is
    /// overwritten; the metric prefix is preserved so plaza tenants thaw
    /// under their own names.
    pub fn thaw_state(&mut self, frozen: FrozenGuard) {
        self.registry = frozen.registry;
        self.known_good = frozen.known_good;
        self.stage = frozen.stage;
        self.candidate = frozen.candidate.map(|c| Candidate {
            program: c.program,
            version: c.version,
            mirror: c.mirror,
        });
        self.stage_span = frozen.stage_span.map(OpenSpan::from_index);
        self.stage_entered = frozen.stage_entered;
        self.cooldown_until = frozen.cooldown_until;
        self.healthy_streak = frozen.healthy_streak;
        self.violation_streak = frozen.violation_streak;
        self.last_bank = frozen.last_bank;
        self.baseline_benign_drop = frozen.baseline_benign_drop;
        self.baseline_capture_loss = frozen.baseline_capture_loss;
        self.window_ttm_ms = frozen.window_ttm_ms;
        self.window_giveups = frozen.window_giveups;
        self.awaiting_recovery = frozen.awaiting_recovery;
        self.rolled_back_version = frozen.rolled_back_version;
        self.bootstrapped = frozen.bootstrapped;
        self.ticking = frozen.ticking;
        self.next_submission = frozen.next_submission;
        self.events = frozen.events;
        let prefix = self.obs.prefix().to_string();
        self.obs = RolloutObs::with_prefix(prefix);
        self.obs.sink = frozen.sink;
        self.obs.tracer = frozen.tracer;
    }

    fn enter_stage(&mut self, now: SimTime, stage: RolloutStage) {
        if let Some(span) = self.stage_span.take() {
            self.obs.on_stage_exit(span, self.stage_entered.as_nanos(), now.as_nanos());
        }
        self.stage = stage;
        self.stage_entered = now;
        self.healthy_streak = 0;
        self.violation_streak = 0;
        match stage {
            RolloutStage::Idle => self.obs.set_stage(stage.code()),
            _ => {
                let label = match &self.candidate {
                    Some(c) => format!("{} {}", stage.label(), c.version),
                    None => stage.label().to_string(),
                };
                self.stage_span =
                    Some(self.obs.on_stage_enter(&label, stage.code(), now.as_nanos()));
            }
        }
    }

    fn push_event(&mut self, at: SimTime, program: ProgramVersion, kind: RolloutEventKind) {
        self.events.push(RolloutEvent { at, program, kind });
    }

    /// Submit a dynamically produced candidate (DriftPilot's retrained
    /// programs arrive here), outside the config-scheduled submission
    /// list. Returns the version that entered Shadow, or why the guard
    /// refused it (busy with another candidate, or inside the
    /// post-rollback cooldown). A rejection is recorded as a guard event
    /// either way, so the decision is auditable.
    pub fn submit_candidate(
        &mut self,
        now: SimTime,
        program: PipelineProgram,
        cmds: &mut Commands,
    ) -> Result<ProgramVersion, RejectReason> {
        let version = program.version();
        match self.submit(now, program, cmds) {
            None => Ok(version),
            Some(reason) => Err(reason),
        }
    }

    fn submit(
        &mut self,
        now: SimTime,
        program: PipelineProgram,
        cmds: &mut Commands,
    ) -> Option<RejectReason> {
        let version = program.version();
        let reject = if self.stage != RolloutStage::Idle {
            Some(RejectReason::Busy)
        } else if now < self.cooldown_until {
            Some(RejectReason::Cooldown)
        } else {
            None
        };
        if let Some(reason) = reject {
            self.obs.on_submission(false);
            self.push_event(now, version, RolloutEventKind::Rejected(reason));
            return Some(reason);
        }
        self.obs.on_submission(true);
        let mirror = ShadowMirror::new(program.clone(), self.cfg.extractor.clone());
        self.candidate = Some(Candidate { program, version: version.clone(), mirror });
        // Recovery watching (if any) yields to the new candidate.
        self.awaiting_recovery = false;
        self.rolled_back_version = None;
        self.push_event(now, version, RolloutEventKind::Submitted);
        self.enter_stage(now, RolloutStage::Shadow);
        self.last_bank = self.bank.stats();
        self.arm_window(now, cmds);
        None
    }

    fn arm_window(&mut self, now: SimTime, cmds: &mut Commands) {
        if self.ticking {
            return;
        }
        let w = self.cfg.slo.window.as_nanos();
        let next = SimTime(((now.as_nanos() / w) + 1) * w);
        cmds.set_timer(next, Self::WINDOW_TOKEN);
        self.ticking = true;
    }

    fn gather_evidence(&mut self) -> WindowEvidence {
        let bank_now = self.bank.stats();
        let d_packets = bank_now.packets.saturating_sub(self.last_bank.packets);
        let d_dropped_attack =
            bank_now.dropped_attack.saturating_sub(self.last_bank.dropped_attack);
        let d_dropped_benign =
            bank_now.dropped_benign.saturating_sub(self.last_bank.dropped_benign);
        let d_passed_attack = bank_now.passed_attack.saturating_sub(self.last_bank.passed_attack);
        self.last_bank = bank_now;
        let benign_seen = d_packets.saturating_sub(d_dropped_attack + d_passed_attack);
        let benign_drop_rate = if benign_seen == 0 {
            0.0
        } else {
            d_dropped_benign as f64 / benign_seen as f64
        };
        let shadow = match &mut self.candidate {
            Some(c) => c.mirror.take_window(),
            None => Default::default(),
        };
        let capture_loss = if d_packets == 0 {
            0.0
        } else {
            (1.0 - shadow.mirrored as f64 / d_packets as f64).max(0.0)
        };
        WindowEvidence {
            bank_packets: d_packets,
            mirrored: shadow.mirrored,
            fp_rate: shadow.fp_rate(),
            benign_drop_rate,
            capture_loss,
            worst_ttm_ms: self.window_ttm_ms.drain(..).max(),
            giveups: std::mem::take(&mut self.window_giveups),
        }
    }

    /// The violated gates for this window, in fixed severity order.
    fn violations(&self, ev: &WindowEvidence) -> Vec<SloViolation> {
        let slo = &self.cfg.slo;
        let mut out = Vec::new();
        match self.stage {
            RolloutStage::Shadow => {
                if ev.fp_rate > slo.max_fp_rate {
                    out.push(SloViolation::FalsePositiveRate);
                }
            }
            RolloutStage::Canary | RolloutStage::Full => {
                if ev.fp_rate > slo.max_fp_rate {
                    out.push(SloViolation::FalsePositiveRate);
                }
                if ev.benign_drop_rate
                    > self.baseline_benign_drop.get() + slo.max_benign_drop_delta
                {
                    out.push(SloViolation::BenignDropDelta);
                }
                if ev.capture_loss > self.baseline_capture_loss.get() + slo.max_capture_loss_delta
                {
                    out.push(SloViolation::CaptureLossDelta);
                }
                if ev.worst_ttm_ms.is_some_and(|w| w > slo.ttm_budget.as_nanos() / 1_000_000) {
                    out.push(SloViolation::LatencyBudget);
                }
                if ev.giveups > 0 {
                    out.push(SloViolation::InstallGiveUp);
                }
            }
            RolloutStage::Idle => {
                // Recovery watching: no mirror is running, so only the
                // enforced-path benign-drop gate applies.
                if ev.benign_drop_rate
                    > self.baseline_benign_drop.get() + slo.max_benign_drop_delta
                {
                    out.push(SloViolation::BenignDropDelta);
                }
            }
        }
        out
    }

    fn evaluate_window(&mut self, now: SimTime, cmds: &mut Commands) {
        self.ticking = false;
        let ev = self.gather_evidence();
        // The capture-loss gate stays live even when mirroring itself is
        // starved — a full blackout must read as a coverage violation,
        // not as "no evidence".
        let capture_violated = matches!(self.stage, RolloutStage::Canary | RolloutStage::Full)
            && ev.capture_loss
                > self.baseline_capture_loss.get() + self.cfg.slo.max_capture_loss_delta;
        // Conclusiveness keys off the traffic the verdict actually rests
        // on: mirrored packets while a candidate is evaluated, enforced
        // bank traffic during post-rollback recovery watching.
        let sample = if self.candidate.is_some() { ev.mirrored } else { ev.bank_packets };
        if sample < self.cfg.slo.min_packets && !capture_violated {
            self.obs.on_window(None);
            self.keep_ticking(now, cmds);
            return;
        }
        let violations = self.violations(&ev);
        for &v in &violations {
            self.obs.on_violation(v);
        }
        let healthy = violations.is_empty();
        self.obs.on_window(Some(healthy));
        if matches!(self.stage, RolloutStage::Shadow) {
            // The candidate is not enforced yet, so these windows define
            // the production baseline the canary is judged against.
            self.baseline_benign_drop.push(ev.benign_drop_rate);
            self.baseline_capture_loss.push(ev.capture_loss);
        }
        if healthy {
            self.healthy_streak += 1;
            self.violation_streak = 0;
            self.on_healthy_streak(now);
        } else {
            self.violation_streak += 1;
            self.healthy_streak = 0;
            self.on_violation_streak(now, violations[0]);
        }
        self.keep_ticking(now, cmds);
    }

    fn keep_ticking(&mut self, now: SimTime, cmds: &mut Commands) {
        let more_submissions = self.next_submission < self.cfg.submissions.len();
        if self.stage != RolloutStage::Idle || self.awaiting_recovery || more_submissions {
            self.arm_window(now, cmds);
        }
    }

    fn on_healthy_streak(&mut self, now: SimTime) {
        if self.awaiting_recovery {
            // Any single healthy window confirms the known-good program
            // restored the SLOs.
            self.awaiting_recovery = false;
            let version = self.rolled_back_version.take().unwrap_or_else(|| self.known_good.clone());
            self.obs.on_recovery();
            self.push_event(now, version, RolloutEventKind::Recovered);
            return;
        }
        if self.healthy_streak < self.cfg.slo.promote_after {
            return;
        }
        match self.stage {
            RolloutStage::Shadow => {
                let Some(c) = &self.candidate else { return };
                let version = c.version.clone();
                self.bank
                    .install(ProgramScope::AnyOf(self.cfg.canary_hosts.clone()), c.program.clone());
                self.obs.on_promotion();
                self.push_event(now, version, RolloutEventKind::EnteredCanary);
                self.enter_stage(now, RolloutStage::Canary);
            }
            RolloutStage::Canary => {
                let Some(c) = &self.candidate else { return };
                let version = c.version.clone();
                // Re-scope: the canary entry leaves, a global one lands.
                self.bank.remove_fingerprint(version.fingerprint);
                self.bank.install(ProgramScope::Global, c.program.clone());
                self.obs.on_promotion();
                self.push_event(now, version, RolloutEventKind::EnteredFull);
                self.enter_stage(now, RolloutStage::Full);
            }
            RolloutStage::Full => {
                let Some(c) = self.candidate.take() else { return };
                let version = c.version.clone();
                // The candidate becomes the known-good head; the old
                // known-good entry retires from the bank.
                self.bank.remove_fingerprint(self.known_good.fingerprint);
                self.known_good = self.registry.commit(c.program);
                self.obs.on_commit(self.registry.len());
                self.push_event(now, version, RolloutEventKind::Committed);
                self.enter_stage(now, RolloutStage::Idle);
            }
            RolloutStage::Idle => {}
        }
    }

    fn on_violation_streak(&mut self, now: SimTime, worst: SloViolation) {
        if self.violation_streak < self.cfg.slo.rollback_after {
            return;
        }
        match self.stage {
            RolloutStage::Shadow => {
                let Some(c) = self.candidate.take() else { return };
                self.obs.on_veto();
                self.push_event(now, c.version, RolloutEventKind::Vetoed(worst));
                self.cooldown_until = now + self.cfg.slo.cooldown;
                self.enter_stage(now, RolloutStage::Idle);
            }
            RolloutStage::Canary | RolloutStage::Full => {
                let Some(c) = self.candidate.take() else { return };
                // Remove every candidate entry; the known-good program
                // never left the bank, so it is back in sole force now.
                self.bank.remove_fingerprint(c.version.fingerprint);
                self.obs.on_rollback();
                self.push_event(now, c.version.clone(), RolloutEventKind::RolledBack(worst));
                self.cooldown_until = now + self.cfg.slo.cooldown;
                self.awaiting_recovery = true;
                self.rolled_back_version = Some(c.version);
                self.enter_stage(now, RolloutStage::Idle);
            }
            RolloutStage::Idle => {
                // Recovery watching saw a violated window: keep watching.
            }
        }
    }
}

/// A [`FrozenGuard`]'s candidate: program, version, and the live shadow
/// mirror (whose runtime carries token-bucket levels mid-window).
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenCandidate {
    pub program: PipelineProgram,
    pub version: ProgramVersion,
    pub mirror: ShadowMirror,
}

/// A [`RolloutGuard`]'s checkpointable image. Deliberately NOT captured:
/// the config (scenario-derived) and the bank handle (frozen separately).
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenGuard {
    pub registry: ProgramRegistry,
    pub known_good: ProgramVersion,
    pub stage: RolloutStage,
    pub candidate: Option<FrozenCandidate>,
    /// The open stage span's tracer index.
    pub stage_span: Option<usize>,
    pub stage_entered: SimTime,
    pub cooldown_until: SimTime,
    pub healthy_streak: u32,
    pub violation_streak: u32,
    pub last_bank: crate::controller::FastLoopStatsSnapshot,
    pub baseline_benign_drop: Mean,
    pub baseline_capture_loss: Mean,
    pub window_ttm_ms: Vec<u64>,
    pub window_giveups: u32,
    pub awaiting_recovery: bool,
    pub rolled_back_version: Option<ProgramVersion>,
    pub bootstrapped: bool,
    pub ticking: bool,
    pub next_submission: usize,
    pub events: Vec<RolloutEvent>,
    pub sink: ObsSink,
    pub tracer: Tracer,
}

impl SimHooks for RolloutGuard {
    fn on_tap(&mut self, now: SimTime, link: LinkId, _dir: Dir, packet: &Packet, cmds: &mut Commands) {
        if link != self.cfg.tap {
            return;
        }
        if !self.bootstrapped {
            self.bootstrapped = true;
            for (i, (at, _)) in self.cfg.submissions.iter().enumerate() {
                let fire = if *at > now { *at } else { now + SimDuration::from_nanos(1) };
                cmds.set_timer(fire, Self::TOKEN_BASE + 1 + i as u64);
            }
        }
        // Mirrored evaluation pauses inside announced tap blackouts; the
        // coverage dip is exactly what the capture-loss gate measures.
        if !self.cfg.tap_blackouts.is_empty()
            && self.cfg.tap_blackouts.iter().any(|w| w.contains(now))
        {
            return;
        }
        if let Some(c) = &mut self.candidate {
            c.mirror.observe(now, packet);
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        if token == Self::WINDOW_TOKEN {
            self.evaluate_window(now, cmds);
            return;
        }
        let Some(idx) = token.checked_sub(Self::TOKEN_BASE + 1) else { return };
        let idx = idx as usize;
        if idx >= self.cfg.submissions.len() || idx != self.next_submission {
            return;
        }
        self.next_submission += 1;
        let program = self.cfg.submissions[idx].1.clone();
        self.submit(now, program, cmds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::BankFilter;
    use campuslab_dataplane::{Action, TableEntry, TernaryMatch, FIELD_ORDER};
    use campuslab_netsim::{GroundTruth, PacketBuilder, PacketFilter, Payload, Prefix};
    use std::net::Ipv4Addr;

    fn extractor() -> FieldExtractor {
        FieldExtractor::new(Prefix::v4(Ipv4Addr::new(10, 1, 0, 0), 16))
    }

    /// Drops UDP traffic sourced from port 53 (the known-good signature).
    fn drop_dns_amp(name: &str) -> PipelineProgram {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[1] = TernaryMatch::exact(53, 16);
        matches[10] = TernaryMatch::exact(1, 1);
        PipelineProgram::new(
            name,
            vec![TableEntry { matches, action: Action::Drop, priority: 1, confidence: 0.95 }],
        )
    }

    /// Drops *all* UDP — grossly over-broad, the shadow stage must veto it.
    fn drop_all_udp(name: &str) -> PipelineProgram {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[10] = TernaryMatch::exact(1, 1);
        PipelineProgram::new(
            name,
            vec![TableEntry { matches, action: Action::Drop, priority: 1, confidence: 0.95 }],
        )
    }

    /// Drops TCP port-443 traffic — quiet on a UDP-only feed, harmful once
    /// web traffic appears (the subtle-degradation case).
    fn drop_https(name: &str) -> PipelineProgram {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[2] = TernaryMatch::exact(443, 16);
        matches[11] = TernaryMatch::exact(1, 1);
        PipelineProgram::new(
            name,
            vec![TableEntry { matches, action: Action::Drop, priority: 1, confidence: 0.95 }],
        )
    }

    fn benign_udp(b: &mut PacketBuilder, dst: Ipv4Addr) -> campuslab_netsim::Packet {
        b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 9),
            dst,
            9_000,
            40_000,
            Payload::Synthetic(200),
            64,
            GroundTruth::default(),
        )
    }

    fn benign_https(b: &mut PacketBuilder, dst: Ipv4Addr) -> campuslab_netsim::Packet {
        b.tcp_v4(
            Ipv4Addr::new(203, 0, 113, 9),
            dst,
            50_000,
            443,
            campuslab_wire::TcpRepr {
                src_port: 0,
                dst_port: 0,
                seq: 1,
                ack: 0,
                control: campuslab_wire::TcpControl::ACK,
                window: 65_535,
                mss: None,
                window_scale: None,
            },
            Payload::Synthetic(400),
            GroundTruth::default(),
        )
    }

    fn slo() -> SloPolicy {
        SloPolicy {
            window: SimDuration::from_secs(1),
            min_packets: 5,
            promote_after: 2,
            rollback_after: 2,
            cooldown: SimDuration::from_secs(2),
            ..SloPolicy::default()
        }
    }

    fn guard_with(
        submissions: Vec<(SimTime, PipelineProgram)>,
        canary_hosts: Vec<IpAddr>,
    ) -> (RolloutGuard, BankHandle, Box<crate::controller::BankFilter>) {
        let (filter, handle) = BankFilter::new(extractor());
        let cfg = RolloutConfig {
            tap: LinkId(0),
            extractor: extractor(),
            slo: slo(),
            canary_hosts,
            tap_blackouts: Vec::new(),
            submissions,
        };
        let guard = RolloutGuard::new(cfg, drop_dns_amp("kg-v1"), handle.clone());
        (guard, handle, filter)
    }

    /// Feed `n` packets to both the guard's tap and the enforced bank at
    /// evenly spaced times inside the window starting at `from`.
    #[allow(clippy::too_many_arguments)]
    fn feed_window(
        guard: &mut RolloutGuard,
        filter: &mut crate::controller::BankFilter,
        b: &mut PacketBuilder,
        from: SimTime,
        n: usize,
        mk: impl Fn(&mut PacketBuilder, Ipv4Addr) -> campuslab_netsim::Packet,
        dst: Ipv4Addr,
        cmds: &mut Commands,
    ) {
        for i in 0..n {
            let at = from + SimDuration::from_millis(1 + i as u64);
            let pkt = mk(b, dst);
            filter.decide(at, &pkt);
            guard.on_tap(at, LinkId(0), Dir::AtoB, &pkt, cmds);
        }
    }

    fn tick(guard: &mut RolloutGuard, at: SimTime, cmds: &mut Commands) {
        guard.on_timer(at, RolloutGuard::WINDOW_TOKEN, cmds);
    }

    const SUBMIT0: u64 = RolloutGuard::TOKEN_BASE + 1;

    #[test]
    fn breaker_opens_blocks_probes_and_recloses() {
        let mut b = CircuitBreaker::new(CircuitBreakerPolicy {
            open_after: 2,
            cooldown: SimDuration::from_millis(100),
        });
        let t0 = SimTime::ZERO;
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(t0));
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed, "one failure keeps it closed");
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 1);
        // Blocked until the cooldown elapses.
        assert!(!b.allows(t0 + SimDuration::from_millis(50)));
        // Then exactly one probe is allowed.
        let probe_at = t0 + SimDuration::from_millis(100);
        assert!(b.allows(probe_at));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-opens immediately (no streak needed).
        b.on_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens, 2);
        // A successful probe closes it for good.
        let probe2 = probe_at + SimDuration::from_millis(100);
        assert!(b.allows(probe2));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(probe2));
    }

    #[test]
    fn registry_tracks_known_good_lineage() {
        let mut reg = ProgramRegistry::new();
        assert!(reg.is_empty());
        let v1 = reg.commit(drop_dns_amp("v1"));
        let v2 = reg.commit(drop_https("v2"));
        assert_eq!(reg.len(), 2);
        assert!(reg.contains(v1.fingerprint));
        assert!(reg.contains(v2.fingerprint));
        assert!(!reg.contains(0xDEAD_BEEF));
        let (head, program) = reg.last_known_good().expect("head");
        assert_eq!(*head, v2);
        assert_eq!(program.version(), v2);
        let lineage: Vec<_> = reg.lineage().cloned().collect();
        assert_eq!(lineage, vec![v1, v2]);
    }

    #[test]
    fn shadow_vetoes_an_overbroad_candidate_without_enforcing_it() {
        let v2 = drop_all_udp("v2");
        let v2_fp = v2.fingerprint();
        let (mut guard, handle, mut filter) =
            guard_with(vec![(SimTime::from_secs(1), v2)], Vec::new());
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();
        let dst = Ipv4Addr::new(10, 1, 1, 10);

        // Bootstrap: the first tapped packet schedules the submission.
        let p = benign_udp(&mut b, dst);
        guard.on_tap(SimTime::from_millis(1), LinkId(0), Dir::AtoB, &p, &mut cmds);
        guard.on_timer(SimTime::from_secs(1), SUBMIT0, &mut cmds);
        assert_eq!(guard.stage(), RolloutStage::Shadow);

        // Two windows of benign UDP: the candidate would drop all of it.
        for w in 0..2 {
            let from = SimTime::from_secs(1 + w);
            feed_window(&mut guard, &mut filter, &mut b, from, 10, benign_udp, dst, &mut cmds);
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert_eq!(guard.stage(), RolloutStage::Idle);
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::Vetoed(SloViolation::FalsePositiveRate))
        ));
        // Never enforced: the bank still holds only the known-good entry.
        assert_eq!(handle.len(), 1);
        assert!(!handle.has_fingerprint(v2_fp));
        assert_eq!(guard.obs.vetoes(), 1);
        assert_eq!(guard.obs.windows_violated(), 2);
        // Nothing was actually dropped while shadowing.
        assert_eq!(handle.stats().dropped, 0);
    }

    #[test]
    fn healthy_candidate_promotes_through_canary_to_commit() {
        let v2 = drop_https("v2");
        let v2_version = v2.version();
        let canary: Vec<IpAddr> = vec![Ipv4Addr::new(10, 1, 1, 10).into()];
        let (mut guard, handle, mut filter) =
            guard_with(vec![(SimTime::from_secs(1), v2)], canary);
        let kg_fp = guard.known_good().fingerprint;
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();
        let dst = Ipv4Addr::new(10, 1, 1, 10);

        let p = benign_udp(&mut b, dst);
        guard.on_tap(SimTime::from_millis(1), LinkId(0), Dir::AtoB, &p, &mut cmds);
        guard.on_timer(SimTime::from_secs(1), SUBMIT0, &mut cmds);

        // Benign UDP only: drop-https flags nothing, every window healthy.
        // 2 shadow + 2 canary + 2 full windows walk it to a commit.
        for w in 0..6u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(&mut guard, &mut filter, &mut b, from, 10, benign_udp, dst, &mut cmds);
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        let kinds: Vec<_> = guard.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RolloutEventKind::Submitted,
                RolloutEventKind::EnteredCanary,
                RolloutEventKind::EnteredFull,
                RolloutEventKind::Committed,
            ]
        );
        assert_eq!(guard.stage(), RolloutStage::Idle);
        // Committed: the candidate is the registry head and the old
        // known-good entry has retired from the bank.
        assert_eq!(guard.registry().len(), 2);
        assert_eq!(guard.registry().last_known_good().unwrap().0, v2_version);
        assert!(handle.has_fingerprint(v2_version.fingerprint));
        assert!(!handle.has_fingerprint(kg_fp));
        assert_eq!(guard.obs.promotions(), 2);
        assert_eq!(guard.obs.commits(), 1);
        // Two stages were exited with recorded durations by commit time
        // (shadow and canary), plus full on the final transition.
        assert_eq!(guard.obs.stage_histogram().count(), 3);
    }

    #[test]
    fn canary_rollback_restores_known_good_and_confirms_recovery() {
        let v3 = drop_https("v3");
        let v3_fp = v3.fingerprint();
        let canary_host = Ipv4Addr::new(10, 1, 1, 10);
        let (mut guard, handle, mut filter) =
            guard_with(vec![(SimTime::from_secs(1), v3)], vec![canary_host.into()]);
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();

        let p = benign_udp(&mut b, canary_host);
        guard.on_tap(SimTime::from_millis(1), LinkId(0), Dir::AtoB, &p, &mut cmds);
        guard.on_timer(SimTime::from_secs(1), SUBMIT0, &mut cmds);

        // Shadow passes on two quiet UDP windows (drop-https sees nothing).
        for w in 0..2u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(
                &mut guard, &mut filter, &mut b, from, 10, benign_udp, canary_host, &mut cmds,
            );
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert_eq!(guard.stage(), RolloutStage::Canary);
        assert!(handle.has_fingerprint(v3_fp));

        // Canary: benign HTTPS to the canary host is now enforced-dropped
        // — a benign-drop delta the baseline never saw. It reaches the
        // bank off-tap, so the mirror's FP gate stays quiet and the
        // enforced-path gate is what must catch it.
        for w in 2..4u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(
                &mut guard, &mut filter, &mut b, from, 10, benign_udp, canary_host, &mut cmds,
            );
            for i in 0..5 {
                let at = from + SimDuration::from_millis(500 + i as u64);
                let pkt = benign_https(&mut b, canary_host);
                filter.decide(at, &pkt);
            }
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::RolledBack(SloViolation::BenignDropDelta))
        ));
        assert_eq!(guard.stage(), RolloutStage::Idle);
        // The candidate's entries left the bank; known-good remains.
        assert!(!handle.has_fingerprint(v3_fp));
        assert_eq!(handle.len(), 1);
        assert_eq!(guard.obs.rollbacks(), 1);
        let rollback_at = guard.events.last().unwrap().at;

        // Post-rollback, the same traffic now passes: recovery confirmed
        // on the next conclusive window.
        let from = SimTime::from_secs(5);
        feed_window(
            &mut guard, &mut filter, &mut b, from, 10, benign_https, canary_host, &mut cmds,
        );
        tick(&mut guard, SimTime::from_secs(6), &mut cmds);
        let last = guard.events.last().unwrap();
        assert_eq!(last.kind, RolloutEventKind::Recovered);
        assert!(last.at > rollback_at);
        assert_eq!(guard.obs.recoveries(), 1);

        // And the cooldown refuses an immediate resubmission.
        guard.submit(rollback_at + SimDuration::from_millis(1), drop_https("v4"), &mut cmds);
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::Rejected(RejectReason::Cooldown))
        ));
        assert_eq!(guard.obs.rejected(), 1);
    }

    #[test]
    fn giveups_are_rollback_eligible_violations() {
        // A candidate sits in canary; the controller reports an install
        // give-up each window. That alone must drive the rollback.
        let v3 = drop_https("v3");
        let canary_host = Ipv4Addr::new(10, 1, 1, 10);
        let (mut guard, _handle, mut filter) =
            guard_with(vec![(SimTime::from_secs(1), v3)], vec![canary_host.into()]);
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();

        let p = benign_udp(&mut b, canary_host);
        guard.on_tap(SimTime::from_millis(1), LinkId(0), Dir::AtoB, &p, &mut cmds);
        guard.on_timer(SimTime::from_secs(1), SUBMIT0, &mut cmds);
        for w in 0..2u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(
                &mut guard, &mut filter, &mut b, from, 10, benign_udp, canary_host, &mut cmds,
            );
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert_eq!(guard.stage(), RolloutStage::Canary);

        for w in 2..4u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(
                &mut guard, &mut filter, &mut b, from, 10, benign_udp, canary_host, &mut cmds,
            );
            guard.record_giveup(GiveUpReason::CircuitOpen);
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::RolledBack(SloViolation::InstallGiveUp))
        ));
        assert_eq!(guard.obs.giveups_observed(), 2);
    }

    #[test]
    fn busy_guard_rejects_competing_submissions() {
        let (mut guard, _handle, mut filter) = guard_with(
            vec![(SimTime::from_secs(1), drop_https("v2"))],
            Vec::new(),
        );
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();
        let dst = Ipv4Addr::new(10, 1, 1, 10);
        let p = benign_udp(&mut b, dst);
        guard.on_tap(SimTime::from_millis(1), LinkId(0), Dir::AtoB, &p, &mut cmds);
        guard.on_timer(SimTime::from_secs(1), SUBMIT0, &mut cmds);
        assert_eq!(guard.stage(), RolloutStage::Shadow);
        let _ = &mut filter;
        guard.submit(SimTime::from_millis(1_500), drop_all_udp("v9"), &mut cmds);
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::Rejected(RejectReason::Busy))
        ));
        assert_eq!(guard.obs.submissions(), 2);
        assert_eq!(guard.obs.rejected(), 1);
    }

    #[test]
    fn blackout_windows_are_inconclusive_not_vetoes() {
        // Mirrored evaluation pauses in a blackout; a window with too few
        // mirrored packets must freeze the streaks, not move them.
        let v2 = drop_all_udp("v2");
        let (filter, handle) = BankFilter::new(extractor());
        let mut filter = filter;
        let cfg = RolloutConfig {
            tap: LinkId(0),
            extractor: extractor(),
            slo: slo(),
            canary_hosts: Vec::new(),
            tap_blackouts: vec![Outage {
                from: SimTime::from_secs(2),
                until: SimTime::from_secs(3),
            }],
            submissions: vec![(SimTime::from_secs(1), v2)],
        };
        let mut guard = RolloutGuard::new(cfg, drop_dns_amp("kg-v1"), handle.clone());
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();
        let dst = Ipv4Addr::new(10, 1, 1, 10);
        let p = benign_udp(&mut b, dst);
        guard.on_tap(SimTime::from_millis(1), LinkId(0), Dir::AtoB, &p, &mut cmds);
        guard.on_timer(SimTime::from_secs(1), SUBMIT0, &mut cmds);

        // First window violates (high FP) ...
        feed_window(&mut guard, &mut filter, &mut b, SimTime::from_secs(1), 10, benign_udp, dst, &mut cmds);
        tick(&mut guard, SimTime::from_secs(2), &mut cmds);
        assert_eq!(guard.stage(), RolloutStage::Shadow, "one bad window must not veto");
        // ... the blacked-out window is inconclusive and freezes the
        // streak instead of completing the veto ...
        feed_window(&mut guard, &mut filter, &mut b, SimTime::from_secs(2), 10, benign_udp, dst, &mut cmds);
        tick(&mut guard, SimTime::from_secs(3), &mut cmds);
        assert_eq!(guard.stage(), RolloutStage::Shadow);
        assert_eq!(guard.obs.windows_inconclusive(), 1);
        // ... and two more violating windows finish the job.
        for w in 3..5u64 {
            let from = SimTime::from_secs(w);
            feed_window(&mut guard, &mut filter, &mut b, from, 10, benign_udp, dst, &mut cmds);
            tick(&mut guard, SimTime::from_secs(w + 1), &mut cmds);
        }
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::Vetoed(SloViolation::FalsePositiveRate))
        ));
    }

    #[test]
    fn candidate_arriving_mid_cooldown_waits_out_the_veto() {
        // A veto arms the cooldown; a fresh candidate arriving inside it
        // must be refused — and the same candidate is welcome the moment
        // the cooldown expires.
        let (mut guard, _handle, mut filter) = guard_with(Vec::new(), Vec::new());
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();
        let dst = Ipv4Addr::new(10, 1, 1, 10);

        guard
            .submit_candidate(SimTime::from_secs(1), drop_all_udp("bad"), &mut cmds)
            .expect("idle guard takes the first candidate");
        // Two windows of benign UDP: the overbroad candidate flags all of
        // it and is vetoed at t=3s, arming the 2s cooldown.
        for w in 0..2u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(&mut guard, &mut filter, &mut b, from, 10, benign_udp, dst, &mut cmds);
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::Vetoed(SloViolation::FalsePositiveRate))
        ));
        assert_eq!(guard.stage(), RolloutStage::Idle);

        // t=4s is mid-cooldown: refused even though the guard is Idle,
        // and the refusal is an auditable event.
        let v2 = drop_https("v2");
        let refused = guard.submit_candidate(SimTime::from_secs(4), v2.clone(), &mut cmds);
        assert_eq!(refused.unwrap_err(), RejectReason::Cooldown);
        assert_eq!(guard.stage(), RolloutStage::Idle);
        assert!(matches!(
            guard.events.last().map(|e| e.kind),
            Some(RolloutEventKind::Rejected(RejectReason::Cooldown))
        ));
        assert_eq!(guard.obs.rejected(), 1);

        // At exactly t=5s the cooldown has elapsed: accepted into Shadow.
        let accepted = guard.submit_candidate(SimTime::from_secs(5), v2, &mut cmds);
        assert_eq!(accepted.expect("cooldown expired").name, "v2");
        assert_eq!(guard.stage(), RolloutStage::Shadow);
    }

    #[test]
    fn back_to_back_candidates_race_a_single_slo_window() {
        // Two candidates inside one SLO window: the first takes the
        // guard, the second bounces with Busy, and the survivor's window
        // evidence is evaluated unpolluted — it promotes on its own
        // schedule, with the loser shut out for the whole rollout.
        let (mut guard, _handle, mut filter) = guard_with(Vec::new(), Vec::new());
        let mut b = PacketBuilder::new();
        let mut cmds = Commands::default();
        let dst = Ipv4Addr::new(10, 1, 1, 10);

        let first = drop_https("first");
        let second = drop_https("second");
        let first_version = first.version();
        guard
            .submit_candidate(SimTime::from_millis(1_100), first, &mut cmds)
            .expect("first candidate enters Shadow");
        // 500ms later, same SLO window: the race is lost cleanly.
        let lost =
            guard.submit_candidate(SimTime::from_millis(1_600), second.clone(), &mut cmds);
        assert_eq!(lost.unwrap_err(), RejectReason::Busy);
        assert_eq!(guard.events.last().unwrap().program, second.version());

        // The race leaves no mark on the survivor: quiet UDP windows walk
        // it through Shadow exactly as if it had arrived alone.
        for w in 0..2u64 {
            let from = SimTime::from_secs(1 + w);
            feed_window(&mut guard, &mut filter, &mut b, from, 10, benign_udp, dst, &mut cmds);
            tick(&mut guard, SimTime::from_secs(2 + w), &mut cmds);
        }
        assert_eq!(guard.stage(), RolloutStage::Canary);
        let submitted: Vec<_> = guard
            .events
            .iter()
            .filter(|e| e.kind == RolloutEventKind::Submitted)
            .map(|e| e.program.clone())
            .collect();
        assert_eq!(submitted, vec![first_version], "only the winner was ever admitted");

        // Mid-canary the loser still cannot slip in.
        let retry = guard.submit_candidate(SimTime::from_millis(3_100), second, &mut cmds);
        assert_eq!(retry.unwrap_err(), RejectReason::Busy);
        assert_eq!(guard.obs.rejected(), 2);
    }
}
