//! Observatory schemas for the control plane: window-detector telemetry
//! ([`DetectorObs`]), mitigation-controller telemetry ([`ControllerObs`],
//! including per-episode spans traced in sim-time), and rollout-guard
//! telemetry ([`RolloutObs`], including per-stage spans).

use campuslab_obs::{
    CounterId, GaugeId, Histogram, HistogramId, ObsSink, OpenSpan, Registry, Tracer,
};

/// Window-coverage histogram bounds, percent observed (≤10% .. ≤99%, +Inf
/// catches fully covered windows).
pub const COVERAGE_BOUNDS: [u64; 6] = [10, 25, 50, 75, 90, 99];

/// Time-to-mitigation histogram bounds, milliseconds.
pub const TTM_BOUNDS: [u64; 7] = [1, 5, 10, 50, 150, 500, 1_000];

/// Metrics for one [`crate::detector::StreamingWindowDetector`].
#[derive(Debug, Clone)]
pub struct DetectorObs {
    registry: Registry,
    /// Value store; bumped by the detector, read back through typed ids.
    pub sink: ObsSink,
    observed: CounterId,
    windows_closed: CounterId,
    windows_skipped: CounterId,
    detections: CounterId,
    coverage_pct: HistogramId,
}

impl Default for DetectorObs {
    fn default() -> Self {
        DetectorObs::new()
    }
}

impl DetectorObs {
    /// Build the detector schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let observed = reg.counter("det_observed_records_total", "tap records fed to the detector");
        let windows_closed =
            reg.counter("det_windows_closed_total", "tumbling windows closed and considered");
        let windows_skipped = reg.counter(
            "det_windows_skipped_total",
            "windows skipped because telemetry coverage fell below policy",
        );
        let detections = reg.counter("det_detections_total", "detections emitted past the gate");
        let coverage_pct = reg.histogram(
            "det_window_coverage_pct",
            "per-closed-window telemetry coverage, percent",
            &COVERAGE_BOUNDS,
        );
        let sink = reg.sink();
        DetectorObs {
            registry: reg,
            sink,
            observed,
            windows_closed,
            windows_skipped,
            detections,
            coverage_pct,
        }
    }

    #[inline]
    pub(crate) fn on_observed(&mut self) {
        self.sink.inc(self.observed);
    }

    #[inline]
    pub(crate) fn on_window_closed(&mut self, coverage: f64, skipped: bool, detections: u64) {
        self.sink.inc(self.windows_closed);
        self.sink.observe(self.coverage_pct, (coverage.clamp(0.0, 1.0) * 100.0) as u64);
        if skipped {
            self.sink.inc(self.windows_skipped);
        } else {
            self.sink.add(self.detections, detections);
        }
    }

    /// Records fed in.
    pub fn observed(&self) -> u64 {
        self.sink.counter(self.observed)
    }

    /// Windows closed (skipped ones included).
    pub fn windows_closed(&self) -> u64 {
        self.sink.counter(self.windows_closed)
    }

    /// Windows skipped under the coverage policy.
    pub fn windows_skipped(&self) -> u64 {
        self.sink.counter(self.windows_skipped)
    }

    /// Detections emitted.
    pub fn detections(&self) -> u64 {
        self.sink.counter(self.detections)
    }

    /// The per-window coverage histogram (percent).
    pub fn coverage_histogram(&self) -> &Histogram {
        self.sink.histogram(self.coverage_pct)
    }

    /// Render as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Metrics + per-episode spans for one
/// [`crate::controller::MitigationController`].
#[derive(Debug, Clone)]
pub struct ControllerObs {
    registry: Registry,
    /// Value store; bumped by the controller, read back through typed ids.
    pub sink: ObsSink,
    /// Per-episode spans (`mitigate[victim]`), sim-time stamped: opened
    /// when a detection is accepted, closed at install or give-up.
    pub tracer: Tracer,
    episodes: CounterId,
    attempts: CounterId,
    flakes: CounterId,
    installs: CounterId,
    giveups: CounterId,
    ttm_ms: HistogramId,
}

impl Default for ControllerObs {
    fn default() -> Self {
        ControllerObs::new()
    }
}

impl ControllerObs {
    /// Build the controller schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let episodes =
            reg.counter("ctl_episodes_total", "detection-to-mitigation episodes started");
        let attempts =
            reg.counter("ctl_install_attempts_total", "rule-install attempts sent to the switch");
        let flakes = reg.counter("ctl_install_flakes_total", "install attempts that flaked");
        let installs = reg.counter("ctl_installs_total", "rules that landed in the filter bank");
        let giveups =
            reg.counter("ctl_giveups_total", "episodes abandoned after retry budget/timeout");
        let ttm_ms = reg.histogram(
            "ctl_time_to_mitigation_ms",
            "detection window end to rule active, milliseconds",
            &TTM_BOUNDS,
        );
        let sink = reg.sink();
        ControllerObs {
            registry: reg,
            sink,
            tracer: Tracer::new(),
            episodes,
            attempts,
            flakes,
            installs,
            giveups,
            ttm_ms,
        }
    }

    /// A detection was accepted; opens the episode span.
    #[inline]
    pub(crate) fn on_episode_start(&mut self, victim: &str, now_ns: u64) -> OpenSpan {
        self.sink.inc(self.episodes);
        self.tracer.open(format!("mitigate[{victim}]"), now_ns)
    }

    #[inline]
    pub(crate) fn on_attempt(&mut self, flaked: bool) {
        self.sink.inc(self.attempts);
        if flaked {
            self.sink.inc(self.flakes);
        }
    }

    /// The rule landed; closes the episode span and records TTM.
    #[inline]
    pub(crate) fn on_installed(&mut self, span: OpenSpan, detected_ns: u64, installed_ns: u64) {
        self.sink.inc(self.installs);
        self.sink
            .observe(self.ttm_ms, installed_ns.saturating_sub(detected_ns) / 1_000_000);
        self.tracer.close(span, installed_ns);
    }

    /// The episode was abandoned; closes the span without a TTM sample.
    #[inline]
    pub(crate) fn on_giveup(&mut self, span: OpenSpan, gave_up_ns: u64) {
        self.sink.inc(self.giveups);
        self.tracer.close(span, gave_up_ns);
    }

    /// Episodes started.
    pub fn episodes(&self) -> u64 {
        self.sink.counter(self.episodes)
    }

    /// Install attempts sent.
    pub fn attempts(&self) -> u64 {
        self.sink.counter(self.attempts)
    }

    /// Attempts that flaked.
    pub fn flakes(&self) -> u64 {
        self.sink.counter(self.flakes)
    }

    /// Rules that landed.
    pub fn installs(&self) -> u64 {
        self.sink.counter(self.installs)
    }

    /// Episodes abandoned.
    pub fn giveups(&self) -> u64 {
        self.sink.counter(self.giveups)
    }

    /// The time-to-mitigation histogram (milliseconds).
    pub fn ttm_histogram(&self) -> &Histogram {
        self.sink.histogram(self.ttm_ms)
    }

    /// Render as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Time-in-stage histogram bounds, milliseconds of sim time.
pub const STAGE_MS_BOUNDS: [u64; 6] = [500, 1_000, 2_000, 5_000, 10_000, 30_000];

/// Metrics + per-stage spans for one [`crate::rollout::RolloutGuard`].
#[derive(Debug, Clone)]
pub struct RolloutObs {
    registry: Registry,
    /// Instance prefix prepended to every rendered family name and span
    /// label. Empty for a single-operator run; per-tenant guards get
    /// `"<tenant>_"` so two live instances never collide in one dump.
    prefix: String,
    /// Value store; bumped by the guard, read back through typed ids.
    pub sink: ObsSink,
    /// Per-stage spans (`rollout[stage name@fp]`), sim-time stamped.
    pub tracer: Tracer,
    submissions: CounterId,
    rejected: CounterId,
    windows: CounterId,
    windows_healthy: CounterId,
    windows_violated: CounterId,
    windows_inconclusive: CounterId,
    promotions: CounterId,
    vetoes: CounterId,
    rollbacks: CounterId,
    commits: CounterId,
    recoveries: CounterId,
    giveups_observed: CounterId,
    viol_fp: CounterId,
    viol_benign_drop: CounterId,
    viol_capture_loss: CounterId,
    viol_latency: CounterId,
    viol_giveup: CounterId,
    stage: GaugeId,
    registry_versions: GaugeId,
    stage_ms: HistogramId,
}

impl Default for RolloutObs {
    fn default() -> Self {
        RolloutObs::new()
    }
}

impl RolloutObs {
    /// Build the rollout schema and a zeroed sink with no instance prefix.
    pub fn new() -> Self {
        RolloutObs::with_prefix("")
    }

    /// Build the rollout schema with an instance prefix (e.g. a sanitized
    /// tenant name plus `_`). The prefix lands on every rendered family
    /// name and on span labels; `""` is byte-identical to [`RolloutObs::new`].
    pub fn with_prefix(prefix: impl Into<String>) -> Self {
        let prefix = prefix.into();
        let mut reg = Registry::new();
        let submissions =
            reg.counter("rollout_submissions_total", "candidate programs submitted to the guard");
        let rejected = reg.counter(
            "rollout_submissions_rejected_total",
            "submissions refused (guard busy or cooling down)",
        );
        let windows = reg.counter("rollout_windows_total", "SLO windows evaluated");
        let windows_healthy =
            reg.counter("rollout_windows_healthy_total", "SLO windows with every gate green");
        let windows_violated =
            reg.counter("rollout_windows_violated_total", "SLO windows with at least one gate red");
        let windows_inconclusive = reg.counter(
            "rollout_windows_inconclusive_total",
            "SLO windows with too little evidence; streaks frozen",
        );
        let promotions =
            reg.counter("rollout_promotions_total", "stage promotions (shadow→canary, canary→full)");
        let vetoes = reg.counter("rollout_vetoes_total", "candidates vetoed in shadow");
        let rollbacks =
            reg.counter("rollout_rollbacks_total", "enforced candidates rolled back to known-good");
        let commits =
            reg.counter("rollout_commits_total", "candidates committed as the new known-good");
        let recoveries = reg.counter(
            "rollout_recoveries_total",
            "post-rollback windows confirming SLOs back at baseline",
        );
        let giveups_observed = reg.counter(
            "rollout_giveups_observed_total",
            "controller install give-ups observed by the guard",
        );
        let viol_fp =
            reg.counter("rollout_viol_fp_total", "windows violating the false-positive-rate gate");
        let viol_benign_drop = reg.counter(
            "rollout_viol_benign_drop_total",
            "windows violating the benign-drop-delta gate",
        );
        let viol_capture_loss = reg.counter(
            "rollout_viol_capture_loss_total",
            "windows violating the capture-loss-delta gate",
        );
        let viol_latency = reg.counter(
            "rollout_viol_latency_total",
            "windows violating the mitigation-latency budget",
        );
        let viol_giveup = reg.counter(
            "rollout_viol_giveup_total",
            "windows violated by an install give-up (rollback-eligible failure)",
        );
        let stage = reg.gauge("rollout_stage", "current stage: 0 idle, 1 shadow, 2 canary, 3 full");
        let registry_versions =
            reg.gauge("rollout_registry_versions", "programs in the known-good registry");
        let stage_ms = reg.histogram(
            "rollout_stage_ms",
            "sim time spent in a stage before leaving it, milliseconds",
            &STAGE_MS_BOUNDS,
        );
        let sink = reg.sink();
        RolloutObs {
            registry: reg,
            prefix,
            sink,
            tracer: Tracer::new(),
            submissions,
            rejected,
            windows,
            windows_healthy,
            windows_violated,
            windows_inconclusive,
            promotions,
            vetoes,
            rollbacks,
            commits,
            recoveries,
            giveups_observed,
            viol_fp,
            viol_benign_drop,
            viol_capture_loss,
            viol_latency,
            viol_giveup,
            stage,
            registry_versions,
            stage_ms,
        }
    }

    #[inline]
    pub(crate) fn on_submission(&mut self, accepted: bool) {
        self.sink.inc(self.submissions);
        if !accepted {
            self.sink.inc(self.rejected);
        }
    }

    /// A stage was entered; opens its span and moves the stage gauge.
    #[inline]
    pub(crate) fn on_stage_enter(&mut self, label: &str, code: i64, now_ns: u64) -> OpenSpan {
        self.sink.set(self.stage, code);
        let prefix = &self.prefix;
        self.tracer.open(format!("{prefix}rollout[{label}]"), now_ns)
    }

    /// A stage was left; closes its span and records time-in-stage.
    #[inline]
    pub(crate) fn on_stage_exit(&mut self, span: OpenSpan, entered_ns: u64, now_ns: u64) {
        self.sink
            .observe(self.stage_ms, now_ns.saturating_sub(entered_ns) / 1_000_000);
        self.tracer.close(span, now_ns);
    }

    #[inline]
    pub(crate) fn set_stage(&mut self, code: i64) {
        self.sink.set(self.stage, code);
    }

    #[inline]
    pub(crate) fn on_window(&mut self, healthy: Option<bool>) {
        self.sink.inc(self.windows);
        match healthy {
            Some(true) => self.sink.inc(self.windows_healthy),
            Some(false) => self.sink.inc(self.windows_violated),
            None => self.sink.inc(self.windows_inconclusive),
        }
    }

    #[inline]
    pub(crate) fn on_violation(&mut self, v: crate::rollout::SloViolation) {
        use crate::rollout::SloViolation;
        let id = match v {
            SloViolation::FalsePositiveRate => self.viol_fp,
            SloViolation::BenignDropDelta => self.viol_benign_drop,
            SloViolation::CaptureLossDelta => self.viol_capture_loss,
            SloViolation::LatencyBudget => self.viol_latency,
            SloViolation::InstallGiveUp => self.viol_giveup,
        };
        self.sink.inc(id);
    }

    #[inline]
    pub(crate) fn on_promotion(&mut self) {
        self.sink.inc(self.promotions);
    }

    #[inline]
    pub(crate) fn on_veto(&mut self) {
        self.sink.inc(self.vetoes);
    }

    #[inline]
    pub(crate) fn on_rollback(&mut self) {
        self.sink.inc(self.rollbacks);
    }

    #[inline]
    pub(crate) fn on_commit(&mut self, registry_len: usize) {
        self.sink.inc(self.commits);
        self.sink.set(self.registry_versions, registry_len as i64);
    }

    #[inline]
    pub(crate) fn on_recovery(&mut self) {
        self.sink.inc(self.recoveries);
    }

    #[inline]
    pub(crate) fn on_giveup_observed(&mut self) {
        self.sink.inc(self.giveups_observed);
    }

    #[inline]
    pub(crate) fn set_registry_versions(&mut self, n: usize) {
        self.sink.set(self.registry_versions, n as i64);
    }

    /// Candidates submitted.
    pub fn submissions(&self) -> u64 {
        self.sink.counter(self.submissions)
    }

    /// Submissions refused.
    pub fn rejected(&self) -> u64 {
        self.sink.counter(self.rejected)
    }

    /// SLO windows evaluated.
    pub fn windows(&self) -> u64 {
        self.sink.counter(self.windows)
    }

    /// Windows with every gate green.
    pub fn windows_healthy(&self) -> u64 {
        self.sink.counter(self.windows_healthy)
    }

    /// Windows with at least one gate red.
    pub fn windows_violated(&self) -> u64 {
        self.sink.counter(self.windows_violated)
    }

    /// Windows with too little evidence to judge.
    pub fn windows_inconclusive(&self) -> u64 {
        self.sink.counter(self.windows_inconclusive)
    }

    /// Stage promotions.
    pub fn promotions(&self) -> u64 {
        self.sink.counter(self.promotions)
    }

    /// Shadow vetoes.
    pub fn vetoes(&self) -> u64 {
        self.sink.counter(self.vetoes)
    }

    /// Rollbacks of enforced candidates.
    pub fn rollbacks(&self) -> u64 {
        self.sink.counter(self.rollbacks)
    }

    /// Candidates committed as known-good.
    pub fn commits(&self) -> u64 {
        self.sink.counter(self.commits)
    }

    /// Post-rollback recoveries confirmed.
    pub fn recoveries(&self) -> u64 {
        self.sink.counter(self.recoveries)
    }

    /// Controller give-ups the guard observed.
    pub fn giveups_observed(&self) -> u64 {
        self.sink.counter(self.giveups_observed)
    }

    /// Current stage gauge (0 idle, 1 shadow, 2 canary, 3 full).
    pub fn stage(&self) -> i64 {
        self.sink.gauge(self.stage)
    }

    /// Known-good registry depth.
    pub fn registry_versions(&self) -> i64 {
        self.sink.gauge(self.registry_versions)
    }

    /// The time-in-stage histogram (milliseconds).
    pub fn stage_histogram(&self) -> &Histogram {
        self.sink.histogram(self.stage_ms)
    }

    /// The instance prefix ("" for single-operator runs).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Render as Prometheus text (family names carry the instance prefix).
    pub fn render(&self) -> String {
        self.registry.render_prefixed(&self.sink, &self.prefix)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Drift-onset → SLOs-green histogram bounds, milliseconds of sim time.
/// Drift mitigation rides the full retrain→shadow→canary→full ladder, so
/// the interesting range sits well above the controller's TTM bounds.
pub const DRIFT_TTM_BOUNDS: [u64; 7] = [250, 500, 1_000, 2_000, 5_000, 10_000, 30_000];

/// Metrics + per-campaign spans for one [`crate::driftpilot::DriftPilot`].
#[derive(Debug, Clone)]
pub struct DriftObs {
    registry: Registry,
    /// Instance prefix prepended to every rendered family name and span
    /// label; `"<tenant>_"` keeps per-tenant pilots disjoint in one dump.
    prefix: String,
    /// Value store; bumped by the pilot, read back through typed ids.
    pub sink: ObsSink,
    /// Per-drift spans (`drift[#k]`, onset to SLOs green) and per-retrain
    /// spans (`retrain[#k]`), sim-time stamped.
    pub tracer: Tracer,
    windows: CounterId,
    records: CounterId,
    retrains: CounterId,
    retrains_periodic: CounterId,
    retrains_drift: CounterId,
    budget_rejected: CounterId,
    unchanged: CounterId,
    submitted: CounterId,
    guard_refused: CounterId,
    committed: CounterId,
    vetoed: CounterId,
    rolled_back: CounterId,
    drift_onsets: CounterId,
    drift_mitigated: CounterId,
    drift_score_milli: GaugeId,
    pending: GaugeId,
    drift_ttm_ms: HistogramId,
}

impl Default for DriftObs {
    fn default() -> Self {
        DriftObs::new()
    }
}

impl DriftObs {
    /// Build the drift-pilot schema and a zeroed sink with no prefix.
    pub fn new() -> Self {
        DriftObs::with_prefix("")
    }

    /// Build the drift-pilot schema with an instance prefix; `""` is
    /// byte-identical to [`DriftObs::new`].
    pub fn with_prefix(prefix: impl Into<String>) -> Self {
        let prefix = prefix.into();
        let mut reg = Registry::new();
        let windows = reg.counter("dp_windows_total", "feature windows sealed and scored");
        let records =
            reg.counter("dp_records_total", "tap records streamed into the training buffer");
        let retrains = reg.counter("dp_retrains_total", "retraining runs over fresh windows");
        let retrains_periodic =
            reg.counter("dp_retrains_periodic_total", "retrains fired by the periodic schedule");
        let retrains_drift =
            reg.counter("dp_retrains_drift_total", "retrains fired by the drift-score threshold");
        let budget_rejected = reg.counter(
            "dp_budget_rejected_total",
            "candidates discarded because they blow the switch resource budget",
        );
        let unchanged = reg.counter(
            "dp_unchanged_total",
            "retrains reproducing a deployed or already-judged fingerprint; not submitted",
        );
        let submitted =
            reg.counter("dp_candidates_submitted_total", "candidates handed to the rollout guard");
        let guard_refused = reg.counter(
            "dp_candidates_refused_total",
            "candidates the guard refused (busy or cooling down); pilot resubmits later",
        );
        let committed =
            reg.counter("dp_candidates_committed_total", "pilot candidates committed as known-good");
        let vetoed = reg.counter("dp_candidates_vetoed_total", "pilot candidates vetoed in shadow");
        let rolled_back =
            reg.counter("dp_candidates_rolled_back_total", "pilot candidates rolled back");
        let drift_onsets =
            reg.counter("dp_drift_onsets_total", "drift episodes opened by the score threshold");
        let drift_mitigated = reg.counter(
            "dp_drift_mitigated_total",
            "drift episodes closed with a committed candidate and SLOs green",
        );
        let drift_score_milli =
            reg.gauge("dp_drift_score_milli", "last window drift score, thousandths");
        let pending = reg.gauge("dp_pending_records", "records buffered toward the next retrain");
        let drift_ttm_ms = reg.histogram(
            "dp_drift_ttm_ms",
            "drift onset to mitigated-with-SLOs-green, milliseconds of sim time",
            &DRIFT_TTM_BOUNDS,
        );
        let sink = reg.sink();
        DriftObs {
            registry: reg,
            prefix,
            sink,
            tracer: Tracer::new(),
            windows,
            records,
            retrains,
            retrains_periodic,
            retrains_drift,
            budget_rejected,
            unchanged,
            submitted,
            guard_refused,
            committed,
            vetoed,
            rolled_back,
            drift_onsets,
            drift_mitigated,
            drift_score_milli,
            pending,
            drift_ttm_ms,
        }
    }

    #[inline]
    pub(crate) fn on_record(&mut self) {
        self.sink.inc(self.records);
    }

    #[inline]
    pub(crate) fn on_window(&mut self, drift_score_milli: i64) {
        self.sink.inc(self.windows);
        self.sink.set(self.drift_score_milli, drift_score_milli);
    }

    #[inline]
    pub(crate) fn set_pending(&mut self, n: usize) {
        self.sink.set(self.pending, n as i64);
    }

    /// A retrain ran; `drift_triggered` says which schedule fired it.
    #[inline]
    pub(crate) fn on_retrain(&mut self, drift_triggered: bool) {
        self.sink.inc(self.retrains);
        if drift_triggered {
            self.sink.inc(self.retrains_drift);
        } else {
            self.sink.inc(self.retrains_periodic);
        }
    }

    #[inline]
    pub(crate) fn on_budget_rejected(&mut self) {
        self.sink.inc(self.budget_rejected);
    }

    #[inline]
    pub(crate) fn on_unchanged(&mut self) {
        self.sink.inc(self.unchanged);
    }

    #[inline]
    pub(crate) fn on_submitted(&mut self) {
        self.sink.inc(self.submitted);
    }

    #[inline]
    pub(crate) fn on_guard_refused(&mut self) {
        self.sink.inc(self.guard_refused);
    }

    #[inline]
    pub(crate) fn on_committed(&mut self) {
        self.sink.inc(self.committed);
    }

    #[inline]
    pub(crate) fn on_vetoed(&mut self) {
        self.sink.inc(self.vetoed);
    }

    #[inline]
    pub(crate) fn on_rolled_back(&mut self) {
        self.sink.inc(self.rolled_back);
    }

    /// A drift episode opened; returns its span.
    #[inline]
    pub(crate) fn on_drift_onset(&mut self, ordinal: u64, now_ns: u64) -> OpenSpan {
        self.sink.inc(self.drift_onsets);
        let prefix = &self.prefix;
        self.tracer.open(format!("{prefix}drift[#{ordinal}]"), now_ns)
    }

    /// A drift episode closed green; records the end-to-end TTM.
    #[inline]
    pub(crate) fn on_drift_mitigated(&mut self, span: OpenSpan, onset_ns: u64, green_ns: u64) {
        self.sink.inc(self.drift_mitigated);
        self.sink
            .observe(self.drift_ttm_ms, green_ns.saturating_sub(onset_ns) / 1_000_000);
        self.tracer.close(span, green_ns);
    }

    /// Records streamed in.
    pub fn records(&self) -> u64 {
        self.sink.counter(self.records)
    }

    /// Feature windows sealed and scored.
    pub fn windows(&self) -> u64 {
        self.sink.counter(self.windows)
    }

    /// Retraining runs.
    pub fn retrains(&self) -> u64 {
        self.sink.counter(self.retrains)
    }

    /// Retrains fired by the periodic schedule.
    pub fn retrains_periodic(&self) -> u64 {
        self.sink.counter(self.retrains_periodic)
    }

    /// Retrains fired by the drift-score threshold.
    pub fn retrains_drift(&self) -> u64 {
        self.sink.counter(self.retrains_drift)
    }

    /// Candidates discarded by the resource-budget check.
    pub fn budget_rejected(&self) -> u64 {
        self.sink.counter(self.budget_rejected)
    }

    /// Retrains that reproduced the deployed fingerprint.
    pub fn unchanged(&self) -> u64 {
        self.sink.counter(self.unchanged)
    }

    /// Candidates handed to the guard.
    pub fn submitted(&self) -> u64 {
        self.sink.counter(self.submitted)
    }

    /// Candidates the guard refused.
    pub fn guard_refused(&self) -> u64 {
        self.sink.counter(self.guard_refused)
    }

    /// Pilot candidates committed as known-good.
    pub fn committed(&self) -> u64 {
        self.sink.counter(self.committed)
    }

    /// Pilot candidates vetoed in shadow.
    pub fn vetoed(&self) -> u64 {
        self.sink.counter(self.vetoed)
    }

    /// Pilot candidates rolled back.
    pub fn rolled_back(&self) -> u64 {
        self.sink.counter(self.rolled_back)
    }

    /// Drift episodes opened.
    pub fn drift_onsets(&self) -> u64 {
        self.sink.counter(self.drift_onsets)
    }

    /// Drift episodes closed green.
    pub fn drift_mitigated(&self) -> u64 {
        self.sink.counter(self.drift_mitigated)
    }

    /// Last window drift score, thousandths.
    pub fn drift_score_milli(&self) -> i64 {
        self.sink.gauge(self.drift_score_milli)
    }

    /// The drift-onset → SLOs-green histogram (milliseconds).
    pub fn drift_ttm_histogram(&self) -> &Histogram {
        self.sink.histogram(self.drift_ttm_ms)
    }

    /// The instance prefix ("" for single-operator runs).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Render as Prometheus text (family names carry the instance prefix).
    pub fn render(&self) -> String {
        self.registry.render_prefixed(&self.sink, &self.prefix)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Per-completed-slice sim-event-count histogram bounds.
pub const SLICE_EVENT_BOUNDS: [u64; 6] = [1_000, 5_000, 20_000, 100_000, 500_000, 2_000_000];

/// Metrics for one plaza (multi-tenant experimentation service): tenant
/// admission accounting plus slice-execution telemetry. Instantiated once
/// per service and once per tenant (scoped to that tenant's own grant),
/// the same way `RolloutObs` is instantiated per guard.
#[derive(Debug, Clone)]
pub struct PlazaObs {
    registry: Registry,
    /// Value store; bumped by the plaza, read back through typed ids.
    pub sink: ObsSink,
    admitted: CounterId,
    queued: CounterId,
    rejected: CounterId,
    released: CounterId,
    rounds: CounterId,
    slices: CounterId,
    slots_used: GaugeId,
    tcam_used: GaugeId,
    tenants_active: GaugeId,
    slice_events: HistogramId,
}

impl Default for PlazaObs {
    fn default() -> Self {
        PlazaObs::new()
    }
}

impl PlazaObs {
    /// Build the plaza schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let admitted =
            reg.counter("plz_tenants_admitted_total", "tenants granted dataplane budget");
        let queued = reg.counter(
            "plz_tenants_queued_total",
            "tenants parked in the FIFO admission queue on arrival",
        );
        let rejected = reg.counter(
            "plz_tenants_rejected_total",
            "tenants refused outright (demand can never fit the switch)",
        );
        let released =
            reg.counter("plz_tenants_released_total", "completed tenants whose budget was freed");
        let rounds = reg.counter("plz_rounds_total", "admission rounds the scheduler executed");
        let slices = reg.counter("plz_slices_total", "tenant slices run to completion");
        let slots_used =
            reg.gauge("plz_stage_slots_used", "dataplane stage slots currently granted");
        let tcam_used = reg.gauge("plz_tcam_entries_used", "TCAM entries currently granted");
        let tenants_active = reg.gauge("plz_tenants_active", "tenants currently holding a grant");
        let slice_events = reg.histogram(
            "plz_slice_events",
            "simulator events processed per completed tenant slice",
            &SLICE_EVENT_BOUNDS,
        );
        let sink = reg.sink();
        PlazaObs {
            registry: reg,
            sink,
            admitted,
            queued,
            rejected,
            released,
            rounds,
            slices,
            slots_used,
            tcam_used,
            tenants_active,
            slice_events,
        }
    }

    /// A tenant was granted budget.
    #[inline]
    pub fn on_admitted(&mut self) {
        self.sink.inc(self.admitted);
    }

    /// A tenant was parked in the admission queue.
    #[inline]
    pub fn on_queued(&mut self) {
        self.sink.inc(self.queued);
    }

    /// A tenant was refused outright.
    #[inline]
    pub fn on_rejected(&mut self) {
        self.sink.inc(self.rejected);
    }

    /// A completed tenant's budget was freed.
    #[inline]
    pub fn on_released(&mut self) {
        self.sink.inc(self.released);
    }

    /// The scheduler started an admission round.
    #[inline]
    pub fn on_round(&mut self) {
        self.sink.inc(self.rounds);
    }

    /// A tenant slice ran to completion, having processed `events`
    /// simulator events.
    #[inline]
    pub fn on_slice(&mut self, events: u64) {
        self.sink.inc(self.slices);
        self.sink.observe(self.slice_events, events);
    }

    /// Snapshot the budget gauges.
    #[inline]
    pub fn set_budget(&mut self, slots_used: usize, tcam_used: usize, tenants_active: usize) {
        self.sink.set(self.slots_used, slots_used as i64);
        self.sink.set(self.tcam_used, tcam_used as i64);
        self.sink.set(self.tenants_active, tenants_active as i64);
    }

    /// Tenants granted budget.
    pub fn admitted(&self) -> u64 {
        self.sink.counter(self.admitted)
    }

    /// Tenants parked in the queue on arrival.
    pub fn queued(&self) -> u64 {
        self.sink.counter(self.queued)
    }

    /// Tenants refused outright.
    pub fn rejected(&self) -> u64 {
        self.sink.counter(self.rejected)
    }

    /// Completed tenants whose budget was freed.
    pub fn released(&self) -> u64 {
        self.sink.counter(self.released)
    }

    /// Admission rounds executed.
    pub fn rounds(&self) -> u64 {
        self.sink.counter(self.rounds)
    }

    /// Tenant slices run to completion.
    pub fn slices(&self) -> u64 {
        self.sink.counter(self.slices)
    }

    /// Stage slots currently granted.
    pub fn slots_used(&self) -> i64 {
        self.sink.gauge(self.slots_used)
    }

    /// TCAM entries currently granted.
    pub fn tcam_used(&self) -> i64 {
        self.sink.gauge(self.tcam_used)
    }

    /// Tenants currently holding a grant.
    pub fn tenants_active(&self) -> i64 {
        self.sink.gauge(self.tenants_active)
    }

    /// The per-slice event-count histogram.
    pub fn slice_events_histogram(&self) -> &Histogram {
        self.sink.histogram(self.slice_events)
    }

    /// Render as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_lifecycle_is_traced_and_counted() {
        let mut obs = ControllerObs::new();
        let span = obs.on_episode_start("10.1.1.10", 1_000_000_000);
        obs.on_attempt(true);
        obs.on_attempt(false);
        obs.on_installed(span, 1_000_000_000, 1_010_000_000);
        let span2 = obs.on_episode_start("10.1.2.2", 2_000_000_000);
        obs.on_attempt(true);
        obs.on_giveup(span2, 2_500_000_000);
        assert_eq!(obs.episodes(), 2);
        assert_eq!(obs.attempts(), 3);
        assert_eq!(obs.flakes(), 2);
        assert_eq!(obs.installs(), 1);
        assert_eq!(obs.giveups(), 1);
        assert_eq!(obs.ttm_histogram().count(), 1);
        assert_eq!(obs.ttm_histogram().sum(), 10);
        let spans = obs.tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "mitigate[10.1.1.10]");
        assert_eq!(spans[0].end_ns, 1_010_000_000);
        assert_eq!(spans[1].end_ns, 2_500_000_000);
    }

    #[test]
    fn detector_window_accounting() {
        let mut obs = DetectorObs::new();
        obs.on_observed();
        obs.on_window_closed(1.0, false, 2);
        obs.on_window_closed(0.3, true, 0);
        assert_eq!(obs.windows_closed(), 2);
        assert_eq!(obs.windows_skipped(), 1);
        assert_eq!(obs.detections(), 2);
        let cov = obs.coverage_histogram();
        assert_eq!(cov.count(), 2);
        assert_eq!(cov.sum(), 130);
        assert!(obs.render().contains("det_window_coverage_pct_bucket{le=\"50\"} 1"));
    }

    #[test]
    fn rollout_lifecycle_accounting_and_render() {
        let mut obs = RolloutObs::new();
        obs.on_submission(true);
        obs.on_submission(false);
        let span = obs.on_stage_enter("shadow v2@00000001", 1, 1_000_000_000);
        obs.on_window(Some(true));
        obs.on_window(Some(false));
        obs.on_window(None);
        obs.on_violation(crate::rollout::SloViolation::FalsePositiveRate);
        obs.on_violation(crate::rollout::SloViolation::BenignDropDelta);
        obs.on_giveup_observed();
        obs.on_stage_exit(span, 1_000_000_000, 3_000_000_000);
        obs.on_promotion();
        obs.on_veto();
        obs.on_rollback();
        obs.on_recovery();
        obs.on_commit(2);
        assert_eq!(obs.submissions(), 2);
        assert_eq!(obs.rejected(), 1);
        assert_eq!(obs.windows(), 3);
        assert_eq!(obs.windows_healthy(), 1);
        assert_eq!(obs.windows_violated(), 1);
        assert_eq!(obs.windows_inconclusive(), 1);
        assert_eq!(obs.promotions(), 1);
        assert_eq!(obs.vetoes(), 1);
        assert_eq!(obs.rollbacks(), 1);
        assert_eq!(obs.recoveries(), 1);
        assert_eq!(obs.commits(), 1);
        assert_eq!(obs.giveups_observed(), 1);
        assert_eq!(obs.registry_versions(), 2);
        assert_eq!(obs.stage_histogram().count(), 1);
        assert_eq!(obs.stage_histogram().sum(), 2_000);
        let spans = obs.tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "rollout[shadow v2@00000001]");
        let text = obs.render();
        assert!(text.contains("rollout_submissions_total 2"));
        assert!(text.contains("rollout_rollbacks_total 1"));
        assert!(text.contains("rollout_stage 1"));
    }

    #[test]
    fn two_prefixed_instances_stay_disjoint_and_coherent() {
        // The per-tenant fix: two live guard/pilot obs instances in one
        // dump must not collide on family or span names, and each must
        // keep exactly its own instance's counts.
        let mut a = RolloutObs::with_prefix("alpha_");
        let mut b = RolloutObs::with_prefix("bravo_");
        a.on_submission(true);
        a.on_veto();
        b.on_submission(true);
        b.on_submission(false);
        b.on_commit(1);
        let span = a.on_stage_enter("shadow v1@00000001", 1, 1_000_000_000);
        a.on_stage_exit(span, 1_000_000_000, 2_000_000_000);
        assert_eq!(a.submissions(), 1);
        assert_eq!(b.submissions(), 2);
        assert_eq!(a.vetoes(), 1);
        assert_eq!(b.vetoes(), 0);
        let (ra, rb) = (a.render(), b.render());
        assert!(ra.contains("alpha_rollout_submissions_total 1"));
        assert!(rb.contains("bravo_rollout_submissions_total 2"));
        assert!(!ra.contains("bravo_"));
        assert!(!rb.contains("alpha_"));
        // Family sets are fully disjoint across the two instances: a
        // combined dump never has one sample name fed by both guards.
        let names = |dump: &str| -> std::collections::BTreeSet<String> {
            dump.lines()
                .filter(|l| !l.starts_with('#'))
                .filter_map(|l| l.split(['{', ' ']).next().map(str::to_owned))
                .collect()
        };
        let (na, nb) = (names(&ra), names(&rb));
        assert!(na.is_disjoint(&nb), "sample names shared across instances");
        assert_eq!(a.tracer.spans()[0].name, "alpha_rollout[shadow v1@00000001]");

        let mut pa = DriftObs::with_prefix("alpha_");
        let mut pb = DriftObs::with_prefix("bravo_");
        pa.on_retrain(true);
        pb.on_retrain(false);
        let span = pa.on_drift_onset(1, 3_000_000_000);
        pa.on_drift_mitigated(span, 3_000_000_000, 4_000_000_000);
        assert_eq!(pa.retrains_drift(), 1);
        assert_eq!(pb.retrains_periodic(), 1);
        assert!(pa.render().contains("alpha_dp_retrains_total 1"));
        assert!(pb.render().contains("bravo_dp_retrains_total 1"));
        assert_eq!(pa.tracer.spans()[0].name, "alpha_drift[#1]");
        // The empty prefix is byte-identical to the historical schema.
        assert_eq!(RolloutObs::new().render(), RolloutObs::with_prefix("").render());
        assert_eq!(DriftObs::new().render(), DriftObs::with_prefix("").render());
    }

    #[test]
    fn plaza_admission_accounting_and_render() {
        let mut obs = PlazaObs::new();
        obs.on_admitted();
        obs.on_admitted();
        obs.on_queued();
        obs.on_rejected();
        obs.on_round();
        obs.on_slice(12_000);
        obs.on_slice(800);
        obs.on_released();
        obs.set_budget(10, 4_096, 2);
        assert_eq!(obs.admitted(), 2);
        assert_eq!(obs.queued(), 1);
        assert_eq!(obs.rejected(), 1);
        assert_eq!(obs.released(), 1);
        assert_eq!(obs.rounds(), 1);
        assert_eq!(obs.slices(), 2);
        assert_eq!(obs.slots_used(), 10);
        assert_eq!(obs.tcam_used(), 4_096);
        assert_eq!(obs.tenants_active(), 2);
        assert_eq!(obs.slice_events_histogram().count(), 2);
        let text = obs.render();
        assert!(text.contains("plz_tenants_admitted_total 2"));
        assert!(text.contains("plz_slice_events_bucket{le=\"1000\"} 1"));
        assert!(text.contains("plz_stage_slots_used 10"));
    }

    #[test]
    fn drift_lifecycle_accounting_and_render() {
        let mut obs = DriftObs::new();
        obs.on_record();
        obs.on_record();
        obs.on_window(420);
        obs.set_pending(2);
        obs.on_retrain(false);
        obs.on_retrain(true);
        obs.on_budget_rejected();
        obs.on_unchanged();
        obs.on_submitted();
        obs.on_guard_refused();
        obs.on_vetoed();
        obs.on_rolled_back();
        obs.on_committed();
        let span = obs.on_drift_onset(1, 2_000_000_000);
        obs.on_drift_mitigated(span, 2_000_000_000, 5_500_000_000);
        assert_eq!(obs.records(), 2);
        assert_eq!(obs.windows(), 1);
        assert_eq!(obs.retrains(), 2);
        assert_eq!(obs.retrains_periodic(), 1);
        assert_eq!(obs.retrains_drift(), 1);
        assert_eq!(obs.budget_rejected(), 1);
        assert_eq!(obs.unchanged(), 1);
        assert_eq!(obs.submitted(), 1);
        assert_eq!(obs.guard_refused(), 1);
        assert_eq!(obs.vetoed(), 1);
        assert_eq!(obs.rolled_back(), 1);
        assert_eq!(obs.committed(), 1);
        assert_eq!(obs.drift_onsets(), 1);
        assert_eq!(obs.drift_mitigated(), 1);
        assert_eq!(obs.drift_score_milli(), 420);
        assert_eq!(obs.drift_ttm_histogram().count(), 1);
        assert_eq!(obs.drift_ttm_histogram().sum(), 3_500);
        let spans = obs.tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "drift[#1]");
        assert_eq!(spans[0].end_ns, 5_500_000_000);
        let text = obs.render();
        assert!(text.contains("dp_retrains_total 2"));
        assert!(text.contains("dp_drift_ttm_ms_bucket{le=\"5000\"} 1"));
        assert!(text.contains("dp_drift_score_milli 420"));
    }
}
