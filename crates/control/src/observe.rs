//! Observatory schemas for the control plane: window-detector telemetry
//! ([`DetectorObs`]) and mitigation-controller telemetry
//! ([`ControllerObs`], including per-episode spans traced in sim-time).

use campuslab_obs::{CounterId, Histogram, HistogramId, ObsSink, OpenSpan, Registry, Tracer};

/// Window-coverage histogram bounds, percent observed (≤10% .. ≤99%, +Inf
/// catches fully covered windows).
pub const COVERAGE_BOUNDS: [u64; 6] = [10, 25, 50, 75, 90, 99];

/// Time-to-mitigation histogram bounds, milliseconds.
pub const TTM_BOUNDS: [u64; 7] = [1, 5, 10, 50, 150, 500, 1_000];

/// Metrics for one [`crate::detector::StreamingWindowDetector`].
#[derive(Debug, Clone)]
pub struct DetectorObs {
    registry: Registry,
    /// Value store; bumped by the detector, read back through typed ids.
    pub sink: ObsSink,
    observed: CounterId,
    windows_closed: CounterId,
    windows_skipped: CounterId,
    detections: CounterId,
    coverage_pct: HistogramId,
}

impl Default for DetectorObs {
    fn default() -> Self {
        DetectorObs::new()
    }
}

impl DetectorObs {
    /// Build the detector schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let observed = reg.counter("det_observed_records_total", "tap records fed to the detector");
        let windows_closed =
            reg.counter("det_windows_closed_total", "tumbling windows closed and considered");
        let windows_skipped = reg.counter(
            "det_windows_skipped_total",
            "windows skipped because telemetry coverage fell below policy",
        );
        let detections = reg.counter("det_detections_total", "detections emitted past the gate");
        let coverage_pct = reg.histogram(
            "det_window_coverage_pct",
            "per-closed-window telemetry coverage, percent",
            &COVERAGE_BOUNDS,
        );
        let sink = reg.sink();
        DetectorObs {
            registry: reg,
            sink,
            observed,
            windows_closed,
            windows_skipped,
            detections,
            coverage_pct,
        }
    }

    #[inline]
    pub(crate) fn on_observed(&mut self) {
        self.sink.inc(self.observed);
    }

    #[inline]
    pub(crate) fn on_window_closed(&mut self, coverage: f64, skipped: bool, detections: u64) {
        self.sink.inc(self.windows_closed);
        self.sink.observe(self.coverage_pct, (coverage.clamp(0.0, 1.0) * 100.0) as u64);
        if skipped {
            self.sink.inc(self.windows_skipped);
        } else {
            self.sink.add(self.detections, detections);
        }
    }

    /// Records fed in.
    pub fn observed(&self) -> u64 {
        self.sink.counter(self.observed)
    }

    /// Windows closed (skipped ones included).
    pub fn windows_closed(&self) -> u64 {
        self.sink.counter(self.windows_closed)
    }

    /// Windows skipped under the coverage policy.
    pub fn windows_skipped(&self) -> u64 {
        self.sink.counter(self.windows_skipped)
    }

    /// Detections emitted.
    pub fn detections(&self) -> u64 {
        self.sink.counter(self.detections)
    }

    /// The per-window coverage histogram (percent).
    pub fn coverage_histogram(&self) -> &Histogram {
        self.sink.histogram(self.coverage_pct)
    }

    /// Render as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Metrics + per-episode spans for one
/// [`crate::controller::MitigationController`].
#[derive(Debug, Clone)]
pub struct ControllerObs {
    registry: Registry,
    /// Value store; bumped by the controller, read back through typed ids.
    pub sink: ObsSink,
    /// Per-episode spans (`mitigate[victim]`), sim-time stamped: opened
    /// when a detection is accepted, closed at install or give-up.
    pub tracer: Tracer,
    episodes: CounterId,
    attempts: CounterId,
    flakes: CounterId,
    installs: CounterId,
    giveups: CounterId,
    ttm_ms: HistogramId,
}

impl Default for ControllerObs {
    fn default() -> Self {
        ControllerObs::new()
    }
}

impl ControllerObs {
    /// Build the controller schema and a zeroed sink.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let episodes =
            reg.counter("ctl_episodes_total", "detection-to-mitigation episodes started");
        let attempts =
            reg.counter("ctl_install_attempts_total", "rule-install attempts sent to the switch");
        let flakes = reg.counter("ctl_install_flakes_total", "install attempts that flaked");
        let installs = reg.counter("ctl_installs_total", "rules that landed in the filter bank");
        let giveups =
            reg.counter("ctl_giveups_total", "episodes abandoned after retry budget/timeout");
        let ttm_ms = reg.histogram(
            "ctl_time_to_mitigation_ms",
            "detection window end to rule active, milliseconds",
            &TTM_BOUNDS,
        );
        let sink = reg.sink();
        ControllerObs {
            registry: reg,
            sink,
            tracer: Tracer::new(),
            episodes,
            attempts,
            flakes,
            installs,
            giveups,
            ttm_ms,
        }
    }

    /// A detection was accepted; opens the episode span.
    #[inline]
    pub(crate) fn on_episode_start(&mut self, victim: &str, now_ns: u64) -> OpenSpan {
        self.sink.inc(self.episodes);
        self.tracer.open(format!("mitigate[{victim}]"), now_ns)
    }

    #[inline]
    pub(crate) fn on_attempt(&mut self, flaked: bool) {
        self.sink.inc(self.attempts);
        if flaked {
            self.sink.inc(self.flakes);
        }
    }

    /// The rule landed; closes the episode span and records TTM.
    #[inline]
    pub(crate) fn on_installed(&mut self, span: OpenSpan, detected_ns: u64, installed_ns: u64) {
        self.sink.inc(self.installs);
        self.sink
            .observe(self.ttm_ms, installed_ns.saturating_sub(detected_ns) / 1_000_000);
        self.tracer.close(span, installed_ns);
    }

    /// The episode was abandoned; closes the span without a TTM sample.
    #[inline]
    pub(crate) fn on_giveup(&mut self, span: OpenSpan, gave_up_ns: u64) {
        self.sink.inc(self.giveups);
        self.tracer.close(span, gave_up_ns);
    }

    /// Episodes started.
    pub fn episodes(&self) -> u64 {
        self.sink.counter(self.episodes)
    }

    /// Install attempts sent.
    pub fn attempts(&self) -> u64 {
        self.sink.counter(self.attempts)
    }

    /// Attempts that flaked.
    pub fn flakes(&self) -> u64 {
        self.sink.counter(self.flakes)
    }

    /// Rules that landed.
    pub fn installs(&self) -> u64 {
        self.sink.counter(self.installs)
    }

    /// Episodes abandoned.
    pub fn giveups(&self) -> u64 {
        self.sink.counter(self.giveups)
    }

    /// The time-to-mitigation histogram (milliseconds).
    pub fn ttm_histogram(&self) -> &Histogram {
        self.sink.histogram(self.ttm_ms)
    }

    /// Render as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render(&self.sink)
    }

    /// The schema, for rendering merged sinks.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_lifecycle_is_traced_and_counted() {
        let mut obs = ControllerObs::new();
        let span = obs.on_episode_start("10.1.1.10", 1_000_000_000);
        obs.on_attempt(true);
        obs.on_attempt(false);
        obs.on_installed(span, 1_000_000_000, 1_010_000_000);
        let span2 = obs.on_episode_start("10.1.2.2", 2_000_000_000);
        obs.on_attempt(true);
        obs.on_giveup(span2, 2_500_000_000);
        assert_eq!(obs.episodes(), 2);
        assert_eq!(obs.attempts(), 3);
        assert_eq!(obs.flakes(), 2);
        assert_eq!(obs.installs(), 1);
        assert_eq!(obs.giveups(), 1);
        assert_eq!(obs.ttm_histogram().count(), 1);
        assert_eq!(obs.ttm_histogram().sum(), 10);
        let spans = obs.tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "mitigate[10.1.1.10]");
        assert_eq!(spans[0].end_ns, 1_010_000_000);
        assert_eq!(spans[1].end_ns, 2_500_000_000);
    }

    #[test]
    fn detector_window_accounting() {
        let mut obs = DetectorObs::new();
        obs.on_observed();
        obs.on_window_closed(1.0, false, 2);
        obs.on_window_closed(0.3, true, 0);
        assert_eq!(obs.windows_closed(), 2);
        assert_eq!(obs.windows_skipped(), 1);
        assert_eq!(obs.detections(), 2);
        let cov = obs.coverage_histogram();
        assert_eq!(cov.count(), 2);
        assert_eq!(cov.sum(), 130);
        assert!(obs.render().contains("det_window_coverage_pct_bucket{le=\"50\"} 1"));
    }
}
