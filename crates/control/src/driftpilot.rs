//! DriftPilot: the always-on learn → distill → compile → deploy loop.
//!
//! The devloop (Figure 2's slow loop) runs once; RolloutGuard supervises
//! one deployment. DriftPilot closes the remaining gap to an *operated*
//! system: a sim-time supervisor that
//!
//! * streams per-window traffic signatures from [`campuslab_capture`]
//!   sketches ([`HeavyHitters`] over `(proto, src_port)` and source
//!   prefixes) and scores window-over-window drift,
//! * buffers fresh tap records (the "fresh datastore window") and
//!   retrains the full pipeline — teacher → XAI distillation → switch
//!   compilation — on a periodic schedule and immediately on a drift
//!   onset,
//! * budget-checks every compiled candidate against the switch resource
//!   model and hands survivors to [`crate::rollout::RolloutGuard`]'s
//!   shadow → canary → full machinery (via the testbed wiring, which
//!   drains [`DriftPilot::take_candidates`] and reports the guard's
//!   verdicts back),
//! * measures the production metric that matters: sim time from drift
//!   onset to mitigated-with-SLOs-green (`dp_drift_ttm_ms`).
//!
//! **Determinism contract.** Every retrain is a pure function of the
//! buffered records: the devloop seed is a content hash of the window, so
//! byte-identical windows yield byte-identical model and program
//! fingerprints — at any sim time, on any executor. Retrain schedules
//! derive only from sim time and sim-observed scores; nothing reads the
//! wall clock. The pipeline-determinism property suite pins this law.

use crate::devloop::{run_development_loop, DevLoopConfig};
use crate::observe::DriftObs;
use crate::rollout::{RolloutEvent, RolloutEventKind};
use campuslab_capture::sketch::{FrozenHeavyHitters, HeavyHitters};
use campuslab_capture::{Direction, PacketRecord};
use campuslab_dataplane::{PipelineProgram, ProgramVersion, SwitchModel};
use campuslab_features::{FrozenWindowStream, WindowCell, WindowConfig, WindowStream};
use campuslab_netsim::fxhash::FxHasher;
use campuslab_netsim::{Commands, Dir, LinkId, Packet, SimDuration, SimHooks, SimTime};
use campuslab_obs::{ObsSink, OpenSpan, Tracer};
use std::collections::{BTreeSet, VecDeque};
use std::hash::Hasher;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// DriftPilot configuration.
#[derive(Debug, Clone)]
pub struct DriftPilotConfig {
    /// The tapped border link the pilot learns from.
    pub tap: LinkId,
    /// Sketch/feature window length.
    pub window: SimDuration,
    /// Periodic retrain interval (sim time since the last retrain).
    pub retrain_every: SimDuration,
    /// Window drift score (0..1) at or above which a drift episode opens
    /// and an immediate retrain fires.
    pub drift_threshold: f64,
    /// Retrains are skipped (and retried next window) below this many
    /// buffered records — the devloop needs data.
    pub min_records: usize,
    /// Only records younger than this feed a retrain (the "fresh
    /// datastore window").
    pub training_horizon: SimDuration,
    /// Hard cap on the training buffer (oldest records leave first).
    pub buffer_cap: usize,
    /// Heavy-hitter slots per drift sketch.
    pub heavy_k: usize,
    /// Count-min width/depth behind each sketch.
    pub sketch_width: usize,
    pub sketch_depth: usize,
    /// Pipeline configuration for each retrain. Its `seed` is ignored:
    /// the pilot derives the seed from the record window's content hash.
    pub devloop: DevLoopConfig,
    /// Resource budget every candidate must fit before submission.
    pub switch: SwitchModel,
    /// Fingerprint of the program in force at start (the guard's initial
    /// known-good): retrains reproducing it are not resubmitted.
    pub deployed_fingerprint: u64,
}

impl DriftPilotConfig {
    /// Defaults tuned for the testbed's compressed campus runs.
    pub fn new(tap: LinkId, deployed_fingerprint: u64) -> Self {
        DriftPilotConfig {
            tap,
            window: SimDuration::from_secs(1),
            retrain_every: SimDuration::from_secs(2),
            drift_threshold: 0.5,
            min_records: 60,
            training_horizon: SimDuration::from_secs(4),
            buffer_cap: 20_000,
            heavy_k: 8,
            sketch_width: 512,
            sketch_depth: 4,
            devloop: DevLoopConfig::default(),
            switch: SwitchModel::default(),
            deployed_fingerprint,
        }
    }
}

/// What fired a retrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RetrainTrigger {
    /// The periodic schedule came due.
    Periodic,
    /// A window crossed the drift-score threshold.
    Drift,
}

/// Where a retrain's candidate ended up, pilot-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RetrainOutcome {
    /// Queued for the rollout guard.
    Queued,
    /// Fingerprint already deployed or in flight; nothing to submit.
    Unchanged,
    /// Fingerprint was previously vetoed or rolled back; not resubmitted.
    Barred,
    /// The compiled program does not fit the switch resource budget.
    BudgetRejected,
}

/// One retrain, fully fingerprinted.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetrainRecord {
    pub at: SimTime,
    pub trigger: RetrainTrigger,
    /// Records in the training window.
    pub records: usize,
    /// Content hash of the distilled student model.
    pub model_fingerprint: u64,
    /// Fingerprint of the compiled program.
    pub program_fingerprint: u64,
    pub outcome: RetrainOutcome,
}

/// One drift episode: threshold crossing to SLOs green.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DriftEpisode {
    pub ordinal: u64,
    pub onset: SimTime,
    /// Set when a pilot candidate committed (or the score calmed with
    /// nothing left to deploy); `None` means still unmitigated.
    pub mitigated: Option<SimTime>,
}

/// The always-on pipeline supervisor. Implements [`SimHooks`]; compose it
/// with a guard + controller (the testbed's `DriftHooks` does this,
/// draining [`DriftPilot::take_candidates`] into
/// [`crate::rollout::RolloutGuard::submit_candidate`] and feeding guard
/// events back through [`DriftPilot::on_guard_event`]).
pub struct DriftPilot {
    cfg: DriftPilotConfig,
    stream: WindowStream,
    /// Sealed feature cells, in (window, dst) order — the incremental
    /// equivalent of `features::aggregate` over the tapped range.
    cells: Vec<WindowCell>,
    buffer: VecDeque<PacketRecord>,
    hh_ports: HeavyHitters,
    hh_prefixes: HeavyHitters,
    ref_ports: Vec<(IpAddr, u64)>,
    ref_prefixes: Vec<(IpAddr, u64)>,
    last_retrain: SimTime,
    bootstrapped: bool,
    /// Cumulative records at the previous window tick, for quiescence.
    records_at_tick: u64,
    in_drift: bool,
    drift_span: Option<OpenSpan>,
    drift_onset: SimTime,
    ordinal: u64,
    retrained_since_onset: bool,
    deployed_fp: u64,
    /// Candidate submitted to the guard, not yet judged.
    inflight: Option<u64>,
    /// Fingerprints the guard vetoed or rolled back; never resubmitted.
    barred: BTreeSet<u64>,
    /// Every fingerprint this pilot ever submitted.
    mine: BTreeSet<u64>,
    outbox: Vec<PipelineProgram>,
    /// Drift episodes, in onset order.
    pub episodes: Vec<DriftEpisode>,
    /// Every retrain, in sim order.
    pub retrains: Vec<RetrainRecord>,
    /// Observatory sink + drift spans.
    pub obs: DriftObs,
}

impl DriftPilot {
    /// Timer-token namespace ("DRFT"); disjoint from the controller's
    /// ("MITI") and the guard's ("ROLL") so all three share one simulator.
    pub const TOKEN_BASE: u64 = 0x4452_4654_0000_0000;
    const WINDOW_TOKEN: u64 = Self::TOKEN_BASE;

    /// Build a pilot.
    pub fn new(cfg: DriftPilotConfig) -> Self {
        let stream = WindowStream::new(
            WindowConfig { window_ns: cfg.window.as_nanos(), ..WindowConfig::default() },
            cfg.devloop.label_mode,
        );
        let hh = || HeavyHitters::new(cfg.heavy_k, cfg.sketch_width, cfg.sketch_depth);
        DriftPilot {
            stream,
            hh_ports: hh(),
            hh_prefixes: hh(),
            cells: Vec::new(),
            buffer: VecDeque::new(),
            ref_ports: Vec::new(),
            ref_prefixes: Vec::new(),
            last_retrain: SimTime::ZERO,
            bootstrapped: false,
            records_at_tick: 0,
            in_drift: false,
            drift_span: None,
            drift_onset: SimTime::ZERO,
            ordinal: 0,
            retrained_since_onset: false,
            deployed_fp: cfg.deployed_fingerprint,
            inflight: None,
            barred: BTreeSet::new(),
            mine: BTreeSet::new(),
            outbox: Vec::new(),
            episodes: Vec::new(),
            retrains: Vec::new(),
            obs: DriftObs::new(),
            cfg,
        }
    }

    /// Sealed incremental feature cells so far.
    pub fn features(&self) -> &[WindowCell] {
        &self.cells
    }

    /// Seal every open window and return all feature cells produced over
    /// the run — byte-identical to a one-shot `features::aggregate` over
    /// the same record range.
    pub fn flush_features(&mut self) -> Vec<WindowCell> {
        let cfg = WindowConfig {
            window_ns: self.cfg.window.as_nanos(),
            ..WindowConfig::default()
        };
        let stream =
            std::mem::replace(&mut self.stream, WindowStream::new(cfg, self.cfg.devloop.label_mode));
        stream.finish(&mut self.cells);
        std::mem::take(&mut self.cells)
    }

    /// Feed one already-parsed record. The tap path calls this; the
    /// streaming==batch differential test feeds records directly.
    pub fn ingest_record(&mut self, rec: PacketRecord) {
        self.obs.on_record();
        self.stream.push(&rec, &mut self.cells);
        let sport_key =
            IpAddr::V4(Ipv4Addr::new(rec.protocol, (rec.src_port >> 8) as u8, rec.src_port as u8, 0));
        self.hh_ports.add(sport_key, u64::from(rec.wire_len));
        self.hh_prefixes.add(prefix_key(rec.src), u64::from(rec.wire_len));
        self.buffer.push_back(rec);
        while self.buffer.len() > self.cfg.buffer_cap {
            self.buffer.pop_front();
        }
    }

    /// Drain candidates awaiting guard submission (testbed wiring calls
    /// this after the pilot's timer tick).
    pub fn take_candidates(&mut self) -> Vec<PipelineProgram> {
        std::mem::take(&mut self.outbox)
    }

    /// The guard accepted this candidate into Shadow.
    pub fn on_guard_accepted(&mut self, version: &ProgramVersion) {
        self.obs.on_submitted();
        self.mine.insert(version.fingerprint);
        self.inflight = Some(version.fingerprint);
    }

    /// The guard refused the candidate (busy/cooldown): keep it for the
    /// next window tick unless a newer retrain has replaced it.
    pub fn on_guard_refused(&mut self, program: PipelineProgram) {
        self.obs.on_guard_refused();
        if self.outbox.is_empty() {
            self.outbox.push(program);
        }
    }

    /// Observe one guard event (the wiring forwards new events after each
    /// hook callback). Events about programs the pilot never submitted
    /// are ignored.
    pub fn on_guard_event(&mut self, event: &RolloutEvent) {
        let fp = event.program.fingerprint;
        if !self.mine.contains(&fp) {
            return;
        }
        match event.kind {
            RolloutEventKind::Committed => {
                self.obs.on_committed();
                self.deployed_fp = fp;
                if self.inflight == Some(fp) {
                    self.inflight = None;
                }
                self.close_episode(event.at);
            }
            RolloutEventKind::Vetoed(_) => {
                self.obs.on_vetoed();
                self.barred.insert(fp);
                if self.inflight == Some(fp) {
                    self.inflight = None;
                }
            }
            RolloutEventKind::RolledBack(_) => {
                self.obs.on_rolled_back();
                self.barred.insert(fp);
                if self.inflight == Some(fp) {
                    self.inflight = None;
                }
            }
            _ => {}
        }
    }

    /// Fingerprint of the program the pilot believes is in force.
    pub fn deployed_fingerprint(&self) -> u64 {
        self.deployed_fp
    }

    /// Move the Observatory bundle out of a finished pilot.
    pub fn take_obs(&mut self) -> DriftObs {
        std::mem::take(&mut self.obs)
    }

    /// Freeze the pilot's dynamic state for a checkpoint: stream
    /// accumulators, sealed cells, training buffer, drift sketches and
    /// references, episode machinery, submission bookkeeping, and
    /// telemetry values. Config (and the devloop inside it) is
    /// scenario-derived and reconstructed by the driver.
    pub fn freeze(&self) -> FrozenDriftPilot {
        FrozenDriftPilot {
            stream: self.stream.freeze(),
            cells: self.cells.clone(),
            buffer: self.buffer.iter().cloned().collect(),
            hh_ports: self.hh_ports.freeze(),
            hh_prefixes: self.hh_prefixes.freeze(),
            ref_ports: self.ref_ports.clone(),
            ref_prefixes: self.ref_prefixes.clone(),
            last_retrain: self.last_retrain,
            bootstrapped: self.bootstrapped,
            records_at_tick: self.records_at_tick,
            in_drift: self.in_drift,
            drift_span: self.drift_span.as_ref().map(|s| s.index()),
            drift_onset: self.drift_onset,
            ordinal: self.ordinal,
            retrained_since_onset: self.retrained_since_onset,
            deployed_fp: self.deployed_fp,
            inflight: self.inflight,
            barred: self.barred.iter().copied().collect(),
            mine: self.mine.iter().copied().collect(),
            outbox: self.outbox.clone(),
            episodes: self.episodes.clone(),
            retrains: self.retrains.clone(),
            sink: self.obs.sink.clone(),
            tracer: self.obs.tracer.clone(),
        }
    }

    /// Apply a frozen image onto a freshly constructed pilot (same
    /// config). Every dynamic field is overwritten; the metric prefix is
    /// preserved so plaza tenants thaw under their own names.
    pub fn thaw_state(&mut self, frozen: FrozenDriftPilot) {
        self.stream = WindowStream::thaw(frozen.stream);
        self.cells = frozen.cells;
        self.buffer = frozen.buffer.into();
        self.hh_ports = HeavyHitters::thaw(frozen.hh_ports);
        self.hh_prefixes = HeavyHitters::thaw(frozen.hh_prefixes);
        self.ref_ports = frozen.ref_ports;
        self.ref_prefixes = frozen.ref_prefixes;
        self.last_retrain = frozen.last_retrain;
        self.bootstrapped = frozen.bootstrapped;
        self.records_at_tick = frozen.records_at_tick;
        self.in_drift = frozen.in_drift;
        self.drift_span = frozen.drift_span.map(OpenSpan::from_index);
        self.drift_onset = frozen.drift_onset;
        self.ordinal = frozen.ordinal;
        self.retrained_since_onset = frozen.retrained_since_onset;
        self.deployed_fp = frozen.deployed_fp;
        self.inflight = frozen.inflight;
        self.barred = frozen.barred.into_iter().collect();
        self.mine = frozen.mine.into_iter().collect();
        self.outbox = frozen.outbox;
        self.episodes = frozen.episodes;
        self.retrains = frozen.retrains;
        let prefix = self.obs.prefix().to_string();
        self.obs = DriftObs::with_prefix(prefix);
        self.obs.sink = frozen.sink;
        self.obs.tracer = frozen.tracer;
    }

    fn close_episode(&mut self, at: SimTime) {
        if let Some(span) = self.drift_span.take() {
            self.obs.on_drift_mitigated(span, self.drift_onset.as_nanos(), at.as_nanos());
            if let Some(ep) = self.episodes.last_mut() {
                ep.mitigated = Some(at);
            }
            self.in_drift = false;
        }
    }

    fn arm_window(&mut self, now: SimTime, cmds: &mut Commands) {
        let w = self.cfg.window.as_nanos();
        let next = SimTime(((now.as_nanos() / w) + 1) * w);
        cmds.set_timer(next, Self::WINDOW_TOKEN);
    }

    fn window_tick(&mut self, now: SimTime, cmds: &mut Commands) {
        // Seal the window's sketches and score drift window-over-window:
        // 1 − histogram intersection of the heavy-hitter mass, the worse
        // of the port view and the source-prefix view.
        let hh = || {
            HeavyHitters::new(self.cfg.heavy_k, self.cfg.sketch_width, self.cfg.sketch_depth)
        };
        let ports = std::mem::replace(&mut self.hh_ports, hh()).top();
        let prefixes = std::mem::replace(&mut self.hh_prefixes, hh()).top();
        let score =
            drift_score(&self.ref_ports, &ports).max(drift_score(&self.ref_prefixes, &prefixes));
        if !ports.is_empty() {
            self.ref_ports = ports;
        }
        if !prefixes.is_empty() {
            self.ref_prefixes = prefixes;
        }
        self.obs.on_window((score * 1_000.0) as i64);

        // Fresh-window retention.
        let horizon_floor = now.as_nanos().saturating_sub(self.cfg.training_horizon.as_nanos());
        while self.buffer.front().is_some_and(|r| r.ts_ns < horizon_floor) {
            self.buffer.pop_front();
        }
        self.obs.set_pending(self.buffer.len());

        let rising = score >= self.cfg.drift_threshold && !self.in_drift;
        if rising {
            self.in_drift = true;
            self.ordinal += 1;
            self.retrained_since_onset = false;
            self.drift_onset = now;
            let span = self.obs.on_drift_onset(self.ordinal, now.as_nanos());
            self.drift_span = Some(span);
            self.episodes.push(DriftEpisode { ordinal: self.ordinal, onset: now, mitigated: None });
        } else if self.in_drift
            && score < self.cfg.drift_threshold
            && self.retrained_since_onset
            && self.inflight.is_none()
            && self.outbox.is_empty()
        {
            // The score calmed, the pipeline retrained, and nothing is
            // left to deploy: benign drift the current program absorbs.
            self.close_episode(now);
        }

        if rising {
            self.retrain(now, RetrainTrigger::Drift);
        } else if now.since(self.last_retrain) >= self.cfg.retrain_every {
            self.retrain(now, RetrainTrigger::Periodic);
        }

        // Always-on must still let a drained simulation terminate: keep
        // ticking only while there is work — fresh records this window, a
        // non-empty training buffer, or a candidate awaiting a verdict.
        // Once quiet, disarm; the next tap packet re-bootstraps the timer.
        let fresh = self.obs.records() != self.records_at_tick;
        self.records_at_tick = self.obs.records();
        if fresh || !self.buffer.is_empty() || self.inflight.is_some() || !self.outbox.is_empty() {
            self.arm_window(now, cmds);
        } else {
            self.bootstrapped = false;
        }
    }

    fn retrain(&mut self, now: SimTime, trigger: RetrainTrigger) {
        if self.buffer.len() < self.cfg.min_records {
            // Not enough fresh data; leave last_retrain untouched so the
            // periodic trigger retries next window.
            return;
        }
        self.last_retrain = now;
        self.retrained_since_onset = true;
        let records: Vec<PacketRecord> = self.buffer.iter().cloned().collect();
        self.obs.on_retrain(trigger == RetrainTrigger::Drift);
        let (model_fp, program) = retrain_window(&records, &self.cfg.devloop);
        let prog_fp = program.fingerprint();
        let outcome = if self.cfg.switch.max_concurrent(&program) == 0 {
            self.obs.on_budget_rejected();
            RetrainOutcome::BudgetRejected
        } else if prog_fp == self.deployed_fp || self.inflight == Some(prog_fp) {
            self.obs.on_unchanged();
            RetrainOutcome::Unchanged
        } else if self.barred.contains(&prog_fp) {
            self.obs.on_unchanged();
            RetrainOutcome::Barred
        } else {
            // Newest candidate wins: an undelivered older one is stale.
            self.outbox.clear();
            self.outbox.push(program);
            RetrainOutcome::Queued
        };
        self.retrains.push(RetrainRecord {
            at: now,
            trigger,
            records: records.len(),
            model_fingerprint: model_fp,
            program_fingerprint: prog_fp,
            outcome,
        });
    }
}

/// A [`DriftPilot`]'s checkpointable image. Deliberately NOT captured:
/// the config (scenario-derived, including the devloop — retrains are
/// pure functions of the buffered records, so models need no transport).
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenDriftPilot {
    pub stream: FrozenWindowStream,
    pub cells: Vec<WindowCell>,
    pub buffer: Vec<PacketRecord>,
    pub hh_ports: FrozenHeavyHitters,
    pub hh_prefixes: FrozenHeavyHitters,
    pub ref_ports: Vec<(IpAddr, u64)>,
    pub ref_prefixes: Vec<(IpAddr, u64)>,
    pub last_retrain: SimTime,
    pub bootstrapped: bool,
    pub records_at_tick: u64,
    pub in_drift: bool,
    /// The open drift span's tracer index.
    pub drift_span: Option<usize>,
    pub drift_onset: SimTime,
    pub ordinal: u64,
    pub retrained_since_onset: bool,
    pub deployed_fp: u64,
    pub inflight: Option<u64>,
    /// Barred fingerprints, ascending.
    pub barred: Vec<u64>,
    /// Every fingerprint this pilot ever submitted, ascending.
    pub mine: Vec<u64>,
    pub outbox: Vec<PipelineProgram>,
    pub episodes: Vec<DriftEpisode>,
    pub retrains: Vec<RetrainRecord>,
    pub sink: ObsSink,
    pub tracer: Tracer,
}

impl SimHooks for DriftPilot {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        if link != self.cfg.tap {
            return;
        }
        if !self.bootstrapped {
            self.bootstrapped = true;
            self.arm_window(now, cmds);
        }
        let rec = PacketRecord::from_packet(now, Direction::from_border_dir(dir), packet);
        self.ingest_record(rec);
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        if token == Self::WINDOW_TOKEN {
            self.window_tick(now, cmds);
        }
    }
}

/// Run the pipeline over one record window, purely: the devloop seed is
/// the window's content hash, so byte-identical windows yield identical
/// model and program fingerprints at any sim time. Returns the model
/// fingerprint and the compiled program (whose own
/// [`PipelineProgram::fingerprint`] is the program fingerprint).
pub fn retrain_window(records: &[PacketRecord], devloop: &DevLoopConfig) -> (u64, PipelineProgram) {
    let cfg = DevLoopConfig { seed: records_hash(records), ..devloop.clone() };
    let result = run_development_loop(records, &cfg);
    let mut h = FxHasher::default();
    h.write(format!("{:?}", result.student).as_bytes());
    (h.finish(), result.program)
}

/// Content hash of a record window (field-by-field, platform-stable).
pub fn records_hash(records: &[PacketRecord]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(records.len());
    for r in records {
        h.write_u64(r.ts_ns);
        h.write_u8(match r.direction {
            Direction::Inbound => 0,
            Direction::Outbound => 1,
        });
        hash_addr(&mut h, r.src);
        hash_addr(&mut h, r.dst);
        h.write_u8(r.protocol);
        h.write_u16(r.src_port);
        h.write_u16(r.dst_port);
        h.write_u32(r.wire_len);
        h.write_u8(r.ttl);
        let f = r.tcp_flags;
        h.write_u8(
            u8::from(f.syn)
                | u8::from(f.ack) << 1
                | u8::from(f.fin) << 2
                | u8::from(f.rst) << 3
                | u8::from(f.psh) << 4,
        );
        h.write_u64(r.flow_id);
        h.write_u16(r.label_app);
        h.write_u16(r.label_attack);
    }
    h.finish()
}

fn hash_addr(h: &mut FxHasher, addr: IpAddr) {
    match addr {
        IpAddr::V4(v) => {
            h.write_u8(4);
            h.write_u32(u32::from(v));
        }
        IpAddr::V6(v) => {
            h.write_u8(6);
            h.write(&v.octets());
        }
    }
}

/// Map a source address to its routing-scale prefix (v4 /16, v6 /32):
/// the granularity at which an attacker rotates reflector pools.
fn prefix_key(addr: IpAddr) -> IpAddr {
    match addr {
        IpAddr::V4(v) => {
            let o = v.octets();
            IpAddr::V4(Ipv4Addr::new(o[0], o[1], 0, 0))
        }
        IpAddr::V6(v) => {
            let s = v.segments();
            IpAddr::V6(Ipv6Addr::new(s[0], s[1], 0, 0, 0, 0, 0, 0))
        }
    }
}

/// 1 − histogram intersection of normalized heavy-hitter mass: 0.0 for an
/// identical signature, 1.0 when the windows share no mass at all. An
/// empty side scores 0.0 — absence of evidence is not drift.
fn drift_score(reference: &[(IpAddr, u64)], current: &[(IpAddr, u64)]) -> f64 {
    if reference.is_empty() || current.is_empty() {
        return 0.0;
    }
    let ct: u64 = current.iter().map(|&(_, w)| w).sum();
    let rt: u64 = reference.iter().map(|&(_, w)| w).sum();
    if ct == 0 || rt == 0 {
        return 0.0;
    }
    let mut overlap = 0.0;
    for &(key, w) in current {
        if let Some(&(_, rw)) = reference.iter().find(|&&(k, _)| k == key) {
            overlap += (w as f64 / ct as f64).min(rw as f64 / rt as f64);
        }
    }
    (1.0 - overlap).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_capture::TcpFlags;
    use campuslab_dataplane::ProgramVersion;
    use campuslab_features::LabelMode;

    fn rec(ts: u64, src: [u8; 4], proto: u8, sport: u16, len: u32, attack: u16) -> PacketRecord {
        PacketRecord {
            ts_ns: ts,
            direction: Direction::Inbound,
            src: IpAddr::from(src),
            dst: IpAddr::from([10, 1, 1, 10]),
            protocol: proto,
            src_port: sport,
            dst_port: 40_000,
            wire_len: len,
            ttl: 60,
            tcp_flags: TcpFlags::default(),
            flow_id: 0,
            label_app: 1,
            label_attack: attack,
        }
    }

    /// Amplification-shaped window: attacks are big UDP from `sport`.
    fn window(base_ts: u64, n: usize, sport: u16) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        for i in 0..n as u64 {
            out.push(rec(base_ts + i * 3_000, [203, 0, 113, 7], 17, sport, 1_400 + (i % 200) as u32, 1));
            out.push(rec(base_ts + i * 3_000 + 1_000, [198, 51, 100, 9], 6, 443, 200 + (i % 900) as u32, 0));
            out.push(rec(base_ts + i * 3_000 + 2_000, [198, 51, 100, 3], 17, sport, 90 + (i % 40) as u32, 0));
        }
        out
    }

    #[test]
    fn retrain_is_a_pure_function_of_the_window() {
        let w = window(5_000_000, 80, 53);
        let cfg = DevLoopConfig::default();
        let (m1, p1) = retrain_window(&w, &cfg);
        let (m2, p2) = retrain_window(&w.clone(), &cfg);
        assert_eq!(m1, m2);
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        // A one-bit change to the window moves the seed, so the pair is a
        // content fingerprint, not a counter.
        let mut w2 = w;
        w2[0].wire_len += 1;
        assert_ne!(records_hash(&w2), records_hash(&window(5_000_000, 80, 53)));
    }

    #[test]
    fn drift_score_flags_a_port_rotation_and_ignores_steady_state() {
        let steady = vec![(IpAddr::from([17, 0, 53, 0]), 900u64), (IpAddr::from([6, 1, 187, 0]), 100)];
        assert_eq!(drift_score(&steady, &steady), 0.0);
        let rotated = vec![(IpAddr::from([17, 0, 123, 0]), 900u64), (IpAddr::from([6, 1, 187, 0]), 100)];
        let s = drift_score(&steady, &rotated);
        assert!(s > 0.8, "rotation score {s}");
        assert_eq!(drift_score(&[], &steady), 0.0);
        assert_eq!(drift_score(&steady, &[]), 0.0);
    }

    #[test]
    fn pilot_opens_an_episode_and_queues_a_candidate_on_drift() {
        let mut cfg = DriftPilotConfig::new(LinkId(0), 0);
        cfg.min_records = 60;
        let mut pilot = DriftPilot::new(cfg);
        let mut cmds = Commands::default();
        // Window 0: steady DNS-amplification signature.
        for r in window(0, 80, 53) {
            pilot.ingest_record(r);
        }
        pilot.window_tick(SimTime(1_000_000_000), &mut cmds);
        assert!(pilot.episodes.is_empty(), "first window has no reference");
        // Window 1: same signature — no drift, but the periodic schedule
        // has not come due either (retrain_every = 2s, last at t=1s... so
        // the first periodic retrain lands here at 2s since ZERO).
        for r in window(1_000_000_000, 80, 53) {
            pilot.ingest_record(r);
        }
        pilot.window_tick(SimTime(2_000_000_000), &mut cmds);
        assert!(pilot.episodes.is_empty());
        assert_eq!(pilot.obs.retrains_periodic(), 1);
        let queued = pilot.take_candidates();
        assert_eq!(queued.len(), 1, "fresh program differs from fp 0");
        pilot.on_guard_accepted(&queued[0].version());
        // Window 2: the attacker rotates to NTP-style port 123.
        for r in window(2_000_000_000, 80, 123) {
            pilot.ingest_record(r);
        }
        pilot.window_tick(SimTime(3_000_000_000), &mut cmds);
        assert_eq!(pilot.episodes.len(), 1);
        assert_eq!(pilot.obs.drift_onsets(), 1);
        assert_eq!(pilot.obs.retrains_drift(), 1);
        assert!(pilot.episodes[0].mitigated.is_none());
        // The guard commits a pilot candidate after the onset: the episode
        // closes and the drift TTM lands. The drift retrain may or may not
        // have compiled to new bytes (that is the model's call); commit
        // whichever pilot program is in play.
        let committed = match pilot.take_candidates().first() {
            Some(p) => {
                let v = p.version();
                pilot.on_guard_accepted(&v);
                v
            }
            None => queued[0].version(),
        };
        pilot.on_guard_event(&RolloutEvent {
            at: SimTime(6_000_000_000),
            program: committed.clone(),
            kind: RolloutEventKind::Committed,
        });
        assert_eq!(pilot.episodes[0].mitigated, Some(SimTime(6_000_000_000)));
        assert_eq!(pilot.obs.drift_mitigated(), 1);
        assert_eq!(pilot.obs.drift_ttm_histogram().count(), 1);
        assert_eq!(pilot.deployed_fingerprint(), committed.fingerprint);
    }

    #[test]
    fn refused_candidates_are_retried_and_barred_ones_are_not_resubmitted() {
        let mut pilot = DriftPilot::new(DriftPilotConfig::new(LinkId(0), 0));
        let mut cmds = Commands::default();
        for r in window(0, 80, 53) {
            pilot.ingest_record(r);
        }
        pilot.window_tick(SimTime(1_000_000_000), &mut cmds);
        for r in window(1_000_000_000, 80, 53) {
            pilot.ingest_record(r);
        }
        pilot.window_tick(SimTime(2_000_000_000), &mut cmds);
        let queued = pilot.take_candidates();
        assert_eq!(queued.len(), 1);
        let version = queued[0].version();
        // Guard is busy: the candidate is requeued for the next tick.
        pilot.on_guard_refused(queued[0].clone());
        assert_eq!(pilot.obs.guard_refused(), 1);
        let retry = pilot.take_candidates();
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].fingerprint(), version.fingerprint);
        // Accepted, then vetoed: the fingerprint is barred, so an
        // identical retrain result is not submitted again.
        pilot.on_guard_accepted(&version);
        pilot.on_guard_event(&RolloutEvent {
            at: SimTime(3_000_000_000),
            program: version.clone(),
            kind: RolloutEventKind::Vetoed(crate::rollout::SloViolation::FalsePositiveRate),
        });
        assert_eq!(pilot.obs.vetoed(), 1);
        // Retrain over the unchanged buffer: the content hash (and so the
        // whole pipeline) reproduces the barred program exactly, and the
        // pilot refuses to resubmit it.
        pilot.retrain(SimTime(2_500_000_000), RetrainTrigger::Periodic);
        assert!(pilot.take_candidates().is_empty(), "barred fingerprint resubmitted");
        let last = pilot.retrains.last().unwrap();
        assert_eq!(last.program_fingerprint, version.fingerprint);
        assert_eq!(last.outcome, RetrainOutcome::Barred);
    }

    #[test]
    fn events_about_foreign_programs_are_ignored() {
        let mut pilot = DriftPilot::new(DriftPilotConfig::new(LinkId(0), 0));
        pilot.on_guard_event(&RolloutEvent {
            at: SimTime(1),
            program: ProgramVersion { name: "not-ours".into(), fingerprint: 99 },
            kind: RolloutEventKind::Committed,
        });
        assert_eq!(pilot.obs.committed(), 0);
        assert_eq!(pilot.deployed_fingerprint(), 0);
    }

    #[test]
    fn incremental_features_match_batch_aggregate() {
        let mut pilot = DriftPilot::new(DriftPilotConfig::new(LinkId(0), 0));
        let mut records = window(0, 50, 53);
        records.extend(window(1_000_000_000, 50, 123));
        records.sort_by_key(|r| r.ts_ns);
        for r in &records {
            pilot.ingest_record(r.clone());
        }
        let streamed = pilot.flush_features();
        let batch = campuslab_features::aggregate(
            &records,
            WindowConfig::default(),
            LabelMode::BinaryAttack,
        );
        assert_eq!(streamed, batch);
        assert!(!streamed.is_empty());
    }
}
