//! The online mitigation controller: watches the border tap, runs the
//! window detector, and — after the placement-dependent installation
//! latency — inserts victim-scoped drop rules into the border switch's
//! filter bank. This is experiment E8's machinery: the same detector at
//! the switch, the controller, or "the cloud" differ only in when the
//! rule lands.

use crate::detector::{Detection, FrozenDetector, StreamingWindowDetector};
use crate::fastloop::FastLoopStats;
use crate::observe::{ControllerObs, DetectorObs};
use crate::rollout::{CircuitBreaker, CircuitBreakerPolicy};
use campuslab_obs::{ObsSink, OpenSpan, Tracer};
use campuslab_capture::{Direction, PacketRecord};
use campuslab_dataplane::{Action, FieldExtractor, PipelineProgram, PipelineRuntime};
use campuslab_netsim::{
    Commands, Dir, FilterAction, LinkId, Packet, PacketFilter, SimDuration, SimTime,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// Where the inference tier runs (experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Compiled rules pre-installed in the switch: reacts from packet one.
    Switch,
    /// An on-campus controller: one detection window + a small install RTT.
    Controller,
    /// An off-campus analysis service: window + WAN RTT + batch latency.
    Cloud,
}

impl Placement {
    /// Time from "detection decided" to "rule active in the switch".
    pub fn install_delay(self) -> SimDuration {
        match self {
            Placement::Switch => SimDuration::ZERO,
            Placement::Controller => SimDuration::from_millis(2),
            Placement::Cloud => SimDuration::from_millis(150),
        }
    }
}

/// Which traffic a bank entry applies to.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ProgramScope {
    /// Every packet through the bank.
    Global,
    /// Only traffic to one victim host (the mitigation case).
    Victim(IpAddr),
    /// Only traffic to a fixed destination cohort (the canary case).
    /// Kept sorted for deterministic lookup.
    AnyOf(Vec<IpAddr>),
}

impl ProgramScope {
    fn admits(&self, dst: IpAddr) -> bool {
        match self {
            ProgramScope::Global => true,
            ProgramScope::Victim(v) => *v == dst,
            ProgramScope::AnyOf(hosts) => hosts.binary_search(&dst).is_ok(),
        }
    }
}

struct BankEntry {
    scope: ProgramScope,
    /// Content identity of the installed program, so a rollback can
    /// remove exactly the candidate's entries.
    fingerprint: u64,
    runtime: PipelineRuntime,
}

struct BankState {
    extractor: FieldExtractor,
    entries: Vec<BankEntry>,
    stats: FastLoopStats,
}

/// A handle for inserting rules into (and reading stats from) a running
/// [`BankFilter`] — the control channel to the switch.
#[derive(Clone)]
pub struct BankHandle {
    shared: Arc<Mutex<BankState>>,
}

impl BankHandle {
    /// Insert a program, optionally scoped to one destination.
    pub fn add_program(&self, scope: Option<IpAddr>, program: PipelineProgram) {
        let scope = match scope {
            Some(victim) => ProgramScope::Victim(victim),
            None => ProgramScope::Global,
        };
        self.install(scope, program);
    }

    /// Insert a program under an explicit scope.
    pub fn install(&self, mut scope: ProgramScope, program: PipelineProgram) {
        if let ProgramScope::AnyOf(hosts) = &mut scope {
            hosts.sort_unstable();
        }
        let fingerprint = program.fingerprint();
        self.shared
            .lock()
            .entries
            .push(BankEntry { scope, fingerprint, runtime: program.into_runtime() });
    }

    /// Remove every rule scoped to `victim` (attack over).
    pub fn remove_scope(&self, victim: IpAddr) {
        self.shared
            .lock()
            .entries
            .retain(|e| e.scope != ProgramScope::Victim(victim));
    }

    /// Remove every entry carrying this program fingerprint (rollback).
    /// Returns how many entries left the bank.
    pub fn remove_fingerprint(&self, fingerprint: u64) -> usize {
        let mut state = self.shared.lock();
        let before = state.entries.len();
        state.entries.retain(|e| e.fingerprint != fingerprint);
        before - state.entries.len()
    }

    /// True when an entry with this program fingerprint is installed.
    pub fn has_fingerprint(&self, fingerprint: u64) -> bool {
        self.shared.lock().entries.iter().any(|e| e.fingerprint == fingerprint)
    }

    /// Number of installed programs.
    pub fn len(&self) -> usize {
        self.shared.lock().entries.len()
    }

    /// True when no programs are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freeze the bank's installed programs + aggregate stats for a
    /// checkpoint. The field extractor is construction-time config and is
    /// rebuilt by whoever re-creates the bank.
    pub fn freeze(&self) -> FrozenBank {
        let state = self.shared.lock();
        FrozenBank {
            entries: state
                .entries
                .iter()
                .map(|e| FrozenBankEntry {
                    scope: e.scope.clone(),
                    fingerprint: e.fingerprint,
                    runtime: e.runtime.clone(),
                })
                .collect(),
            stats: state.stats.clone(),
        }
    }

    /// Apply a frozen image onto this (freshly created) bank: replaces the
    /// installed entries and stats, keeps the extractor.
    pub fn thaw(&self, frozen: FrozenBank) {
        let mut state = self.shared.lock();
        state.entries = frozen
            .entries
            .into_iter()
            .map(|e| BankEntry { scope: e.scope, fingerprint: e.fingerprint, runtime: e.runtime })
            .collect();
        state.stats = frozen.stats;
    }

    /// Snapshot of the aggregate filter statistics.
    pub fn stats(&self) -> FastLoopStatsSnapshot {
        let s = &self.shared.lock().stats;
        FastLoopStatsSnapshot {
            packets: s.packets,
            dropped: s.dropped,
            dropped_attack: s.dropped_attack,
            dropped_benign: s.dropped_benign,
            passed_attack: s.passed_attack,
            first_drop: s.first_drop,
        }
    }
}

/// One installed program in a [`FrozenBank`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenBankEntry {
    pub scope: ProgramScope,
    pub fingerprint: u64,
    pub runtime: PipelineRuntime,
}

/// A [`BankHandle`]'s checkpointable image: installed programs (scope +
/// fingerprint + compiled runtime, including live token-bucket levels)
/// and the aggregate filter statistics.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenBank {
    pub entries: Vec<FrozenBankEntry>,
    pub stats: FastLoopStats,
}

/// A copyable snapshot of [`FastLoopStats`].
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct FastLoopStatsSnapshot {
    pub packets: u64,
    pub dropped: u64,
    pub dropped_attack: u64,
    pub dropped_benign: u64,
    pub passed_attack: u64,
    pub first_drop: Option<SimTime>,
}

impl FastLoopStatsSnapshot {
    /// Of everything dropped, the fraction that was truly attack traffic.
    pub fn drop_precision(&self) -> f64 {
        if self.dropped == 0 {
            return 1.0;
        }
        self.dropped_attack as f64 / self.dropped as f64
    }

    /// Of all attack packets seen, the fraction dropped.
    pub fn attack_recall(&self) -> f64 {
        let attacks = self.dropped_attack + self.passed_attack;
        if attacks == 0 {
            return 1.0;
        }
        self.dropped_attack as f64 / attacks as f64
    }
}

/// The switch-resident filter bank: evaluates every installed program on
/// every packet (scoped entries only on their victim's traffic).
pub struct BankFilter {
    shared: Arc<Mutex<BankState>>,
}

impl BankFilter {
    /// Create an empty bank; install into the simulator, keep the handle.
    pub fn new(extractor: FieldExtractor) -> (Box<BankFilter>, BankHandle) {
        let shared = Arc::new(Mutex::new(BankState {
            extractor,
            entries: Vec::new(),
            stats: FastLoopStats::default(),
        }));
        (
            Box::new(BankFilter { shared: Arc::clone(&shared) }),
            BankHandle { shared },
        )
    }
}

impl PacketFilter for BankFilter {
    fn decide(&mut self, now: SimTime, packet: &Packet) -> FilterAction {
        let mut state = self.shared.lock();
        state.stats.packets += 1;
        let is_attack = packet.truth.is_malicious();
        let fields = state.extractor.from_packet(packet);
        let dst = packet.network.dst();
        let mut verdict = FilterAction::Forward;
        // Split borrow: walk entries while updating stats afterwards.
        let state = &mut *state;
        let wire_len = packet.wire_len() as u32;
        for entry in &mut state.entries {
            if !entry.scope.admits(dst) {
                continue;
            }
            if entry.runtime.process_at(now.as_nanos(), &fields, wire_len) == Action::Drop {
                verdict = FilterAction::Drop;
                break;
            }
        }
        if verdict == FilterAction::Drop {
            state.stats.dropped += 1;
            if is_attack {
                state.stats.dropped_attack += 1;
            } else {
                state.stats.dropped_benign += 1;
            }
            state.stats.first_drop.get_or_insert(now);
        } else if is_attack {
            state.stats.passed_attack += 1;
        }
        verdict
    }

    fn name(&self) -> &str {
        "filter-bank"
    }
}

/// One detection-to-mitigation episode.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MitigationEvent {
    pub victim: IpAddr,
    pub detected_at: SimTime,
    pub installed_at: SimTime,
    pub confidence: f64,
    /// Install attempts spent before the rule landed (1 = first try).
    pub attempts: u32,
}

/// Why the controller abandoned a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GiveUpReason {
    /// The retry budget ran out.
    Exhausted,
    /// The per-detection timeout would be exceeded before the next retry.
    Timeout,
    /// The install-channel circuit breaker was open.
    CircuitOpen,
    /// A monitored service (e.g. the campus resolver) abandoned client
    /// work — a ServFail with no stale fallback. Service-level failure
    /// feeding the same rollback-evidence channel as install failures.
    ServiceFailure,
}

/// A detection the controller gave up on: every install attempt flaked
/// and the retry budget or timeout ran out — or the circuit breaker
/// refused to send more. Never silently dropped: the rollout guard
/// treats each of these as a rollback-eligible failure.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InstallGiveUp {
    pub victim: IpAddr,
    pub detected_at: SimTime,
    pub gave_up_at: SimTime,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// Which limit ended the episode.
    pub reason: GiveUpReason,
}

/// Reliability model for the controller→switch install channel, with the
/// retry discipline a production controller needs: bounded exponential
/// backoff, a retry budget, and a wall-clock timeout per detection.
#[derive(Debug, Clone)]
pub struct InstallPolicy {
    /// Probability one install attempt flakes (RPC lost, switch busy).
    pub failure_probability: f64,
    /// Retry budget per detection (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each failure.
    pub base_backoff: SimDuration,
    /// Backoff growth cap.
    pub max_backoff: SimDuration,
    /// Give up once this much time passed since the first attempt.
    pub timeout: SimDuration,
    /// Seed for the install-flake RNG — independent of the network RNG so
    /// chaos in the control channel never perturbs the data plane.
    pub seed: u64,
    /// Optional circuit breaker over the install channel: after a streak
    /// of consecutive failures the controller stops hammering the switch
    /// and sheds episodes with a typed give-up instead. `None` (the
    /// default) preserves the plain retry discipline exactly.
    pub breaker: Option<CircuitBreakerPolicy>,
}

impl Default for InstallPolicy {
    fn default() -> Self {
        InstallPolicy {
            failure_probability: 0.0,
            max_attempts: 5,
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(100),
            timeout: SimDuration::from_secs(2),
            seed: 0x1257A11,
            breaker: None,
        }
    }
}

impl InstallPolicy {
    /// Backoff before retry number `attempts` (bounded doubling).
    fn backoff_after(&self, attempts: u32) -> SimDuration {
        let exp = attempts.saturating_sub(1).min(20);
        let ns = self.base_backoff.as_nanos().saturating_mul(1u64 << exp);
        SimDuration::from_nanos(ns.min(self.max_backoff.as_nanos()))
    }
}

/// Controller configuration.
pub struct MitigationControllerConfig {
    /// The tapped link the controller watches.
    pub tap: LinkId,
    pub placement: Placement,
    /// Confidence gate for acting (the paper's >= 0.9).
    pub gate: f64,
    pub window_ns: u64,
    pub min_packets: usize,
    /// The signature program installed (scoped to the victim) on detection.
    pub program: PipelineProgram,
    /// Install-channel reliability; `Default` is a perfectly reliable
    /// channel, so existing callers behave exactly as before.
    pub install: InstallPolicy,
    /// Known tap blackout windows: the controller sees nothing during them
    /// and announces them to the detector as telemetry gaps.
    pub tap_blackouts: Vec<campuslab_netsim::Outage>,
}

/// A detection whose install is in flight (possibly mid-retry).
struct PendingInstall {
    det: Detection,
    attempts: u32,
    first_attempt: SimTime,
    /// The episode's open trace span; closed at install or give-up.
    span: OpenSpan,
}

/// The controller: an implementation of `SimHooks` that closes the loop
/// from tap observation to rule installation.
pub struct MitigationController {
    cfg: MitigationControllerConfig,
    detector: StreamingWindowDetector,
    bank: BankHandle,
    pending: HashMap<u64, PendingInstall>,
    next_token: u64,
    install_rng: rand::rngs::StdRng,
    /// Circuit breaker over the install channel, when policy asks for one.
    breaker: Option<CircuitBreaker>,
    /// Completed episodes.
    pub events: Vec<MitigationEvent>,
    /// Detections abandoned after the retry budget/timeout ran out.
    pub giveups: Vec<InstallGiveUp>,
    /// Observatory sink + episode spans (attempts, flakes, installs,
    /// give-ups, time-to-mitigation).
    pub obs: ControllerObs,
}

impl MitigationController {
    /// Timer-token namespace for this controller (avoids collisions with
    /// other hook users).
    const TOKEN_BASE: u64 = 0x4D49_5449_0000_0000; // "MITI"

    /// Build a controller around a trained window model and a bank handle.
    pub fn new(
        cfg: MitigationControllerConfig,
        model: Box<dyn campuslab_ml::Classifier + Send>,
        bank: BankHandle,
    ) -> Self {
        let mut detector = StreamingWindowDetector::new(
            model,
            campuslab_features::WindowConfig {
                window_ns: cfg.window_ns,
                min_packets: cfg.min_packets,
            },
            cfg.gate,
        );
        // Known blackouts become explicit telemetry gaps, so windows the
        // controller half-saw are de-skewed rather than misread as calm.
        for w in &cfg.tap_blackouts {
            detector.announce_gap(w.from.as_nanos(), w.until.as_nanos());
        }
        let install_rng = rand::SeedableRng::seed_from_u64(cfg.install.seed);
        let breaker = cfg.install.breaker.map(CircuitBreaker::new);
        MitigationController {
            cfg,
            detector,
            bank,
            pending: HashMap::new(),
            next_token: 0,
            install_rng,
            breaker,
            events: Vec::new(),
            giveups: Vec::new(),
            obs: ControllerObs::new(),
        }
    }

    /// The wrapped detector's Observatory sink.
    pub fn detector_obs(&self) -> &DetectorObs {
        &self.detector.obs
    }

    /// The install-channel circuit breaker, when the policy carries one.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Move both Observatory bundles (controller + wrapped detector) out of
    /// a finished controller, leaving zeroed replacements behind. Used by
    /// the testbed to carry run telemetry past the controller's lifetime.
    pub fn take_obs(&mut self) -> (ControllerObs, DetectorObs) {
        (std::mem::take(&mut self.obs), std::mem::take(&mut self.detector.obs))
    }

    /// Freeze the controller's dynamic state for a checkpoint: detector
    /// image, in-flight installs (sorted by timer token for determinism),
    /// install-RNG state, breaker, episode history, and telemetry values.
    /// Config, model, and bank handle are reconstructed by the driver.
    pub fn freeze(&self) -> FrozenController {
        let mut pending: Vec<(u64, FrozenPending)> = self
            .pending
            .iter()
            .map(|(&token, p)| {
                (
                    token,
                    FrozenPending {
                        det: p.det.clone(),
                        attempts: p.attempts,
                        first_attempt: p.first_attempt,
                        span: p.span.index(),
                    },
                )
            })
            .collect();
        pending.sort_by_key(|&(token, _)| token);
        FrozenController {
            detector: self.detector.freeze(),
            pending,
            next_token: self.next_token,
            install_rng: self.install_rng.state(),
            breaker: self.breaker.clone(),
            events: self.events.clone(),
            giveups: self.giveups.clone(),
            sink: self.obs.sink.clone(),
            tracer: self.obs.tracer.clone(),
        }
    }

    /// Apply a frozen image onto a freshly constructed controller (same
    /// config, model, and bank handle). The bank itself is thawed
    /// separately via [`BankHandle::thaw`].
    pub fn thaw_state(&mut self, frozen: FrozenController) {
        self.detector.thaw_state(frozen.detector);
        self.pending = frozen
            .pending
            .into_iter()
            .map(|(token, p)| {
                (
                    token,
                    PendingInstall {
                        det: p.det,
                        attempts: p.attempts,
                        first_attempt: p.first_attempt,
                        span: OpenSpan::from_index(p.span),
                    },
                )
            })
            .collect();
        self.next_token = frozen.next_token;
        self.install_rng = rand::rngs::StdRng::from_state(frozen.install_rng);
        self.breaker = frozen.breaker;
        self.events = frozen.events;
        self.giveups = frozen.giveups;
        self.obs = ControllerObs::new();
        self.obs.sink = frozen.sink;
        self.obs.tracer = frozen.tracer;
    }

    fn handle_detections(&mut self, now: SimTime, detections: Vec<Detection>, cmds: &mut Commands) {
        for det in detections {
            // One active mitigation per victim.
            if self.events.iter().any(|e| e.victim == det.dst)
                || self.pending.values().any(|p| p.det.dst == det.dst)
            {
                continue;
            }
            let token = Self::TOKEN_BASE + self.next_token;
            self.next_token += 1;
            let at = now + self.cfg.placement.install_delay();
            let span = self.obs.on_episode_start(&det.dst.to_string(), now.as_nanos());
            self.pending
                .insert(token, PendingInstall { det, attempts: 0, first_attempt: at, span });
            cmds.set_timer(at, token);
        }
    }
}

/// An in-flight install in a [`FrozenController`]; the open episode span
/// is carried as its tracer index.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenPending {
    pub det: Detection,
    pub attempts: u32,
    pub first_attempt: SimTime,
    pub span: usize,
}

/// A [`MitigationController`]'s checkpointable image. Deliberately NOT
/// captured: the config (scenario-derived), the trained model (retrained
/// deterministically), and the bank handle (frozen as [`FrozenBank`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenController {
    pub detector: FrozenDetector,
    /// In-flight installs keyed by timer token, sorted ascending.
    pub pending: Vec<(u64, FrozenPending)>,
    pub next_token: u64,
    /// xoshiro256++ word state of the install-flake RNG.
    pub install_rng: [u64; 4],
    pub breaker: Option<CircuitBreaker>,
    pub events: Vec<MitigationEvent>,
    pub giveups: Vec<InstallGiveUp>,
    pub sink: ObsSink,
    pub tracer: Tracer,
}

impl campuslab_netsim::SimHooks for MitigationController {
    fn on_tap(&mut self, now: SimTime, link: LinkId, dir: Dir, packet: &Packet, cmds: &mut Commands) {
        if link != self.cfg.tap {
            return;
        }
        // During a tap blackout the controller is blind; the detector
        // already knows the window is partially covered.
        if !self.cfg.tap_blackouts.is_empty()
            && self.cfg.tap_blackouts.iter().any(|w| w.contains(now))
        {
            return;
        }
        let rec = PacketRecord::from_packet(now, Direction::from_border_dir(dir), packet);
        let detections = self.detector.observe(&rec);
        self.handle_detections(now, detections, cmds);
    }

    fn on_timer(&mut self, now: SimTime, token: u64, cmds: &mut Commands) {
        let Some(mut p) = self.pending.remove(&token) else { return };
        // An open circuit breaker sheds the episode before any attempt is
        // sent (or any RNG is drawn): a typed give-up, never a silent drop.
        if let Some(b) = self.breaker.as_mut() {
            if !b.allows(now) {
                self.obs.on_giveup(p.span, now.as_nanos());
                self.giveups.push(InstallGiveUp {
                    victim: p.det.dst,
                    detected_at: SimTime(p.det.window_end_ns),
                    gave_up_at: now,
                    attempts: p.attempts,
                    reason: GiveUpReason::CircuitOpen,
                });
                return;
            }
        }
        p.attempts += 1;
        let policy = &self.cfg.install;
        let flaked = policy.failure_probability > 0.0
            && rand::Rng::gen::<f64>(&mut self.install_rng) < policy.failure_probability;
        self.obs.on_attempt(flaked);
        if !flaked {
            if let Some(b) = self.breaker.as_mut() {
                b.on_success();
            }
            self.bank.add_program(Some(p.det.dst), self.cfg.program.clone());
            self.obs.on_installed(p.span, p.det.window_end_ns, now.as_nanos());
            self.events.push(MitigationEvent {
                victim: p.det.dst,
                detected_at: SimTime(p.det.window_end_ns),
                installed_at: now,
                confidence: p.det.confidence,
                attempts: p.attempts,
            });
            return;
        }
        if let Some(b) = self.breaker.as_mut() {
            b.on_failure(now);
        }
        // The attempt flaked. Retry with bounded exponential backoff while
        // budget and timeout allow; otherwise surface the give-up instead
        // of silently losing the mitigation.
        let deadline = p.first_attempt + policy.timeout;
        let backoff = policy.backoff_after(p.attempts);
        let reason = if p.attempts >= policy.max_attempts {
            Some(GiveUpReason::Exhausted)
        } else if now + backoff > deadline {
            Some(GiveUpReason::Timeout)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.obs.on_giveup(p.span, now.as_nanos());
            self.giveups.push(InstallGiveUp {
                victim: p.det.dst,
                detected_at: SimTime(p.det.window_end_ns),
                gave_up_at: now,
                attempts: p.attempts,
                reason,
            });
            return;
        }
        let token = Self::TOKEN_BASE + self.next_token;
        self.next_token += 1;
        cmds.set_timer(now + backoff, token);
        self.pending.insert(token, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_dataplane::{TableEntry, TernaryMatch, FIELD_ORDER};
    use campuslab_netsim::Prefix;
    use campuslab_netsim::{GroundTruth, PacketBuilder, Payload};
    use std::net::Ipv4Addr;

    fn extractor() -> FieldExtractor {
        FieldExtractor::new(Prefix::v4(Ipv4Addr::new(10, 1, 0, 0), 16))
    }

    fn drop_udp53_program() -> PipelineProgram {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[1] = TernaryMatch::exact(53, 16);
        matches[10] = TernaryMatch::exact(1, 1);
        PipelineProgram::new(
            "sig",
            vec![TableEntry { matches, action: Action::Drop, priority: 1, confidence: 0.95 }],
        )
    }

    fn amp_packet(b: &mut PacketBuilder, dst: Ipv4Addr) -> Packet {
        b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 1),
            dst,
            53,
            40_000,
            Payload::Synthetic(1_200),
            64,
            GroundTruth { flow_id: 0, app_class: 1, attack: Some(1) },
        )
    }

    #[test]
    fn empty_bank_forwards_everything() {
        let (mut filter, handle) = BankFilter::new(extractor());
        let mut b = PacketBuilder::new();
        let pkt = amp_packet(&mut b, Ipv4Addr::new(10, 1, 1, 10));
        assert_eq!(filter.decide(SimTime::ZERO, &pkt), FilterAction::Forward);
        assert!(handle.is_empty());
        let s = handle.stats();
        assert_eq!(s.packets, 1);
        assert_eq!(s.passed_attack, 1);
    }

    #[test]
    fn scoped_rule_installs_live_and_drops() {
        let (mut filter, handle) = BankFilter::new(extractor());
        let victim = Ipv4Addr::new(10, 1, 1, 10);
        let mut b = PacketBuilder::new();
        // Before installation: forwarded.
        assert_eq!(
            filter.decide(SimTime::ZERO, &amp_packet(&mut b, victim)),
            FilterAction::Forward
        );
        handle.add_program(Some(IpAddr::V4(victim)), drop_udp53_program());
        assert_eq!(handle.len(), 1);
        // After installation: dropped for the victim, not for others.
        assert_eq!(
            filter.decide(SimTime::from_millis(1), &amp_packet(&mut b, victim)),
            FilterAction::Drop
        );
        assert_eq!(
            filter.decide(SimTime::from_millis(2), &amp_packet(&mut b, Ipv4Addr::new(10, 1, 2, 2))),
            FilterAction::Forward
        );
        let s = handle.stats();
        assert_eq!(s.dropped, 1);
        assert_eq!(s.dropped_attack, 1);
        assert_eq!(s.first_drop, Some(SimTime::from_millis(1)));
        // Removal restores forwarding.
        handle.remove_scope(IpAddr::V4(victim));
        assert!(handle.is_empty());
        assert_eq!(
            filter.decide(SimTime::from_millis(3), &amp_packet(&mut b, victim)),
            FilterAction::Forward
        );
    }

    /// A model that never fires — controller tests drive detections by hand.
    struct NeverModel;
    impl campuslab_ml::Classifier for NeverModel {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba(&self, _row: &[f64]) -> Vec<f64> {
            vec![1.0, 0.0]
        }
    }

    fn controller_with(install: InstallPolicy) -> (MitigationController, BankHandle) {
        let (_, handle) = BankFilter::new(extractor());
        let ctrl = MitigationController::new(
            MitigationControllerConfig {
                tap: LinkId(0),
                placement: Placement::Controller,
                gate: 0.9,
                window_ns: 1_000_000_000,
                min_packets: 3,
                program: drop_udp53_program(),
                install,
                tap_blackouts: Vec::new(),
            },
            Box::new(NeverModel),
            handle.clone(),
        );
        (ctrl, handle)
    }

    fn detection(dst: IpAddr) -> crate::detector::Detection {
        crate::detector::Detection {
            dst,
            window_end_ns: 1_000_000_000,
            class: 1,
            confidence: 0.95,
            packets: 100,
        }
    }

    #[test]
    fn reliable_install_lands_on_first_attempt() {
        let (mut ctrl, handle) = controller_with(InstallPolicy::default());
        let victim: IpAddr = "10.1.1.10".parse().unwrap();
        let mut cmds = Commands::default();
        ctrl.handle_detections(SimTime::from_secs(1), vec![detection(victim)], &mut cmds);
        use campuslab_netsim::SimHooks;
        ctrl.on_timer(SimTime::from_secs(1), MitigationController::TOKEN_BASE, &mut cmds);
        assert_eq!(ctrl.events.len(), 1);
        assert_eq!(ctrl.events[0].attempts, 1);
        assert!(ctrl.giveups.is_empty());
        assert_eq!(handle.len(), 1);
    }

    #[test]
    fn flaky_install_retries_then_gives_up_within_budget() {
        let (mut ctrl, handle) = controller_with(InstallPolicy {
            failure_probability: 1.0,
            max_attempts: 3,
            ..InstallPolicy::default()
        });
        let victim: IpAddr = "10.1.1.10".parse().unwrap();
        let mut cmds = Commands::default();
        let t0 = SimTime::from_secs(1);
        ctrl.handle_detections(t0, vec![detection(victim)], &mut cmds);
        use campuslab_netsim::SimHooks;
        // Every attempt flakes; tokens are sequential.
        let base = MitigationController::TOKEN_BASE;
        ctrl.on_timer(t0, base, &mut cmds);
        assert!(ctrl.giveups.is_empty(), "one failure must not give up");
        ctrl.on_timer(t0 + SimDuration::from_millis(2), base + 1, &mut cmds);
        ctrl.on_timer(t0 + SimDuration::from_millis(6), base + 2, &mut cmds);
        assert!(ctrl.events.is_empty());
        assert_eq!(ctrl.giveups.len(), 1, "budget of 3 exhausted");
        assert_eq!(ctrl.giveups[0].attempts, 3);
        assert_eq!(ctrl.giveups[0].victim, victim);
        assert!(handle.is_empty(), "no rule must land after a give-up");
    }

    #[test]
    fn flaky_install_gives_up_on_timeout() {
        let (mut ctrl, _handle) = controller_with(InstallPolicy {
            failure_probability: 1.0,
            max_attempts: 100,
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(10),
            timeout: SimDuration::from_millis(15),
            ..InstallPolicy::default()
        });
        let victim: IpAddr = "10.1.1.10".parse().unwrap();
        let mut cmds = Commands::default();
        let t0 = SimTime::from_secs(1);
        ctrl.handle_detections(t0, vec![detection(victim)], &mut cmds);
        use campuslab_netsim::SimHooks;
        let base = MitigationController::TOKEN_BASE;
        // First attempt at t0+2ms flakes; retry would land at +12ms (ok,
        // within the 15ms deadline), second flake at +12ms would retry at
        // +22ms > deadline -> give up.
        let first = t0 + Placement::Controller.install_delay();
        ctrl.on_timer(first, base, &mut cmds);
        assert!(ctrl.giveups.is_empty());
        ctrl.on_timer(first + SimDuration::from_millis(10), base + 1, &mut cmds);
        assert_eq!(ctrl.giveups.len(), 1);
        assert_eq!(ctrl.giveups[0].attempts, 2);
    }

    #[test]
    fn open_breaker_sheds_with_typed_giveup_not_silent_drop() {
        use crate::rollout::{BreakerState, CircuitBreakerPolicy};
        let (mut ctrl, handle) = controller_with(InstallPolicy {
            failure_probability: 1.0,
            max_attempts: 5,
            breaker: Some(CircuitBreakerPolicy {
                open_after: 2,
                cooldown: SimDuration::from_millis(250),
            }),
            ..InstallPolicy::default()
        });
        let victim: IpAddr = "10.1.1.10".parse().unwrap();
        let mut cmds = Commands::default();
        let t0 = SimTime::from_secs(1);
        ctrl.handle_detections(t0, vec![detection(victim)], &mut cmds);
        use campuslab_netsim::SimHooks;
        let base = MitigationController::TOKEN_BASE;
        // Two flaked attempts trip the breaker...
        ctrl.on_timer(t0, base, &mut cmds);
        assert_eq!(ctrl.breaker().unwrap().state(), BreakerState::Closed);
        ctrl.on_timer(t0 + SimDuration::from_millis(2), base + 1, &mut cmds);
        assert_eq!(ctrl.breaker().unwrap().state(), BreakerState::Open);
        assert!(ctrl.giveups.is_empty(), "retry budget not yet exhausted");
        // ...so the already-scheduled third retry fires into an open
        // circuit and is shed as a *recorded* give-up, not a lost episode.
        ctrl.on_timer(t0 + SimDuration::from_millis(6), base + 2, &mut cmds);
        assert_eq!(ctrl.giveups.len(), 1);
        assert_eq!(ctrl.giveups[0].reason, GiveUpReason::CircuitOpen);
        assert_eq!(ctrl.giveups[0].attempts, 2, "no attempt is made against an open circuit");
        assert!(ctrl.events.is_empty());
        assert!(handle.is_empty());

        // After the cooldown a new episode gets exactly one half-open
        // probe; the probe flaking re-opens immediately.
        let t1 = t0 + SimDuration::from_millis(400);
        ctrl.handle_detections(t1, vec![detection("10.1.2.20".parse().unwrap())], &mut cmds);
        ctrl.on_timer(t1 + SimDuration::from_millis(2), base + 3, &mut cmds);
        assert_eq!(ctrl.breaker().unwrap().state(), BreakerState::Open);
        assert_eq!(ctrl.breaker().unwrap().opens, 2);
        // Its pending retry is shed on arrival, again with the typed reason.
        ctrl.on_timer(t1 + SimDuration::from_millis(4), base + 4, &mut cmds);
        assert_eq!(ctrl.giveups.len(), 2);
        assert_eq!(ctrl.giveups[1].reason, GiveUpReason::CircuitOpen);
    }

    #[test]
    fn breaker_free_policy_retries_exactly_as_before() {
        // InstallPolicy::default() must keep `breaker: None` so existing
        // runs (and their goldens) draw the identical RNG sequence.
        assert!(InstallPolicy::default().breaker.is_none());
        let (ctrl, _handle) = controller_with(InstallPolicy::default());
        assert!(ctrl.breaker().is_none());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = InstallPolicy {
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(10),
            ..InstallPolicy::default()
        };
        assert_eq!(p.backoff_after(1), SimDuration::from_millis(2));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(4));
        assert_eq!(p.backoff_after(3), SimDuration::from_millis(8));
        assert_eq!(p.backoff_after(4), SimDuration::from_millis(10)); // capped
        assert_eq!(p.backoff_after(40), SimDuration::from_millis(10));
    }

    #[test]
    fn placement_delays_are_ordered() {
        assert!(Placement::Switch.install_delay() < Placement::Controller.install_delay());
        assert!(Placement::Controller.install_delay() < Placement::Cloud.install_delay());
    }

    #[test]
    fn snapshot_rates() {
        let s = FastLoopStatsSnapshot {
            packets: 100,
            dropped: 10,
            dropped_attack: 9,
            dropped_benign: 1,
            passed_attack: 3,
            first_drop: None,
        };
        assert!((s.drop_precision() - 0.9).abs() < 1e-12);
        assert!((s.attack_recall() - 0.75).abs() < 1e-12);
    }
}
