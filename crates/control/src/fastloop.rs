//! The fast (online) control loop of Figure 2: a compiled model deployed
//! at a switch ingress, sensing and reacting per packet in "real time".

use campuslab_dataplane::{Action, FieldExtractor, PipelineProgram, PipelineRuntime};
use campuslab_netsim::{FilterAction, Packet, PacketFilter, SimTime};
use parking_lot::Mutex;
use std::net::IpAddr;
use std::sync::Arc;

/// Counters shared between the deployed filter (owned by the simulator)
/// and the experiment harness.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct FastLoopStats {
    pub packets: u64,
    pub dropped: u64,
    /// Ground-truth accounting: what the filter dropped.
    pub dropped_attack: u64,
    pub dropped_benign: u64,
    /// Ground-truth accounting: attack packets it let through.
    pub passed_attack: u64,
    /// First time the filter dropped anything.
    pub first_drop: Option<SimTime>,
}

impl FastLoopStats {
    /// Of everything dropped, the fraction that was truly attack traffic.
    pub fn drop_precision(&self) -> f64 {
        if self.dropped == 0 {
            return 1.0;
        }
        self.dropped_attack as f64 / self.dropped as f64
    }

    /// Of all attack packets seen, the fraction dropped.
    pub fn attack_recall(&self) -> f64 {
        let attacks = self.dropped_attack + self.passed_attack;
        if attacks == 0 {
            return 1.0;
        }
        self.dropped_attack as f64 / attacks as f64
    }
}

/// A compiled pipeline program deployed as a switch ingress filter,
/// optionally scoped to a single destination (the mitigation case: drop
/// matching traffic *to the victim*, touch nothing else).
pub struct DeployedFilter {
    extractor: FieldExtractor,
    runtime: PipelineRuntime,
    scope_dst: Option<IpAddr>,
    stats: Arc<Mutex<FastLoopStats>>,
    name: String,
}

impl DeployedFilter {
    /// Deploy `program` with the given field extractor. Returns the filter
    /// (to install into the simulator) and a shared stats handle.
    pub fn deploy(
        program: PipelineProgram,
        extractor: FieldExtractor,
        scope_dst: Option<IpAddr>,
    ) -> (Box<Self>, Arc<Mutex<FastLoopStats>>) {
        let stats = Arc::new(Mutex::new(FastLoopStats::default()));
        let name = program.name.clone();
        let filter = Box::new(DeployedFilter {
            extractor,
            runtime: program.into_runtime(),
            scope_dst,
            stats: Arc::clone(&stats),
            name,
        });
        let handle = Arc::clone(&filter.stats);
        let _ = stats;
        (filter, handle)
    }
}

impl PacketFilter for DeployedFilter {
    fn decide(&mut self, now: SimTime, packet: &Packet) -> FilterAction {
        let mut stats = self.stats.lock();
        stats.packets += 1;
        let is_attack = packet.truth.is_malicious();
        if let Some(scope) = self.scope_dst {
            if packet.network.dst() != scope {
                if is_attack {
                    stats.passed_attack += 1;
                }
                return FilterAction::Forward;
            }
        }
        let fields = self.extractor.from_packet(packet);
        match self
            .runtime
            .process_at(now.as_nanos(), &fields, packet.wire_len() as u32)
        {
            Action::Drop => {
                stats.dropped += 1;
                if is_attack {
                    stats.dropped_attack += 1;
                } else {
                    stats.dropped_benign += 1;
                }
                stats.first_drop.get_or_insert(now);
                FilterAction::Drop
            }
            _ => {
                if is_attack {
                    stats.passed_attack += 1;
                }
                FilterAction::Forward
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Shadow-verdict accounting for one SLO window (or the run total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShadowWindow {
    /// Mirrored packets evaluated.
    pub mirrored: u64,
    /// Of those, ground-truth benign.
    pub benign: u64,
    /// Benign packets the candidate *would have* dropped.
    pub would_drop_benign: u64,
    /// Attack packets the candidate would have dropped.
    pub would_drop_attack: u64,
}

impl ShadowWindow {
    /// Fraction of benign mirrored traffic the candidate flagged — the
    /// shadow-stage false-positive rate against ground truth.
    pub fn fp_rate(&self) -> f64 {
        if self.benign == 0 {
            return 0.0;
        }
        self.would_drop_benign as f64 / self.benign as f64
    }
}

/// A candidate program evaluated on mirrored tap traffic: verdicts are
/// recorded against packet ground truth but *never* enforced — no packet
/// is dropped by a shadow. This is the rollout guard's shadow stage.
///
/// Serializable wholesale: a mirror is pure state (extractor + compiled
/// runtime + accounting), so checkpoints carry it directly.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct ShadowMirror {
    extractor: FieldExtractor,
    runtime: PipelineRuntime,
    window: ShadowWindow,
    totals: ShadowWindow,
}

impl ShadowMirror {
    /// Mirror `program` over traffic parsed by `extractor`.
    pub fn new(program: PipelineProgram, extractor: FieldExtractor) -> Self {
        ShadowMirror {
            extractor,
            runtime: program.into_runtime(),
            window: ShadowWindow::default(),
            totals: ShadowWindow::default(),
        }
    }

    /// Evaluate one mirrored packet; records the verdict, drops nothing.
    pub fn observe(&mut self, now: SimTime, packet: &Packet) -> Action {
        let fields = self.extractor.from_packet(packet);
        let action = self
            .runtime
            .process_at(now.as_nanos(), &fields, packet.wire_len() as u32);
        let is_attack = packet.truth.is_malicious();
        for w in [&mut self.window, &mut self.totals] {
            w.mirrored += 1;
            if !is_attack {
                w.benign += 1;
            }
            if action == Action::Drop {
                if is_attack {
                    w.would_drop_attack += 1;
                } else {
                    w.would_drop_benign += 1;
                }
            }
        }
        action
    }

    /// Take and reset the current window's accounting.
    pub fn take_window(&mut self) -> ShadowWindow {
        std::mem::take(&mut self.window)
    }

    /// Whole-run accounting (never reset).
    pub fn totals(&self) -> ShadowWindow {
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_dataplane::{TableEntry, TernaryMatch, FIELD_ORDER};
    use campuslab_netsim::{GroundTruth, PacketBuilder, Payload, Prefix};
    use std::net::Ipv4Addr;

    /// A program that drops UDP-from-port-53 (amplification signature).
    fn drop_dns_responses() -> PipelineProgram {
        let mut matches = [TernaryMatch::ANY; FIELD_ORDER.len()];
        matches[1] = TernaryMatch::exact(53, 16); // src_port
        matches[10] = TernaryMatch::exact(1, 1); // is_udp
        PipelineProgram::new(
            "drop-dns-amp",
            vec![TableEntry { matches, action: Action::Drop, priority: 1, confidence: 0.97 }],
        )
    }

    fn extractor() -> FieldExtractor {
        FieldExtractor::new(Prefix::v4(Ipv4Addr::new(10, 1, 0, 0), 16))
    }

    fn amp_packet(b: &mut PacketBuilder, dst: Ipv4Addr, attack: bool) -> Packet {
        b.udp_v4(
            Ipv4Addr::new(203, 0, 113, 1),
            dst,
            53,
            40_000,
            Payload::Synthetic(1_200),
            64,
            GroundTruth { flow_id: 0, app_class: 1, attack: attack.then_some(1) },
        )
    }

    #[test]
    fn deployed_filter_drops_matching_packets() {
        let (mut filter, stats) = DeployedFilter::deploy(drop_dns_responses(), extractor(), None);
        let mut b = PacketBuilder::new();
        let victim = Ipv4Addr::new(10, 1, 1, 10);
        assert_eq!(
            filter.decide(SimTime::from_millis(1), &amp_packet(&mut b, victim, true)),
            FilterAction::Drop
        );
        let benign_web = b.tcp_v4(
            Ipv4Addr::new(10, 1, 1, 11),
            Ipv4Addr::new(203, 0, 113, 2),
            50_000,
            443,
            campuslab_wire_tcp(),
            Payload::Synthetic(100),
            GroundTruth::default(),
        );
        assert_eq!(filter.decide(SimTime::from_millis(2), &benign_web), FilterAction::Forward);
        let s = stats.lock();
        assert_eq!(s.packets, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.dropped_attack, 1);
        assert_eq!(s.first_drop, Some(SimTime::from_millis(1)));
        assert_eq!(s.drop_precision(), 1.0);
        assert_eq!(s.attack_recall(), 1.0);
    }

    fn campuslab_wire_tcp() -> campuslab_wire::TcpRepr {
        campuslab_wire::TcpRepr {
            src_port: 0,
            dst_port: 0,
            seq: 1,
            ack: 0,
            control: campuslab_wire::TcpControl::SYN,
            window: 65535,
            mss: None,
            window_scale: None,
        }
    }

    #[test]
    fn scoped_filter_only_touches_the_victim() {
        let victim = Ipv4Addr::new(10, 1, 1, 10);
        let (mut filter, stats) = DeployedFilter::deploy(
            drop_dns_responses(),
            extractor(),
            Some(IpAddr::V4(victim)),
        );
        let mut b = PacketBuilder::new();
        // Matching signature, but to a different host: forwarded.
        let other = amp_packet(&mut b, Ipv4Addr::new(10, 1, 2, 20), false);
        assert_eq!(filter.decide(SimTime::ZERO, &other), FilterAction::Forward);
        // To the victim: dropped.
        assert_eq!(
            filter.decide(SimTime::ZERO, &amp_packet(&mut b, victim, true)),
            FilterAction::Drop
        );
        assert_eq!(stats.lock().dropped, 1);
    }

    #[test]
    fn ground_truth_accounting_tracks_misses() {
        let (mut filter, stats) = DeployedFilter::deploy(drop_dns_responses(), extractor(), None);
        let mut b = PacketBuilder::new();
        // An attack packet the signature misses (TCP SYN flood).
        let syn = b.tcp_v4(
            Ipv4Addr::new(77, 1, 1, 1),
            Ipv4Addr::new(10, 1, 255, 80),
            1234,
            443,
            campuslab_wire_tcp(),
            Payload::Synthetic(0),
            GroundTruth { flow_id: 0, app_class: 0, attack: Some(2) },
        );
        assert_eq!(filter.decide(SimTime::ZERO, &syn), FilterAction::Forward);
        let s = stats.lock();
        assert_eq!(s.passed_attack, 1);
        assert_eq!(s.attack_recall(), 0.0);
        assert_eq!(s.drop_precision(), 1.0); // nothing dropped yet
    }
}
