//! Pipeline-determinism property suite — the contract DriftPilot's
//! always-on learn→distill→compile→deploy loop is pinned by:
//!
//! * **Retrain purity**: retraining twice over byte-identical datastore
//!   windows yields the same model fingerprint and the same compiled
//!   program fingerprint, at any wall/sim time. The retrain seed is a
//!   pure function of window content (`records_hash`), nothing else.
//! * **Streaming == batch**: DriftPilot's incremental feature windows
//!   equal a one-shot `features::aggregate` extraction over the same
//!   record range — same cells, same order, same float bits.

use campuslab_capture::{Direction, PacketRecord, TcpFlags};
use campuslab_control::{records_hash, retrain_window, DevLoopConfig, DriftPilot, DriftPilotConfig};
use campuslab_features::{aggregate, WindowConfig};
use campuslab_netsim::LinkId;
use proptest::prelude::*;
use proptest::{collection, proptest, ProptestConfig};
use std::net::IpAddr;

fn rec(ts: u64, proto: u8, sport: u16, len: u32, attack: u16, dst_octet: u8) -> PacketRecord {
    PacketRecord {
        ts_ns: ts,
        direction: Direction::Inbound,
        src: IpAddr::from([203, 0, 113, 1]),
        dst: IpAddr::from([10, 1, 1, dst_octet]),
        protocol: proto,
        src_port: sport,
        dst_port: 40_000,
        wire_len: len,
        ttl: 60,
        tcp_flags: TcpFlags::default(),
        flow_id: 0,
        label_app: 1,
        label_attack: attack,
    }
}

/// An amplification-shaped training window with proptest-chosen jitter:
/// big UDP from `sport` labeled attack, interleaved benign TCP/UDP. Both
/// classes always present and ≥ 20 records, so `run_development_loop`'s
/// preconditions hold for every generated case.
fn window_from(jitters: &[(u64, u32)], sport: u16) -> Vec<PacketRecord> {
    let mut out = Vec::new();
    for (i, &(tj, lj)) in jitters.iter().enumerate() {
        let base = i as u64 * 3_000_000 + tj;
        out.push(rec(base, 17, sport, 1_200 + lj, 1, 10));
        out.push(rec(base + 1_000, 6, 443, 200 + lj % 900, 0, 10));
        out.push(rec(base + 2_000, 17, sport, 90 + lj % 40, 0, 10));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Satellite 1: the full retrain pipeline (teacher → distill →
    /// compile) is a pure function of the record window. Two runs over
    /// byte-identical windows produce identical model and program
    /// fingerprints — the property that makes shard-order-independent
    /// retraining sound.
    #[test]
    fn retraining_twice_on_identical_windows_is_fingerprint_identical(
        jitters in collection::vec((0u64..1_000, 0u32..200), 24..=40),
        sport in 1024u16..60_000,
    ) {
        let recs = window_from(&jitters, sport);
        let twin = recs.clone();
        let cfg = DevLoopConfig::default();
        let (model_a, program_a) = retrain_window(&recs, &cfg);
        let (model_b, program_b) = retrain_window(&twin, &cfg);
        prop_assert_eq!(model_a, model_b, "model fingerprints diverged");
        prop_assert_eq!(
            program_a.fingerprint(),
            program_b.fingerprint(),
            "compiled program fingerprints diverged"
        );
        prop_assert_eq!(records_hash(&recs), records_hash(&twin));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The retrain seed sees window content: any single-field edit or a
    /// reorder of two distinct records changes `records_hash`, so a
    /// "same window" claim is a real byte-identity claim.
    #[test]
    fn records_hash_is_content_and_order_sensitive(
        jitters in collection::vec((0u64..1_000, 0u32..200), 8..=16),
        sport in 1024u16..60_000,
        pick in any::<usize>(),
    ) {
        let recs = window_from(&jitters, sport);
        let base = records_hash(&recs);

        let mut edited = recs.clone();
        let i = pick % edited.len();
        edited[i].wire_len += 1;
        prop_assert_ne!(base, records_hash(&edited), "wire_len edit went unseen");

        // Records at stride 3 differ by construction (attack vs benign).
        let mut swapped = recs.clone();
        swapped.swap(0, 1);
        prop_assert_ne!(base, records_hash(&swapped), "reorder went unseen");
    }

    /// Satellite 2: streaming == batch. Feeding time-ordered records
    /// through DriftPilot's incremental window stream and sealing it
    /// yields exactly the cells `features::aggregate` computes one-shot
    /// over the same range (PartialEq covers every float bit).
    #[test]
    fn incremental_feature_windows_match_one_shot_extraction(
        specs in collection::vec(
            (0u64..5_000_000_000u64, any::<bool>(), 0u8..4, 1024u16..2048, 0u32..1_400),
            0..=300,
        ),
    ) {
        let mut recs: Vec<PacketRecord> = specs
            .iter()
            .map(|&(ts, udp, dst, sport, len)| {
                rec(ts, if udp { 17 } else { 6 }, sport, 60 + len, u16::from(len > 1_200), dst)
            })
            .collect();
        recs.sort_by_key(|r| r.ts_ns);

        let cfg = DriftPilotConfig::new(LinkId(0), 0);
        let window = WindowConfig { window_ns: cfg.window.as_nanos(), ..WindowConfig::default() };
        let mode = cfg.devloop.label_mode;
        let mut pilot = DriftPilot::new(cfg);
        for r in &recs {
            pilot.ingest_record(r.clone());
        }
        let streamed = pilot.flush_features();
        let batch = aggregate(&recs, window, mode);
        prop_assert_eq!(streamed, batch);
    }
}
