//! Model extraction: replace a heavyweight black box with an explainable,
//! lightweight surrogate "that closely approximates the original model" —
//! step (ii) of the paper's road to deployment (§5), in the style of
//! Bastani et al.'s DAgger-based extraction [8–10].

use campuslab_ml::{Classifier, Dataset, DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Extraction hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DistillConfig {
    /// Shape of the student tree (shallow = deployable).
    pub tree: TreeConfig,
    /// DAgger rounds: each round queries the teacher on fresh synthetic
    /// inputs near the data manifold and refits the student.
    pub rounds: usize,
    /// Synthetic teacher queries per round.
    pub samples_per_round: usize,
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            tree: TreeConfig::shallow(6),
            rounds: 4,
            samples_per_round: 2_000,
            seed: 0x00D1_5711,
        }
    }
}

/// What extraction produced and how faithful it is.
#[derive(Debug, Clone, Serialize)]
pub struct DistillationReport {
    /// Student/teacher agreement on the provided data.
    pub fidelity: f64,
    /// Student/teacher agreement on held-out synthetic queries.
    pub synthetic_fidelity: f64,
    pub student_nodes: usize,
    pub student_leaves: usize,
    pub student_depth: usize,
    pub teacher_queries: usize,
}

/// Distill `teacher` into a shallow decision tree using `data` as the
/// sampling manifold. Returns the student and a fidelity report.
pub fn distill(
    teacher: &dyn Classifier,
    data: &Dataset,
    cfg: DistillConfig,
) -> (DecisionTree, DistillationReport) {
    assert!(!data.is_empty(), "need data to define the input manifold");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut queries = 0usize;

    // Round 0: relabel the real data with the teacher (pure distillation).
    let mut agg_x: Vec<Vec<f64>> = data.x.clone();
    let mut agg_y: Vec<usize> = data
        .x
        .iter()
        .map(|row| {
            queries += 1;
            teacher.predict(row)
        })
        .collect();
    let n_classes = teacher.n_classes().max(data.n_classes);
    let mut student = fit_student(&agg_x, &agg_y, n_classes, data, cfg.tree);

    // DAgger rounds: sample where the student is exercised, ask the
    // teacher, aggregate, refit.
    for _ in 0..cfg.rounds {
        for _ in 0..cfg.samples_per_round {
            let row = synthesize(&mut rng, data);
            queries += 1;
            agg_y.push(teacher.predict(&row));
            agg_x.push(row);
        }
        student = fit_student(&agg_x, &agg_y, n_classes, data, cfg.tree);
    }

    // Fidelity on the original data.
    let agree = data
        .x
        .iter()
        .filter(|row| teacher.predict(row) == student.predict(row))
        .count();
    let fidelity = agree as f64 / data.len() as f64;

    // Fidelity on fresh synthetic queries (never trained on).
    let n_eval = 2_000;
    let eval_agree = (0..n_eval)
        .filter(|_| {
            let row = synthesize(&mut rng, data);
            teacher.predict(&row) == student.predict(&row)
        })
        .count();
    let report = DistillationReport {
        fidelity,
        synthetic_fidelity: eval_agree as f64 / n_eval as f64,
        student_nodes: student.n_nodes(),
        student_leaves: student.n_leaves(),
        student_depth: student.depth(),
        teacher_queries: queries,
    };
    (student, report)
}

fn fit_student(
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    template: &Dataset,
    cfg: TreeConfig,
) -> DecisionTree {
    let mut d = Dataset::new(x.to_vec(), y.to_vec(), template.feature_names.clone());
    d.n_classes = d.n_classes.max(n_classes);
    DecisionTree::fit(&d, cfg)
}

/// Synthesize an input near the data manifold: take a random real row and
/// resample a few coordinates from other rows' empirical marginals (the
/// standard extraction trick — stays realistic per-feature, explores
/// combinations the trace never showed).
fn synthesize(rng: &mut StdRng, data: &Dataset) -> Vec<f64> {
    let base = &data.x[rng.gen_range(0..data.len())];
    let mut row = base.clone();
    let k = rng.gen_range(1..=row.len().clamp(1, 4));
    for _ in 0..k {
        let f = rng.gen_range(0..row.len());
        row[f] = data.x[rng.gen_range(0..data.len())][f];
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_ml::{ForestConfig, RandomForest};

    /// Labels depend on a threshold over feature 0 and a flag feature 1 —
    /// tree-friendly structure a shallow student can capture.
    fn data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let v = rng.gen_range(0.0..100.0);
            let flag = f64::from(u8::from(rng.gen::<bool>()));
            let label = usize::from(v > 60.0 && flag > 0.5);
            x.push(vec![v, flag, rng.gen_range(0.0..1.0)]);
            y.push(label);
        }
        Dataset::new(x, y, vec!["v".into(), "flag".into(), "noise".into()])
    }

    #[test]
    fn student_is_faithful_and_small() {
        let d = data(1, 1500);
        let teacher = RandomForest::fit(&d, ForestConfig { n_trees: 25, ..Default::default() });
        let (student, report) = distill(&teacher, &d, DistillConfig::default());
        assert!(report.fidelity > 0.95, "fidelity {}", report.fidelity);
        assert!(
            report.synthetic_fidelity > 0.9,
            "synthetic fidelity {}",
            report.synthetic_fidelity
        );
        assert!(student.n_nodes() * 20 < teacher.total_nodes());
        assert!(report.student_depth <= 6);
        assert_eq!(report.student_nodes, student.n_nodes());
    }

    #[test]
    fn dagger_rounds_do_not_hurt_fidelity() {
        let d = data(2, 800);
        let teacher = RandomForest::fit(&d, ForestConfig { n_trees: 10, ..Default::default() });
        let (_, no_dagger) = distill(
            &teacher,
            &d,
            DistillConfig { rounds: 0, ..Default::default() },
        );
        let (_, dagger) = distill(&teacher, &d, DistillConfig::default());
        assert!(dagger.synthetic_fidelity + 0.03 >= no_dagger.synthetic_fidelity);
        assert!(dagger.teacher_queries > no_dagger.teacher_queries);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data(3, 500);
        let teacher = RandomForest::fit(&d, ForestConfig { n_trees: 5, ..Default::default() });
        let (s1, r1) = distill(&teacher, &d, DistillConfig::default());
        let (s2, r2) = distill(&teacher, &d, DistillConfig::default());
        assert_eq!(r1.fidelity, r2.fidelity);
        for row in d.x.iter().take(100) {
            assert_eq!(s1.predict(row), s2.predict(row));
        }
    }

    #[test]
    fn depth_budget_trades_fidelity() {
        let d = data(4, 1000);
        let teacher = RandomForest::fit(&d, ForestConfig { n_trees: 20, ..Default::default() });
        let (_, deep) = distill(
            &teacher,
            &d,
            DistillConfig { tree: TreeConfig::shallow(8), ..Default::default() },
        );
        let (_, stump) = distill(
            &teacher,
            &d,
            DistillConfig { tree: TreeConfig::shallow(1), ..Default::default() },
        );
        assert!(deep.fidelity >= stump.fidelity);
        assert!(stump.student_depth <= 1);
    }
}
