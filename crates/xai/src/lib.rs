//! # campuslab-xai
//!
//! Explainable-AI tooling for the paper's road to deployment (§5):
//!
//! * [`distill`] — model extraction: a DAgger loop that queries a
//!   heavyweight black box (forest, MLP) and fits a shallow decision tree
//!   "that is explainable or interpretable, lightweight and closely
//!   approximates the original model" (step (ii)), with fidelity reports.
//! * [`explain`] — per-decision evidence lists (step (iv)): the exact
//!   comparisons the deployed model made, rendered for an operator, plus
//!   the does-the-evidence-match-the-known-cause trust check of
//!   experiment E9.
//! * [`counterfactual`] — minimal what-would-flip-it explanations, the
//!   complementary query operators ask after "why?": "what if?".

//!
//! ```
//! use campuslab_ml::{Dataset, DecisionTree, TreeConfig};
//! use campuslab_xai::explain;
//!
//! let data = Dataset::new(
//!     vec![vec![100.0], vec![200.0], vec![3_000.0], vec![4_000.0]],
//!     vec![0, 0, 1, 1],
//!     vec!["wire_len".into()],
//! );
//! let tree = DecisionTree::fit(&data, TreeConfig::shallow(2));
//! let why = explain(&tree, &data.feature_names, &[3_500.0]);
//! assert_eq!(why.predicted_class, 1);
//! assert!(why.evidence[0].condition.contains("wire_len"));
//! ```

pub mod distill;
pub mod explain;
pub mod counterfactual;

pub use counterfactual::{apply, counterfactual, Counterfactual, FeatureChange};
pub use distill::{distill, DistillConfig, DistillationReport};
pub use explain::{evidence_matches_expectation, explain, Evidence, Explanation};
