//! Evidence lists: "a learning model ... that could be routinely queried
//! for the list of pieces of evidence that the model used to arrive at its
//! decisions" (paper §5, step (iv)).

use campuslab_ml::{Classifier, DecisionTree};
use serde::Serialize;
use std::collections::HashSet;

/// One piece of evidence: a satisfied comparison on a named feature.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Evidence {
    pub feature: String,
    pub feature_index: usize,
    /// The comparison the sample satisfied, e.g. `wire_len > 612`.
    pub condition: String,
    /// The sample's actual value.
    pub value: f64,
}

/// A queryable explanation of one decision.
#[derive(Debug, Clone, Serialize)]
pub struct Explanation {
    pub predicted_class: usize,
    pub confidence: f64,
    /// Root-to-leaf evidence, in the order the model consulted it.
    pub evidence: Vec<Evidence>,
}

impl Explanation {
    /// The set of feature indexes the decision rested on.
    pub fn features_used(&self) -> HashSet<usize> {
        self.evidence.iter().map(|e| e.feature_index).collect()
    }

    /// Render as an operator-facing bullet list.
    pub fn to_text(&self, class_name: &str) -> String {
        let mut s = format!(
            "verdict: {} (confidence {:.1}%)\n",
            class_name,
            self.confidence * 100.0
        );
        for e in &self.evidence {
            s.push_str(&format!("  - {} (observed {})\n", e.condition, e.value));
        }
        s
    }
}

/// Explain one decision of a tree over named features.
pub fn explain(tree: &DecisionTree, feature_names: &[String], row: &[f64]) -> Explanation {
    let (predicted_class, confidence) = tree.predict_with_confidence(row);
    let evidence = tree
        .decision_path(row)
        .into_iter()
        .map(|step| {
            let name = feature_names
                .get(step.feature)
                .cloned()
                .unwrap_or_else(|| format!("f{}", step.feature));
            let condition = if step.went_left {
                format!("{} <= {:.6}", name, step.threshold)
            } else {
                format!("{} > {:.6}", name, step.threshold)
            };
            Evidence {
                feature: name,
                feature_index: step.feature,
                condition,
                value: row[step.feature],
            }
        })
        .collect();
    Explanation { predicted_class, confidence, evidence }
}

/// Does the evidence rest on the features a domain expert would expect for
/// this phenomenon? The trust metric of experiment E9: operators trust a
/// model whose stated evidence matches the known cause.
pub fn evidence_matches_expectation(
    explanation: &Explanation,
    expected_features: &[usize],
) -> bool {
    let used = explanation.features_used();
    expected_features.iter().any(|f| used.contains(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_ml::{Dataset, TreeConfig};

    fn tree_and_names() -> (DecisionTree, Vec<String>) {
        // Class 1 iff size > 500.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i) * 10.0, 1.0]).collect();
        let y: Vec<usize> = (0..100).map(|i| usize::from(i * 10 > 500)).collect();
        let names = vec!["size".to_string(), "flag".to_string()];
        let d = Dataset::new(x, y, names.clone());
        (DecisionTree::fit(&d, TreeConfig::shallow(3)), names)
    }

    #[test]
    fn explanation_names_the_deciding_feature() {
        let (tree, names) = tree_and_names();
        let ex = explain(&tree, &names, &[800.0, 1.0]);
        assert_eq!(ex.predicted_class, 1);
        assert!(!ex.evidence.is_empty());
        assert!(ex.evidence.iter().all(|e| e.feature == "size"));
        assert!(ex.evidence[0].condition.contains("size >"));
        assert_eq!(ex.evidence[0].value, 800.0);
        assert!(ex.confidence > 0.9);
    }

    #[test]
    fn text_rendering_contains_verdict_and_evidence() {
        let (tree, names) = tree_and_names();
        let ex = explain(&tree, &names, &[100.0, 1.0]);
        let text = ex.to_text("benign");
        assert!(text.contains("verdict: benign"));
        assert!(text.contains("size <="));
    }

    #[test]
    fn expectation_matching() {
        let (tree, names) = tree_and_names();
        let ex = explain(&tree, &names, &[800.0, 1.0]);
        assert!(evidence_matches_expectation(&ex, &[0]));
        assert!(!evidence_matches_expectation(&ex, &[1]));
        assert!(evidence_matches_expectation(&ex, &[1, 0]));
    }

    #[test]
    fn features_used_is_the_path_set() {
        let (tree, names) = tree_and_names();
        let ex = explain(&tree, &names, &[505.0, 1.0]);
        let used = ex.features_used();
        assert!(used.contains(&0));
        assert!(!used.contains(&1));
    }
}
