//! Counterfactual explanations: the *other* half of operator trust.
//! An evidence list says why the model decided; a counterfactual says what
//! would have had to be different — "had this datagram been under 612
//! bytes, it would have passed". For tree models the minimal axis-aligned
//! counterfactual is computable exactly by searching leaf regions.

use campuslab_ml::{Classifier, DecisionTree};
use serde::Serialize;

/// One feature change needed to flip the decision.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FeatureChange {
    pub feature: String,
    pub feature_index: usize,
    pub from: f64,
    pub to: f64,
}

/// A minimal counterfactual for one decision.
#[derive(Debug, Clone, Serialize)]
pub struct Counterfactual {
    /// The class the changed input would receive.
    pub target_class: usize,
    pub changes: Vec<FeatureChange>,
    /// L0 cost (features changed).
    pub n_changes: usize,
    /// Normalized L1 distance of the change.
    pub distance: f64,
}

impl Counterfactual {
    /// Render for an operator.
    pub fn to_text(&self, class_name: &str) -> String {
        let mut s = format!("would be classified '{}' if:\n", class_name);
        for c in &self.changes {
            s.push_str(&format!(
                "  - {} were {} (observed {})\n",
                c.feature, c.to, c.from
            ));
        }
        s
    }
}

/// Find the minimal-change counterfactual that moves `row` into a leaf of
/// `target_class`. Distance is L1 over per-feature spans estimated from
/// the leaf bounds themselves; ties break on fewer changed features.
/// Returns None when the tree has no leaf of the target class.
pub fn counterfactual(
    tree: &DecisionTree,
    feature_names: &[String],
    row: &[f64],
    target_class: usize,
) -> Option<Counterfactual> {
    if tree.predict(row) == target_class {
        return Some(Counterfactual {
            target_class,
            changes: Vec::new(),
            n_changes: 0,
            distance: 0.0,
        });
    }
    let rules = tree.leaf_rules();
    let mut best: Option<Counterfactual> = None;
    for rule in rules.iter().filter(|r| r.class == target_class) {
        let mut changes = Vec::new();
        let mut distance = 0.0;
        let mut feasible = true;
        for &(f, lo, hi) in &rule.bounds {
            let v = row[f];
            if v > lo && v <= hi {
                continue; // already inside this bound
            }
            // The nearest value inside (lo, hi]: nudge past the violated
            // edge by the smallest sensible amount.
            let to = if v <= lo {
                if lo.is_finite() {
                    lo + 1.0
                } else {
                    feasible = false;
                    break;
                }
            } else if hi.is_finite() {
                hi
            } else {
                feasible = false;
                break;
            };
            // Check it still satisfies both edges (degenerate intervals).
            if !(to > lo && to <= hi) {
                feasible = false;
                break;
            }
            let span = if lo.is_finite() && hi.is_finite() {
                (hi - lo).max(1.0)
            } else {
                (v - to).abs().max(1.0)
            };
            distance += (v - to).abs() / span;
            changes.push(FeatureChange {
                feature: feature_names
                    .get(f)
                    .cloned()
                    .unwrap_or_else(|| format!("f{f}")),
                feature_index: f,
                from: v,
                to,
            });
        }
        if !feasible || changes.is_empty() {
            continue;
        }
        let candidate = Counterfactual {
            target_class,
            n_changes: changes.len(),
            distance,
            changes,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.n_changes < b.n_changes
                    || (candidate.n_changes == b.n_changes && candidate.distance < b.distance)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

/// Apply a counterfactual to a row (for verification).
pub fn apply(row: &[f64], cf: &Counterfactual) -> Vec<f64> {
    let mut out = row.to_vec();
    for c in &cf.changes {
        out[c.feature_index] = c.to;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use campuslab_ml::{Dataset, TreeConfig};

    /// Class 1 iff size > 500 && udp == 1.
    fn tree_and_names() -> (DecisionTree, Vec<String>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for size in (0..100).map(|i| i as f64 * 10.0) {
            for udp in [0.0, 1.0] {
                x.push(vec![size, udp]);
                y.push(usize::from(size > 500.0 && udp > 0.5));
            }
        }
        let names = vec!["size".to_string(), "udp".to_string()];
        let d = Dataset::new(x, y, names.clone());
        (DecisionTree::fit(&d, TreeConfig::shallow(3)), names)
    }

    #[test]
    fn flipping_a_benign_packet_requires_the_right_changes() {
        let (tree, names) = tree_and_names();
        // A small TCP packet: benign. What makes it an attack?
        let row = vec![100.0, 0.0];
        assert_eq!(tree.predict(&row), 0);
        let cf = counterfactual(&tree, &names, &row, 1).expect("attack leaf exists");
        assert!(cf.n_changes >= 1 && cf.n_changes <= 2);
        // Verify the counterfactual actually flips the decision.
        let flipped = apply(&row, &cf);
        assert_eq!(tree.predict(&flipped), 1, "cf {cf:?}");
    }

    #[test]
    fn attack_packet_counterfactual_to_benign() {
        let (tree, names) = tree_and_names();
        let row = vec![800.0, 1.0];
        assert_eq!(tree.predict(&row), 1);
        let cf = counterfactual(&tree, &names, &row, 0).expect("benign leaf exists");
        let flipped = apply(&row, &cf);
        assert_eq!(tree.predict(&flipped), 0);
        // The minimal change touches exactly one feature.
        assert_eq!(cf.n_changes, 1, "{cf:?}");
    }

    #[test]
    fn already_target_class_is_the_empty_counterfactual() {
        let (tree, names) = tree_and_names();
        let row = vec![800.0, 1.0];
        let cf = counterfactual(&tree, &names, &row, 1).unwrap();
        assert_eq!(cf.n_changes, 0);
        assert_eq!(cf.distance, 0.0);
    }

    #[test]
    fn missing_target_class_returns_none() {
        // A pure dataset: the tree has only class-0 leaves.
        let d = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 0, 0],
            vec!["v".into()],
        );
        let tree = DecisionTree::fit(&d, TreeConfig::shallow(2));
        assert!(counterfactual(&tree, &["v".into()], &[1.0], 1).is_none());
    }

    #[test]
    fn rendering_mentions_feature_and_values() {
        let (tree, names) = tree_and_names();
        let cf = counterfactual(&tree, &names, &[100.0, 1.0], 1).unwrap();
        let text = cf.to_text("attack");
        assert!(text.contains("would be classified 'attack'"));
        assert!(text.contains("size"));
    }
}
