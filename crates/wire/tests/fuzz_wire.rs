//! Deterministic fuzz harness over every wire parser that reads
//! attacker-controlled bytes: Ethernet, ARP, IPv4, IPv6, UDP, TCP, ICMPv4
//! and DNS.
//!
//! Each target emits a valid message from drawn fields, applies one
//! structured mutation (pristine pass-through, truncation, bit flip,
//! splice, or pure noise), and asserts two properties:
//!
//! 1. **Never panic**: the parser returns `Ok` or a typed `wire::Error`
//!    on every mutated input.
//! 2. **Round-trip stability**: whatever the parser accepts re-encodes
//!    without error and re-parses to the identical representation — a
//!    hostile buffer can never smuggle a value through parse that the
//!    encoder would corrupt or reject.
//!
//! The iteration count defaults to a quick smoke and is raised by CI via
//! `CAMPUSLAB_FUZZ_CASES` (>= 10_000 per target). The vendored proptest
//! shim keeps the byte streams seeded and deterministic, so a CI failure
//! reproduces locally by case index through proptest-regressions.

use campuslab_wire::udp::PseudoHeader;
use campuslab_wire::*;
use proptest::prelude::*;
use proptest::{proptest, ProptestConfig};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Iterations per fuzz target; CI raises this through the environment.
fn fuzz_cases() -> u32 {
    std::env::var("CAMPUSLAB_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
}

/// Apply one structured mutation to a valid emission. Positions are drawn
/// as permille of the buffer length so every case is meaningful for every
/// target regardless of its size.
fn corrupt(
    mut bytes: Vec<u8>,
    mode: u8,
    cut_permille: u16,
    bit: u32,
    at_permille: u16,
    noise: &[u8],
) -> Vec<u8> {
    if bytes.is_empty() {
        return noise.to_vec();
    }
    match mode % 5 {
        // Pristine: the baseline round-trip must of course hold.
        0 => bytes,
        // Truncate to a strict or improper prefix.
        1 => {
            let cut = bytes.len() * usize::from(cut_permille % 1001) / 1000;
            bytes.truncate(cut);
            bytes
        }
        // Flip a single bit.
        2 => {
            let pos = (bit as usize / 8) % bytes.len();
            bytes[pos] ^= 1 << (bit % 8);
            bytes
        }
        // Splice noise over (and possibly past) the tail.
        3 => {
            let at = bytes.len() * usize::from(at_permille % 1000) / 1000;
            for (i, &b) in noise.iter().enumerate() {
                let idx = at + i;
                if idx < bytes.len() {
                    bytes[idx] = b;
                } else {
                    bytes.push(b);
                }
            }
            bytes
        }
        // Replace with pure noise.
        _ => noise.to_vec(),
    }
}

fn pseudo() -> PseudoHeader {
    PseudoHeader::V4 {
        src: Ipv4Addr::new(10, 1, 2, 3),
        dst: Ipv4Addr::new(192, 0, 2, 53),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fuzz_cases(), ..ProptestConfig::default() })]

    #[test]
    fn fuzz_ethernet(
        dst in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        ty in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = Vec::new();
        EthernetRepr {
            dst: EthernetAddress(dst),
            src: EthernetAddress(src),
            ethertype: EtherType::from(ty),
        }
        .emit(&mut buf);
        buf.extend_from_slice(&body);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok((repr, rest)) = EthernetRepr::parse(&data) {
            let mut out = Vec::new();
            repr.emit(&mut out);
            out.extend_from_slice(rest);
            let (again, rest2) = EthernetRepr::parse(&out).unwrap();
            prop_assert_eq!(again, repr);
            prop_assert_eq!(rest2, rest);
        }
    }

    #[test]
    fn fuzz_arp(
        sha in any::<[u8; 6]>(),
        spa in any::<u32>(),
        tha in any::<[u8; 6]>(),
        tpa in any::<u32>(),
        is_request in any::<bool>(),
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let mut buf = Vec::new();
        ArpRepr {
            operation: if is_request { ArpOperation::Request } else { ArpOperation::Reply },
            source_hardware: EthernetAddress(sha),
            source_protocol: Ipv4Addr::from(spa),
            target_hardware: EthernetAddress(tha),
            target_protocol: Ipv4Addr::from(tpa),
        }
        .emit(&mut buf);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok(repr) = ArpRepr::parse(&data) {
            let mut out = Vec::new();
            repr.emit(&mut out);
            prop_assert_eq!(ArpRepr::parse(&out).unwrap(), repr);
        }
    }

    #[test]
    fn fuzz_ipv4(
        src in any::<u32>(),
        dst in any::<u32>(),
        proto in any::<u8>(),
        ttl in any::<u8>(),
        payload_len in 0usize..256,
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = Ipv4Repr {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            protocol: IpProtocol::from(proto),
            ttl,
            payload_len,
            dscp: 0,
            identification: 7,
            dont_fragment: true,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.resize(buf.len() + payload_len, 0x5a);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok((got, payload)) = Ipv4Repr::parse(&data) {
            let mut out = Vec::new();
            got.emit(&mut out);
            out.extend_from_slice(payload);
            let (again, payload2) = Ipv4Repr::parse(&out).unwrap();
            prop_assert_eq!(again, got);
            prop_assert_eq!(payload2, payload);
        }
    }

    #[test]
    fn fuzz_ipv6(
        src in any::<u128>(),
        dst in any::<u128>(),
        proto in any::<u8>(),
        hop in any::<u8>(),
        payload_len in 0usize..256,
        fl in 0u32..0x10_0000,
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = Ipv6Repr {
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            protocol: IpProtocol::from(proto),
            hop_limit: hop,
            payload_len,
            traffic_class: 0,
            flow_label: fl,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.resize(buf.len() + payload_len, 0x6b);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok((got, payload)) = Ipv6Repr::parse(&data) {
            let mut out = Vec::new();
            got.emit(&mut out);
            out.extend_from_slice(payload);
            let (again, payload2) = Ipv6Repr::parse(&out).unwrap();
            prop_assert_eq!(again, got);
            prop_assert_eq!(payload2, payload);
        }
    }

    #[test]
    fn fuzz_udp(
        sport in any::<u16>(),
        dport in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..128),
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let ph = pseudo();
        let mut buf = Vec::new();
        UdpRepr { src_port: sport, dst_port: dport }.emit(&mut buf, &body, &ph);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok((repr, payload)) = UdpRepr::parse(&data, &ph) {
            let mut out = Vec::new();
            repr.emit(&mut out, payload, &ph);
            let (again, payload2) = UdpRepr::parse(&out, &ph).unwrap();
            prop_assert_eq!(again, repr);
            prop_assert_eq!(payload2, payload);
        }
    }

    #[test]
    fn fuzz_tcp(
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        mss in proptest::option::of(536u16..9000),
        ws in proptest::option::of(0u8..15),
        flags in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..128),
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let ph = pseudo();
        let repr = TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            control: if flags & 1 != 0 { TcpControl::SYN } else { TcpControl::ACK },
            window,
            mss,
            window_scale: ws,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf, &body, &ph);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok((got, payload)) = TcpRepr::parse(&data, &ph) {
            let mut out = Vec::new();
            got.emit(&mut out, payload, &ph);
            let (again, payload2) = TcpRepr::parse(&out, &ph).unwrap();
            prop_assert_eq!(again, got);
            prop_assert_eq!(payload2, payload);
        }
    }

    #[test]
    fn fuzz_icmp(
        ident in any::<u16>(),
        seq in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..96),
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = Vec::new();
        IcmpRepr::echo_request(ident, seq, &body).emit(&mut buf);
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok(repr) = IcmpRepr::parse(&data) {
            let mut out = Vec::new();
            repr.emit(&mut out);
            prop_assert_eq!(IcmpRepr::parse(&out).unwrap(), repr);
        }
    }

    #[test]
    fn fuzz_dns(
        id in any::<u16>(),
        labels in proptest::collection::vec("[a-z0-9]{1,12}", 1..4),
        qtype_raw in any::<u16>(),
        addrs in proptest::collection::vec(any::<u32>(), 0..4),
        txt in proptest::collection::vec(any::<u8>(), 0..32),
        mode in any::<u8>(),
        cut in any::<u16>(),
        bit in any::<u32>(),
        at in any::<u16>(),
        noise in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let name = labels.join(".");
        let q = DnsMessage::query(id, &name, DnsType::from(qtype_raw));
        let mut answers: Vec<DnsRecord> = addrs
            .iter()
            .map(|&a| DnsRecord {
                name: name.clone(),
                ttl: 300,
                data: DnsRecordData::A(Ipv4Addr::from(a)),
            })
            .collect();
        answers.push(DnsRecord {
            name: name.clone(),
            ttl: 60,
            data: DnsRecordData::Txt(txt),
        });
        let msg = q.answer(answers, DnsRcode::NoError);
        let mut buf = Vec::new();
        msg.emit(&mut buf).unwrap();
        let data = corrupt(buf, mode, cut, bit, at, &noise);
        if let Ok(parsed) = DnsMessage::parse(&data) {
            // Anything parse accepts must re-encode cleanly: parse enforces
            // label bytes, label lengths and MAX_NAME_LEN, so emit has no
            // grounds left to refuse.
            let mut out = Vec::new();
            parsed.emit(&mut out).unwrap();
            prop_assert_eq!(DnsMessage::parse(&out).unwrap(), parsed);
        }
    }
}
