//! Property-based round-trip tests: for every protocol, `parse(emit(x)) == x`
//! over randomized field values, and corrupted buffers never panic.

use campuslab_wire::udp::PseudoHeader;
use campuslab_wire::*;
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_ipv6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_dns_name() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,16}", 1..5).prop_map(|labels| labels.join("."))
}

proptest! {
    #[test]
    fn ethernet_round_trip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), ty in any::<u16>()) {
        let repr = EthernetRepr {
            dst: EthernetAddress(dst),
            src: EthernetAddress(src),
            ethertype: EtherType::from(ty),
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        let (parsed, rest) = EthernetRepr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert!(rest.is_empty());
    }

    #[test]
    fn ipv4_round_trip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        proto in any::<u8>(),
        ttl in any::<u8>(),
        payload_len in 0usize..1400,
        dscp in 0u8..64,
        ident in any::<u16>(),
        df in any::<bool>(),
    ) {
        let repr = Ipv4Repr {
            src, dst,
            protocol: IpProtocol::from(proto),
            ttl,
            payload_len,
            dscp,
            identification: ident,
            dont_fragment: df,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.resize(buf.len() + payload_len, 0x5a);
        let (parsed, payload) = Ipv4Repr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(payload.len(), payload_len);
    }

    #[test]
    fn ipv4_single_bit_corruption_never_verifies_header(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        bit in 0usize..(IPV4_HEADER_LEN * 8),
    ) {
        let repr = Ipv4Repr {
            src, dst,
            protocol: IpProtocol::Udp,
            ttl: 64,
            payload_len: 0,
            dscp: 0,
            identification: 1,
            dont_fragment: false,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf[bit / 8] ^= 1 << (bit % 8);
        // Any single-bit flip must be caught by version/length checks or
        // the header checksum; it must never produce the original header.
        if let Ok((parsed, _)) = Ipv4Repr::parse(&buf) { prop_assert_ne!(parsed, repr) }
    }

    #[test]
    fn udp_round_trip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pseudo = PseudoHeader::V4 { src, dst };
        let repr = UdpRepr { src_port: sport, dst_port: dport };
        let mut buf = Vec::new();
        repr.emit(&mut buf, &payload, &pseudo);
        let (parsed, got) = UdpRepr::parse(&buf, &pseudo).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn udp_v6_round_trip(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let pseudo = PseudoHeader::V6 { src, dst };
        let repr = UdpRepr { src_port: sport, dst_port: dport };
        let mut buf = Vec::new();
        repr.emit(&mut buf, &payload, &pseudo);
        let (parsed, got) = UdpRepr::parse(&buf, &pseudo).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn tcp_round_trip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        mss in proptest::option::of(536u16..9000),
        ws in proptest::option::of(0u8..15),
        syn in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let pseudo = PseudoHeader::V4 { src, dst };
        let repr = TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            control: if syn { TcpControl::SYN } else { TcpControl::ACK },
            window,
            mss,
            window_scale: ws,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf, &payload, &pseudo);
        let (parsed, got) = TcpRepr::parse(&buf, &pseudo).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn ipv6_round_trip(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        proto in any::<u8>(),
        hop in any::<u8>(),
        payload_len in 0usize..1400,
        tc in any::<u8>(),
        fl in 0u32..0x10_0000,
    ) {
        let repr = Ipv6Repr {
            src, dst,
            protocol: IpProtocol::from(proto),
            hop_limit: hop,
            payload_len,
            traffic_class: tc,
            flow_label: fl,
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.resize(buf.len() + payload_len, 0);
        let (parsed, payload) = Ipv6Repr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(payload.len(), payload_len);
    }

    #[test]
    fn icmp_round_trip(ident in any::<u16>(), seq in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = IcmpRepr::echo_request(ident, seq, &payload);
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        let parsed = IcmpRepr::parse(&buf).unwrap();
        prop_assert_eq!(parsed.ident(), ident);
        prop_assert_eq!(parsed.seq(), seq);
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn dns_query_round_trip(id in any::<u16>(), name in arb_dns_name(), qt in prop_oneof![Just(DnsType::A), Just(DnsType::Aaaa), Just(DnsType::Txt), Just(DnsType::Any)]) {
        let q = DnsMessage::query(id, &name, qt);
        let mut buf = Vec::new();
        q.emit(&mut buf).unwrap();
        prop_assert_eq!(DnsMessage::parse(&buf).unwrap(), q);
    }

    #[test]
    fn dns_response_round_trip(
        id in any::<u16>(),
        name in arb_dns_name(),
        addrs in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let q = DnsMessage::query(id, &name, DnsType::A);
        let answers = addrs
            .iter()
            .map(|&a| DnsRecord {
                name: name.clone(),
                ttl: 300,
                data: DnsRecordData::A(Ipv4Addr::from(a)),
            })
            .collect();
        let r = q.answer(answers, DnsRcode::NoError);
        let mut buf = Vec::new();
        r.emit(&mut buf).unwrap();
        prop_assert_eq!(DnsMessage::parse(&buf).unwrap(), r);
    }

    #[test]
    fn dns_compression_and_opaque_round_trip(
        id in any::<u16>(),
        qname in arb_dns_name(),
        prefix in proptest::collection::vec("[a-z0-9]{1,8}", 0..3),
        code in 100u16..=250,
        rdata in proptest::collection::vec(any::<u8>(), 0..64),
        ttl in any::<u32>(),
    ) {
        // Hand-build a response whose answer names use compression pointers
        // (optionally behind extra prefix labels) and whose first record is
        // an unknown type carried opaquely. 100..=250 avoids every code the
        // parser types (1..41 and 255), so the record stays `Other(_)`.
        let mut buf = Vec::new();
        buf.extend_from_slice(&id.to_be_bytes());
        buf.extend_from_slice(&0x8180u16.to_be_bytes()); // response, RD, RA
        buf.extend_from_slice(&1u16.to_be_bytes()); // qd
        buf.extend_from_slice(&2u16.to_be_bytes()); // an
        buf.extend_from_slice(&0u16.to_be_bytes()); // ns
        buf.extend_from_slice(&0u16.to_be_bytes()); // ar
        let name_offset = buf.len();
        for label in qname.split('.') {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.push(0);
        buf.extend_from_slice(&1u16.to_be_bytes()); // qtype A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        // Answer 1: prefix labels then a pointer to the question name, with
        // rdata of an unknown record type.
        for label in &prefix {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.extend_from_slice(&(0xc000u16 | name_offset as u16).to_be_bytes());
        buf.extend_from_slice(&code.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&ttl.to_be_bytes());
        buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        buf.extend_from_slice(&rdata);
        // Answer 2: a pure-pointer name with an A record.
        buf.extend_from_slice(&(0xc000u16 | name_offset as u16).to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // type A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&ttl.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[192, 0, 2, 7]);

        let first = DnsMessage::parse(&buf).unwrap();
        let expected = if prefix.is_empty() {
            qname.clone()
        } else {
            format!("{}.{}", prefix.join("."), qname)
        };
        prop_assert_eq!(&first.answers[0].name, &expected);
        prop_assert!(matches!(
            first.answers[0].data,
            DnsRecordData::Opaque(DnsType::Other(c), _) if c == code
        ));
        prop_assert_eq!(&first.answers[1].name, &qname);
        // Decompression must never have produced a name the (uncompressed)
        // encoder cannot legally re-emit: every name stays within
        // MAX_NAME_LEN, so re-encoding succeeds and re-parses identically.
        for name in first
            .questions
            .iter()
            .map(|q| &q.name)
            .chain(first.answers.iter().map(|r| &r.name))
        {
            prop_assert!(name.len() <= 255, "decompressed name too long: {}", name.len());
        }
        let mut out = Vec::new();
        first.emit(&mut out).unwrap();
        let second = DnsMessage::parse(&out).unwrap();
        prop_assert_eq!(second, first);
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = EthernetRepr::parse(&data);
        let _ = Ipv4Repr::parse(&data);
        let _ = Ipv6Repr::parse(&data);
        let _ = IcmpRepr::parse(&data);
        let _ = DnsMessage::parse(&data);
        let _ = ArpRepr::parse(&data);
        let pseudo = PseudoHeader::V4 {
            src: Ipv4Addr::new(1, 2, 3, 4),
            dst: Ipv4Addr::new(5, 6, 7, 8),
        };
        let _ = UdpRepr::parse(&data, &pseudo);
        let _ = TcpRepr::parse(&data, &pseudo);
    }

    #[test]
    fn full_stack_frame_round_trip(
        host in any::<u32>(),
        sport in 1024u16..65535,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Ethernet(IPv4(UDP(payload))) as the capture plane sees it.
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 53);
        let pseudo = PseudoHeader::V4 { src, dst };
        let udp = UdpRepr { src_port: sport, dst_port: 53 };
        let mut l4 = Vec::new();
        udp.emit(&mut l4, &payload, &pseudo);
        let ip = Ipv4Repr {
            src, dst,
            protocol: IpProtocol::Udp,
            ttl: 64,
            payload_len: l4.len(),
            dscp: 0,
            identification: 99,
            dont_fragment: true,
        };
        let eth = EthernetRepr {
            dst: EthernetAddress::from_host_id(0),
            src: EthernetAddress::from_host_id(host),
            ethertype: EtherType::Ipv4,
        };
        let mut frame = Vec::new();
        eth.emit(&mut frame);
        ip.emit(&mut frame);
        frame.extend_from_slice(&l4);

        let (eth2, l3) = EthernetRepr::parse(&frame).unwrap();
        prop_assert_eq!(eth2, eth);
        let (ip2, l4b) = Ipv4Repr::parse(l3).unwrap();
        prop_assert_eq!(ip2, ip);
        let (udp2, body) = UdpRepr::parse(l4b, &pseudo).unwrap();
        prop_assert_eq!(udp2, udp);
        prop_assert_eq!(body, &payload[..]);
    }
}

/// Build one link of a compression chain at `offset`: a maximal 63-byte
/// label followed either by a pointer to `next` or by the root label.
fn chain_chunk(buf: &mut Vec<u8>, next: Option<u16>) {
    buf.push(63);
    buf.extend_from_slice(&[b'a'; 63]);
    match next {
        Some(off) => buf.extend_from_slice(&(0xc000 | off).to_be_bytes()),
        None => buf.push(0),
    }
}

#[test]
fn pointer_expansion_past_max_name_len_is_rejected() {
    // Five chained 63-byte labels expand to 5*63 + 4 = 319 presentation
    // characters, past the 255-byte RFC 1035 ceiling. The parser must
    // refuse the name during decompression rather than hand the encoder a
    // name it would have to reject (or worse, silently emit over-long).
    let mut buf = Vec::new();
    buf.extend_from_slice(&7u16.to_be_bytes()); // id
    buf.extend_from_slice(&0u16.to_be_bytes()); // flags
    buf.extend_from_slice(&1u16.to_be_bytes()); // qd
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    // Question name: a pointer into the chunk area that follows the
    // question entry (12 + 2 pointer bytes + 4 qtype/class bytes = 18).
    let chunk0 = 18u16;
    buf.extend_from_slice(&(0xc000 | chunk0).to_be_bytes());
    buf.extend_from_slice(&[0, 1, 0, 1]); // qtype A, class IN
    // Chunks: each is 1 + 63 + 2 bytes; the last ends with the root label.
    let chunk_len = 66u16;
    for i in 0..5u16 {
        let next = if i == 4 { None } else { Some(chunk0 + (i + 1) * chunk_len) };
        chain_chunk(&mut buf, next);
    }
    assert_eq!(DnsMessage::parse(&buf).unwrap_err(), campuslab_wire::Error::BadName);
}

#[test]
fn pointer_expansion_at_max_name_len_is_accepted() {
    // The same chain with four links lands exactly on 4*63 + 3 = 255
    // characters: legal, and the uncompressed re-encoding must agree.
    let mut buf = Vec::new();
    buf.extend_from_slice(&7u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(&1u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    buf.extend_from_slice(&0u16.to_be_bytes());
    let chunk0 = 18u16;
    buf.extend_from_slice(&(0xc000 | chunk0).to_be_bytes());
    buf.extend_from_slice(&[0, 1, 0, 1]);
    let chunk_len = 66u16;
    for i in 0..4u16 {
        let next = if i == 3 { None } else { Some(chunk0 + (i + 1) * chunk_len) };
        chain_chunk(&mut buf, next);
    }
    let parsed = DnsMessage::parse(&buf).unwrap();
    assert_eq!(parsed.questions[0].name.len(), 255);
    let mut out = Vec::new();
    parsed.emit(&mut out).unwrap();
    assert_eq!(DnsMessage::parse(&out).unwrap(), parsed);
}
