//! UDP (RFC 768) over IPv4 or IPv6.

use crate::checksum::{self, Checksum};
use crate::{be16, Error, Result};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// The address material a UDP checksum binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PseudoHeader {
    V4 { src: Ipv4Addr, dst: Ipv4Addr },
    V6 { src: Ipv6Addr, dst: Ipv6Addr },
}

impl PseudoHeader {
    fn start(&self, protocol: u8, length: usize) -> Checksum {
        match *self {
            PseudoHeader::V4 { src, dst } => checksum::pseudo_v4(src, dst, protocol, length as u16),
            PseudoHeader::V6 { src, dst } => checksum::pseudo_v6(src, dst, protocol, length as u32),
        }
    }
}

/// A parsed/parseable UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UdpRepr {
    pub src_port: u16,
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parse a datagram, verifying the length field and checksum against
    /// the given pseudo-header. Returns the header and payload.
    pub fn parse<'a>(data: &'a [u8], pseudo: &PseudoHeader) -> Result<(UdpRepr, &'a [u8])> {
        if data.len() < UDP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let length = usize::from(be16(data, 4));
        if length < UDP_HEADER_LEN || length > data.len() {
            return Err(Error::BadLength);
        }
        let stored = be16(data, 6);
        // An all-zero checksum means "not computed" and is legal over IPv4.
        let v4 = matches!(pseudo, PseudoHeader::V4 { .. });
        if stored != 0 || !v4 {
            let mut c = pseudo.start(17, length);
            c.add_bytes(&data[..length]);
            if c.finish() != 0 {
                return Err(Error::BadChecksum);
            }
        }
        let repr = UdpRepr {
            src_port: be16(data, 0),
            dst_port: be16(data, 2),
        };
        Ok((repr, &data[UDP_HEADER_LEN..length]))
    }

    /// Append header and payload to `buf` with a correct checksum.
    pub fn emit(&self, buf: &mut Vec<u8>, payload: &[u8], pseudo: &PseudoHeader) {
        let start = buf.len();
        let length = UDP_HEADER_LEN + payload.len();
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&(length as u16).to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(payload);
        let mut c = pseudo.start(17, length);
        c.add_bytes(&buf[start..start + length]);
        let mut cks = c.finish();
        if cks == 0 {
            // RFC 768: a computed zero is transmitted as all-ones.
            cks = 0xffff;
        }
        buf[start + 6] = (cks >> 8) as u8;
        buf[start + 7] = cks as u8;
    }

    /// On-wire length for a given payload.
    pub fn total_len(payload_len: usize) -> usize {
        UDP_HEADER_LEN + payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4() -> PseudoHeader {
        PseudoHeader::V4 {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    fn v6() -> PseudoHeader {
        PseudoHeader::V6 {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
        }
    }

    #[test]
    fn round_trip_v4() {
        let repr = UdpRepr { src_port: 53, dst_port: 33333 };
        let mut buf = Vec::new();
        repr.emit(&mut buf, b"dns answer", &v4());
        let (parsed, payload) = UdpRepr::parse(&buf, &v4()).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"dns answer");
    }

    #[test]
    fn round_trip_v6() {
        let repr = UdpRepr { src_port: 123, dst_port: 123 };
        let mut buf = Vec::new();
        repr.emit(&mut buf, &[7; 48], &v6());
        let (parsed, payload) = UdpRepr::parse(&buf, &v6()).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload.len(), 48);
    }

    #[test]
    fn checksum_binds_addresses() {
        let repr = UdpRepr { src_port: 1, dst_port: 2 };
        let mut buf = Vec::new();
        repr.emit(&mut buf, b"x", &v4());
        let other = PseudoHeader::V4 {
            src: Ipv4Addr::new(10, 0, 0, 9),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        };
        assert_eq!(UdpRepr::parse(&buf, &other).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn zero_checksum_allowed_only_on_v4() {
        let repr = UdpRepr { src_port: 5, dst_port: 6 };
        let mut buf = Vec::new();
        repr.emit(&mut buf, b"ab", &v4());
        buf[6] = 0;
        buf[7] = 0;
        assert!(UdpRepr::parse(&buf, &v4()).is_ok());
        let mut buf6 = Vec::new();
        repr.emit(&mut buf6, b"ab", &v6());
        buf6[6] = 0;
        buf6[7] = 0;
        assert_eq!(UdpRepr::parse(&buf6, &v6()).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let repr = UdpRepr { src_port: 1, dst_port: 2 };
        let mut buf = Vec::new();
        repr.emit(&mut buf, b"hello", &v4());
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert_eq!(UdpRepr::parse(&buf, &v4()).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn bad_length_is_rejected() {
        let repr = UdpRepr { src_port: 1, dst_port: 2 };
        let mut buf = Vec::new();
        repr.emit(&mut buf, b"hello", &v4());
        buf[4] = 0xff; // length far beyond the buffer
        assert_eq!(UdpRepr::parse(&buf, &v4()).unwrap_err(), Error::BadLength);
        assert_eq!(UdpRepr::parse(&buf[..4], &v4()).unwrap_err(), Error::Truncated);
    }
}
