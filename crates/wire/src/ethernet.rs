//! Ethernet II framing.

use crate::{be16, Error, Result};

/// Length of an Ethernet II header: destination, source, ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, serde::Serialize, serde::Deserialize)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// Construct from six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        EthernetAddress([a, b, c, d, e, f])
    }

    /// Build a locally-administered unicast address from a 32-bit host id.
    /// CampusLab uses this to assign deterministic MACs to simulated hosts.
    pub const fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 sets the locally-administered bit and keeps unicast.
        EthernetAddress([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True when the group bit (lsb of first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast (neither broadcast nor multicast).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl std::fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// The EtherType values CampusLab understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    Ipv6,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(other) => other,
        }
    }
}

/// A parsed/parseable Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    pub dst: EthernetAddress,
    pub src: EthernetAddress,
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse a frame, returning the header and the payload slice.
    pub fn parse(data: &[u8]) -> Result<(EthernetRepr, &[u8])> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let repr = EthernetRepr {
            dst: EthernetAddress(dst),
            src: EthernetAddress(src),
            ethertype: EtherType::from(be16(data, 12)),
        };
        Ok((repr, &data[ETHERNET_HEADER_LEN..]))
    }

    /// Append the header to `buf`.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.dst.0);
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetRepr {
        EthernetRepr {
            dst: EthernetAddress::new(0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
            src: EthernetAddress::from_host_id(7),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn round_trip() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(b"payload");
        let (parsed, rest) = EthernetRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn truncated_is_rejected() {
        assert_eq!(
            EthernetRepr::parse(&[0u8; 13]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn address_classes() {
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        let uni = EthernetAddress::from_host_id(1);
        assert!(uni.is_unicast());
        assert!(!uni.is_broadcast());
        let multi = EthernetAddress::new(0x01, 0x00, 0x5e, 0, 0, 1);
        assert!(multi.is_multicast());
    }

    #[test]
    fn host_id_addresses_are_distinct_and_stable() {
        assert_ne!(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2)
        );
        assert_eq!(
            EthernetAddress::from_host_id(0x01020304).to_string(),
            "02:00:01:02:03:04"
        );
    }

    #[test]
    fn ethertype_mapping() {
        for ty in [EtherType::Ipv4, EtherType::Arp, EtherType::Ipv6, EtherType::Other(0x1234)] {
            assert_eq!(EtherType::from(u16::from(ty)), ty);
        }
    }
}
