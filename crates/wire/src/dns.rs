//! DNS messages (RFC 1035), sufficient for campus border monitoring: full
//! header decoding, questions, answer/authority/additional records, name
//! decompression, and the record types that dominate campus traffic.
//!
//! DNS matters to CampusLab beyond being a protocol: the paper's running
//! network-automation example is detecting a **DNS amplification attack**,
//! so the capture plane parses these messages into metadata records and the
//! traffic generator synthesizes both legitimate lookups and attack floods.

use crate::{be16, be32, Error, Result};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Maximum label chain hops while decompressing, to defeat pointer loops.
const MAX_NAME_JUMPS: usize = 32;
/// Maximum decoded name length (RFC 1035 §2.3.4).
const MAX_NAME_LEN: usize = 255;

/// DNS opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsOpcode {
    Query,
    Status,
    Notify,
    Update,
    Other(u8),
}

impl DnsOpcode {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => DnsOpcode::Query,
            2 => DnsOpcode::Status,
            4 => DnsOpcode::Notify,
            5 => DnsOpcode::Update,
            other => DnsOpcode::Other(other),
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            DnsOpcode::Query => 0,
            DnsOpcode::Status => 2,
            DnsOpcode::Notify => 4,
            DnsOpcode::Update => 5,
            DnsOpcode::Other(v) => v & 0x0f,
        }
    }
}

/// DNS response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsRcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    Refused,
    Other(u8),
}

impl DnsRcode {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => DnsRcode::NoError,
            1 => DnsRcode::FormErr,
            2 => DnsRcode::ServFail,
            3 => DnsRcode::NxDomain,
            5 => DnsRcode::Refused,
            other => DnsRcode::Other(other),
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            DnsRcode::NoError => 0,
            DnsRcode::FormErr => 1,
            DnsRcode::ServFail => 2,
            DnsRcode::NxDomain => 3,
            DnsRcode::Refused => 5,
            DnsRcode::Other(v) => v & 0x0f,
        }
    }
}

/// DNS record/query type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    Opt,
    /// The `ANY` query type beloved of amplification attackers.
    Any,
    Other(u16),
}

impl From<u16> for DnsType {
    fn from(v: u16) -> Self {
        match v {
            1 => DnsType::A,
            2 => DnsType::Ns,
            5 => DnsType::Cname,
            6 => DnsType::Soa,
            12 => DnsType::Ptr,
            15 => DnsType::Mx,
            16 => DnsType::Txt,
            28 => DnsType::Aaaa,
            41 => DnsType::Opt,
            255 => DnsType::Any,
            other => DnsType::Other(other),
        }
    }
}

impl From<DnsType> for u16 {
    fn from(v: DnsType) -> u16 {
        match v {
            DnsType::A => 1,
            DnsType::Ns => 2,
            DnsType::Cname => 5,
            DnsType::Soa => 6,
            DnsType::Ptr => 12,
            DnsType::Mx => 15,
            DnsType::Txt => 16,
            DnsType::Aaaa => 28,
            DnsType::Opt => 41,
            DnsType::Any => 255,
            DnsType::Other(other) => other,
        }
    }
}

/// The header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsFlags {
    pub response: bool,
    pub opcode: DnsOpcode,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: DnsRcode,
}

impl DnsFlags {
    /// Standard recursive query flags.
    pub fn query() -> Self {
        DnsFlags {
            response: false,
            opcode: DnsOpcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: DnsRcode::NoError,
        }
    }

    /// Standard recursive-resolver response flags.
    pub fn response(rcode: DnsRcode) -> Self {
        DnsFlags {
            response: true,
            opcode: DnsOpcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: true,
            rcode,
        }
    }

    fn from_u16(v: u16) -> Self {
        DnsFlags {
            response: v & 0x8000 != 0,
            opcode: DnsOpcode::from_u8(((v >> 11) & 0x0f) as u8),
            authoritative: v & 0x0400 != 0,
            truncated: v & 0x0200 != 0,
            recursion_desired: v & 0x0100 != 0,
            recursion_available: v & 0x0080 != 0,
            rcode: DnsRcode::from_u8((v & 0x0f) as u8),
        }
    }

    fn to_u16(self) -> u16 {
        (u16::from(self.response) << 15)
            | (u16::from(self.opcode.as_u8()) << 11)
            | (u16::from(self.authoritative) << 10)
            | (u16::from(self.truncated) << 9)
            | (u16::from(self.recursion_desired) << 8)
            | (u16::from(self.recursion_available) << 7)
            | u16::from(self.rcode.as_u8())
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    pub name: String,
    pub qtype: DnsType,
}

/// Typed record data for the types CampusLab decodes; everything else is
/// carried opaquely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsRecordData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Cname(String),
    Ns(String),
    Txt(Vec<u8>),
    Opaque(DnsType, Vec<u8>),
}

impl DnsRecordData {
    /// The record type this data belongs to.
    pub fn rtype(&self) -> DnsType {
        match self {
            DnsRecordData::A(_) => DnsType::A,
            DnsRecordData::Aaaa(_) => DnsType::Aaaa,
            DnsRecordData::Cname(_) => DnsType::Cname,
            DnsRecordData::Ns(_) => DnsType::Ns,
            DnsRecordData::Txt(_) => DnsType::Txt,
            DnsRecordData::Opaque(ty, _) => *ty,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    pub name: String,
    pub ttl: u32,
    pub data: DnsRecordData,
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    pub id: u16,
    pub flags: DnsFlags,
    pub questions: Vec<DnsQuestion>,
    pub answers: Vec<DnsRecord>,
    pub authorities: Vec<DnsRecord>,
    pub additionals: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Build a single-question recursive query.
    pub fn query(id: u16, name: &str, qtype: DnsType) -> Self {
        DnsMessage {
            id,
            flags: DnsFlags::query(),
            questions: vec![DnsQuestion { name: name.to_string(), qtype }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build a response echoing this query with the given answers.
    pub fn answer(&self, answers: Vec<DnsRecord>, rcode: DnsRcode) -> Self {
        DnsMessage {
            id: self.id,
            flags: DnsFlags::response(rcode),
            questions: self.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Parse a message from a UDP payload. Compression pointers are followed
    /// with loop protection.
    pub fn parse(data: &[u8]) -> Result<DnsMessage> {
        if data.len() < 12 {
            return Err(Error::Truncated);
        }
        let id = be16(data, 0);
        let flags = DnsFlags::from_u16(be16(data, 2));
        let qd = usize::from(be16(data, 4));
        let an = usize::from(be16(data, 6));
        let ns = usize::from(be16(data, 8));
        let ar = usize::from(be16(data, 10));
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd.min(32));
        for _ in 0..qd {
            let (name, next) = parse_name(data, pos)?;
            if next + 4 > data.len() {
                return Err(Error::Truncated);
            }
            questions.push(DnsQuestion {
                name,
                qtype: DnsType::from(be16(data, next)),
            });
            pos = next + 4;
        }
        let mut sections = [Vec::new(), Vec::new(), Vec::new()];
        for (idx, count) in [an, ns, ar].into_iter().enumerate() {
            for _ in 0..count {
                let (record, next) = parse_record(data, pos)?;
                sections[idx].push(record);
                pos = next;
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(DnsMessage {
            id,
            flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// Append the message to `buf`. Names are emitted uncompressed, which is
    /// always valid (and what many stub resolvers do).
    pub fn emit(&self, buf: &mut Vec<u8>) -> Result<()> {
        buf.extend_from_slice(&self.id.to_be_bytes());
        buf.extend_from_slice(&self.flags.to_u16().to_be_bytes());
        buf.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());
        for q in &self.questions {
            emit_name(&q.name, buf)?;
            buf.extend_from_slice(&u16::from(q.qtype).to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for section in [&self.answers, &self.authorities, &self.additionals] {
            for r in section {
                emit_record(r, buf)?;
            }
        }
        Ok(())
    }

    /// The emitted size of this message, in bytes.
    pub fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        // Emission only fails on malformed names, in which case a zero
        // length is the honest answer for sizing purposes.
        if self.emit(&mut buf).is_err() {
            return 0;
        }
        buf.len()
    }

    /// True if this message looks like an amplification vector: an ANY/TXT
    /// query or a response much larger than its implied query.
    pub fn is_amplification_prone(&self) -> bool {
        if !self.flags.response {
            return self
                .questions
                .iter()
                .any(|q| matches!(q.qtype, DnsType::Any | DnsType::Txt));
        }
        self.answers.len() >= 8
    }
}

fn parse_name(data: &[u8], start: usize) -> Result<(String, usize)> {
    let mut name = String::new();
    let mut pos = start;
    let mut jumps = 0usize;
    // Where parsing resumes after the name: set at the first pointer.
    let mut resume = None;
    loop {
        if pos >= data.len() {
            return Err(Error::Truncated);
        }
        let len = data[pos];
        if len & 0xc0 == 0xc0 {
            if pos + 1 >= data.len() {
                return Err(Error::Truncated);
            }
            jumps += 1;
            if jumps > MAX_NAME_JUMPS {
                return Err(Error::BadName);
            }
            if resume.is_none() {
                resume = Some(pos + 2);
            }
            pos = usize::from(be16(data, pos) & 0x3fff);
            continue;
        }
        if len & 0xc0 != 0 {
            return Err(Error::BadName);
        }
        if len == 0 {
            pos += 1;
            break;
        }
        let len = usize::from(len);
        if pos + 1 + len > data.len() {
            return Err(Error::Truncated);
        }
        if !name.is_empty() {
            name.push('.');
        }
        for &b in &data[pos + 1..pos + 1 + len] {
            // Labels are case-insensitive ASCII in practice; normalize. The
            // presentation form must survive `emit_name` byte-for-byte, so
            // reject anything outside printable ASCII as well as the label
            // separator itself: a 0x2e inside a label would re-split on
            // emission and a byte >= 0x80 would re-encode as two UTF-8
            // bytes, silently changing the wire form.
            if !(0x21..=0x7e).contains(&b) || b == b'.' {
                return Err(Error::BadName);
            }
            name.push(b.to_ascii_lowercase() as char);
        }
        if name.len() > MAX_NAME_LEN {
            return Err(Error::BadName);
        }
        pos += 1 + len;
    }
    Ok((name, resume.unwrap_or(pos)))
}

fn emit_name(name: &str, buf: &mut Vec<u8>) -> Result<()> {
    if name.len() > MAX_NAME_LEN {
        return Err(Error::BadName);
    }
    if !name.is_empty() {
        for label in name.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(Error::BadName);
            }
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
    }
    buf.push(0);
    Ok(())
}

fn parse_record(data: &[u8], start: usize) -> Result<(DnsRecord, usize)> {
    let (name, pos) = parse_name(data, start)?;
    if pos + 10 > data.len() {
        return Err(Error::Truncated);
    }
    let rtype = DnsType::from(be16(data, pos));
    let ttl = be32(data, pos + 4);
    let rdlen = usize::from(be16(data, pos + 8));
    let rdata_start = pos + 10;
    if rdata_start + rdlen > data.len() {
        return Err(Error::Truncated);
    }
    let rdata = &data[rdata_start..rdata_start + rdlen];
    let record_data = match rtype {
        DnsType::A => {
            if rdlen != 4 {
                return Err(Error::BadLength);
            }
            DnsRecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
        }
        DnsType::Aaaa => {
            if rdlen != 16 {
                return Err(Error::BadLength);
            }
            let mut o = [0u8; 16];
            o.copy_from_slice(rdata);
            DnsRecordData::Aaaa(Ipv6Addr::from(o))
        }
        DnsType::Cname => {
            let (target, _) = parse_name(data, rdata_start)?;
            DnsRecordData::Cname(target)
        }
        DnsType::Ns => {
            let (target, _) = parse_name(data, rdata_start)?;
            DnsRecordData::Ns(target)
        }
        DnsType::Txt => DnsRecordData::Txt(rdata.to_vec()),
        other => DnsRecordData::Opaque(other, rdata.to_vec()),
    };
    Ok((
        DnsRecord { name, ttl, data: record_data },
        rdata_start + rdlen,
    ))
}

fn emit_record(record: &DnsRecord, buf: &mut Vec<u8>) -> Result<()> {
    emit_name(&record.name, buf)?;
    buf.extend_from_slice(&u16::from(record.data.rtype()).to_be_bytes());
    buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
    buf.extend_from_slice(&record.ttl.to_be_bytes());
    let mut rdata = Vec::new();
    match &record.data {
        DnsRecordData::A(addr) => rdata.extend_from_slice(&addr.octets()),
        DnsRecordData::Aaaa(addr) => rdata.extend_from_slice(&addr.octets()),
        DnsRecordData::Cname(target) | DnsRecordData::Ns(target) => {
            emit_name(target, &mut rdata)?
        }
        DnsRecordData::Txt(bytes) => rdata.extend_from_slice(bytes),
        DnsRecordData::Opaque(_, bytes) => rdata.extend_from_slice(bytes),
    }
    buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
    buf.extend_from_slice(&rdata);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_record(name: &str, addr: [u8; 4]) -> DnsRecord {
        DnsRecord {
            name: name.to_string(),
            ttl: 300,
            data: DnsRecordData::A(Ipv4Addr::from(addr)),
        }
    }

    #[test]
    fn query_round_trip() {
        let q = DnsMessage::query(0x1234, "www.example.edu", DnsType::A);
        let mut buf = Vec::new();
        q.emit(&mut buf).unwrap();
        let parsed = DnsMessage::parse(&buf).unwrap();
        assert_eq!(parsed, q);
        assert_eq!(parsed.questions[0].name, "www.example.edu");
    }

    #[test]
    fn response_round_trip() {
        let q = DnsMessage::query(7, "cdn.example.org", DnsType::A);
        let r = q.answer(
            vec![
                a_record("cdn.example.org", [198, 51, 100, 1]),
                DnsRecord {
                    name: "cdn.example.org".into(),
                    ttl: 60,
                    data: DnsRecordData::Cname("edge.example.net".into()),
                },
            ],
            DnsRcode::NoError,
        );
        let mut buf = Vec::new();
        r.emit(&mut buf).unwrap();
        let parsed = DnsMessage::parse(&buf).unwrap();
        assert_eq!(parsed, r);
        assert!(parsed.flags.response);
        assert_eq!(parsed.answers.len(), 2);
    }

    #[test]
    fn compression_pointers_are_followed() {
        // Hand-build a response where the answer name points at the question.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xabcdu16.to_be_bytes()); // id
        buf.extend_from_slice(&0x8180u16.to_be_bytes()); // flags: response, RD, RA
        buf.extend_from_slice(&1u16.to_be_bytes()); // qd
        buf.extend_from_slice(&1u16.to_be_bytes()); // an
        buf.extend_from_slice(&0u16.to_be_bytes()); // ns
        buf.extend_from_slice(&0u16.to_be_bytes()); // ar
        let name_offset = buf.len();
        emit_name("a.example.edu", &mut buf).unwrap();
        buf.extend_from_slice(&1u16.to_be_bytes()); // qtype A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&(0xc000u16 | name_offset as u16).to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // type A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&60u32.to_be_bytes()); // ttl
        buf.extend_from_slice(&4u16.to_be_bytes()); // rdlen
        buf.extend_from_slice(&[203, 0, 113, 5]);
        let parsed = DnsMessage::parse(&buf).unwrap();
        assert_eq!(parsed.answers[0].name, "a.example.edu");
        assert_eq!(
            parsed.answers[0].data,
            DnsRecordData::A(Ipv4Addr::new(203, 0, 113, 5))
        );
    }

    #[test]
    fn pointer_loop_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // one question
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        // A name that points at itself.
        buf.extend_from_slice(&0xc00cu16.to_be_bytes());
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(DnsMessage::parse(&buf).unwrap_err(), Error::BadName);
    }

    #[test]
    fn names_are_case_normalized() {
        let q = DnsMessage::query(1, "WWW.Example.EDU", DnsType::A);
        let mut buf = Vec::new();
        q.emit(&mut buf).unwrap();
        let parsed = DnsMessage::parse(&buf).unwrap();
        assert_eq!(parsed.questions[0].name, "www.example.edu");
    }

    #[test]
    fn oversized_label_is_rejected_on_emit() {
        let long = "a".repeat(64);
        let q = DnsMessage::query(1, &long, DnsType::A);
        let mut buf = Vec::new();
        assert_eq!(q.emit(&mut buf).unwrap_err(), Error::BadName);
    }

    #[test]
    fn amplification_heuristics() {
        let any = DnsMessage::query(1, "isc.org", DnsType::Any);
        assert!(any.is_amplification_prone());
        let a = DnsMessage::query(1, "isc.org", DnsType::A);
        assert!(!a.is_amplification_prone());
        let big = a.answer(
            (0..10)
                .map(|i| a_record("isc.org", [10, 0, 0, i as u8]))
                .collect(),
            DnsRcode::NoError,
        );
        assert!(big.is_amplification_prone());
    }

    #[test]
    fn wire_len_matches_emit() {
        let q = DnsMessage::query(1, "www.example.edu", DnsType::Aaaa);
        let mut buf = Vec::new();
        q.emit(&mut buf).unwrap();
        assert_eq!(q.wire_len(), buf.len());
    }

    #[test]
    fn amplification_factor_is_realistic() {
        // An ANY query for a fat zone should amplify well beyond 5x, the
        // behaviour the attack generator relies on.
        let q = DnsMessage::query(1, "amp.example.org", DnsType::Any);
        let answers: Vec<DnsRecord> = (0..20)
            .map(|i| DnsRecord {
                name: "amp.example.org".into(),
                ttl: 3600,
                data: DnsRecordData::Txt(vec![b'x'; 80 + i]),
            })
            .collect();
        let r = q.answer(answers, DnsRcode::NoError);
        assert!(r.wire_len() > 5 * q.wire_len());
    }

    #[test]
    fn hostile_label_bytes_are_rejected() {
        // A label carrying a dot, a high byte, or a control byte cannot
        // round-trip through presentation form; parse must refuse it
        // instead of producing a name that re-encodes differently.
        for bad in [b'.', 0x80u8, 0xff, 0x00, b' ', 0x1f] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&1u16.to_be_bytes()); // id
            buf.extend_from_slice(&0u16.to_be_bytes()); // flags
            buf.extend_from_slice(&1u16.to_be_bytes()); // qd
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes());
            buf.extend_from_slice(&[3, b'a', bad, b'b', 0]); // a<bad>b.
            buf.extend_from_slice(&[0, 1, 0, 1]); // qtype A, class IN
            assert_eq!(
                DnsMessage::parse(&buf).unwrap_err(),
                Error::BadName,
                "label byte {bad:#04x} must be rejected"
            );
        }
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert_eq!(DnsMessage::parse(&[0u8; 11]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn record_sections_are_separated() {
        let q = DnsMessage::query(2, "example.edu", DnsType::A);
        let mut msg = q.answer(vec![a_record("example.edu", [10, 0, 0, 1])], DnsRcode::NoError);
        msg.authorities.push(DnsRecord {
            name: "example.edu".into(),
            ttl: 3600,
            data: DnsRecordData::Ns("ns1.example.edu".into()),
        });
        msg.additionals.push(a_record("ns1.example.edu", [10, 0, 0, 53]));
        let mut buf = Vec::new();
        msg.emit(&mut buf).unwrap();
        let parsed = DnsMessage::parse(&buf).unwrap();
        assert_eq!(parsed.answers.len(), 1);
        assert_eq!(parsed.authorities.len(), 1);
        assert_eq!(parsed.additionals.len(), 1);
        assert_eq!(parsed, msg);
    }
}
