//! IPv4 headers (RFC 791), without options.

use crate::checksum;
use crate::{be16, Error, Result};
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers CampusLab understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum IpProtocol {
    Icmp,
    Tcp,
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(other) => other,
        }
    }
}

impl std::fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpProtocol::Icmp => f.write_str("icmp"),
            IpProtocol::Tcp => f.write_str("tcp"),
            IpProtocol::Udp => f.write_str("udp"),
            IpProtocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// A parsed/parseable IPv4 header.
///
/// Fragmentation fields beyond the DF bit are not modelled: the campus
/// simulator never emits fragments (a parse of a fragment fails with
/// [`Error::Unsupported`] so the capture plane can count them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Ipv4Repr {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    pub ttl: u8,
    /// Length of the payload that follows the header, in bytes.
    pub payload_len: usize,
    pub dscp: u8,
    pub identification: u16,
    pub dont_fragment: bool,
}

impl Ipv4Repr {
    /// Parse a header, verifying version, lengths and the header checksum.
    /// Returns the header and the payload slice (trimmed to `total_length`).
    pub fn parse(data: &[u8]) -> Result<(Ipv4Repr, &[u8])> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(Error::BadVersion);
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(Error::BadLength);
        }
        let total_len = usize::from(be16(data, 2));
        if total_len < ihl || total_len > data.len() {
            return Err(Error::BadLength);
        }
        if !checksum::verify(&data[..ihl]) {
            return Err(Error::BadChecksum);
        }
        let flags_frag = be16(data, 6);
        let more_fragments = flags_frag & 0x2000 != 0;
        let frag_offset = flags_frag & 0x1fff;
        if more_fragments || frag_offset != 0 {
            return Err(Error::Unsupported);
        }
        let repr = Ipv4Repr {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol: IpProtocol::from(data[9]),
            ttl: data[8],
            payload_len: total_len - ihl,
            dscp: data[1] >> 2,
            identification: be16(data, 4),
            dont_fragment: flags_frag & 0x4000 != 0,
        };
        Ok((repr, &data[ihl..total_len]))
    }

    /// Append the header (with a correct checksum) to `buf`. The caller
    /// appends exactly `payload_len` bytes of payload afterwards.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        let total_len = (IPV4_HEADER_LEN + self.payload_len) as u16;
        buf.push(0x45); // version 4, ihl 5
        buf.push(self.dscp << 2);
        buf.extend_from_slice(&total_len.to_be_bytes());
        buf.extend_from_slice(&self.identification.to_be_bytes());
        let flags: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        buf.extend_from_slice(&flags.to_be_bytes());
        buf.push(self.ttl);
        buf.push(u8::from(self.protocol));
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.dst.octets());
        let cks = checksum::of(&buf[start..start + IPV4_HEADER_LEN]);
        buf[start + 10] = (cks >> 8) as u8;
        buf[start + 11] = cks as u8;
    }

    /// Total on-wire length of header plus payload.
    pub fn total_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 5, 1, 7),
            dst: Ipv4Addr::new(198, 51, 100, 4),
            protocol: IpProtocol::Tcp,
            ttl: 63,
            payload_len: 40,
            dscp: 10,
            identification: 0xbeef,
            dont_fragment: true,
        }
    }

    #[test]
    fn round_trip() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&vec![0xaa; repr.payload_len]);
        let (parsed, payload) = Ipv4Repr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload.len(), 40);
        assert!(payload.iter().all(|&b| b == 0xaa));
    }

    #[test]
    fn trailing_garbage_is_trimmed() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&vec![0xaa; repr.payload_len]);
        buf.extend_from_slice(b"ethernet padding");
        let (_, payload) = Ipv4Repr::parse(&buf).unwrap();
        assert_eq!(payload.len(), repr.payload_len);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&vec![0u8; repr.payload_len]);
        buf[8] ^= 0x01; // flip a ttl bit
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.extend_from_slice(&[0u8; 40]);
        buf[0] = 0x65;
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), Error::BadVersion);
    }

    #[test]
    fn fragment_is_unsupported() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&vec![0u8; repr.payload_len]);
        // Set more-fragments and refresh the checksum.
        buf[6] = 0x20;
        buf[10] = 0;
        buf[11] = 0;
        let cks = checksum::of(&buf[..IPV4_HEADER_LEN]);
        buf[10] = (cks >> 8) as u8;
        buf[11] = cks as u8;
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn bad_total_length_is_rejected() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        // total_length says 60 but we only supply the header.
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn protocol_mapping() {
        for p in [IpProtocol::Icmp, IpProtocol::Tcp, IpProtocol::Udp, IpProtocol::Other(89)] {
            assert_eq!(IpProtocol::from(u8::from(p)), p);
        }
        assert_eq!(IpProtocol::Udp.to_string(), "udp");
        assert_eq!(IpProtocol::Other(89).to_string(), "proto-89");
    }
}
